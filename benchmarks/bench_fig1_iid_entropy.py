"""Figure 1 — IID entropy CDFs of the three datasets and intersections.

Paper shape: the NTP corpus has the highest entropy (median ~0.8), the
Hitlist sits in the middle (~0.7), and almost all of CAIDA is very low
entropy.  The NTP∩Hitlist intersection tracks the lower of the two.
"""

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.ipv6 import iid_of
from repro.analysis.distributions import ECDF
from repro.analysis.figures import render_cdf_chart

from conftest import publish


def _entropies(addresses):
    return [normalized_iid_entropy(iid_of(address)) for address in addresses]


def test_fig1_iid_entropy(benchmark, bench_world, bench_study):
    ntp, hitlist, caida = bench_study.corpora()

    def compute():
        samples = {
            "NTP Pool": _entropies(ntp.addresses()),
            "IPv6 Hitlist": _entropies(hitlist.addresses()),
            "CAIDA /48": _entropies(caida.addresses()),
        }
        common = ntp.common_addresses(hitlist)
        if common:
            samples["NTP ∩ Hitlist"] = _entropies(common)
        return samples

    samples = benchmark(compute)

    medians = {name: ECDF(values).median for name, values in samples.items()}
    lines = [
        render_cdf_chart(
            samples,
            x_label="normalized IID Shannon entropy",
            title="Figure 1: IID entropy CDFs per dataset",
        ),
        "",
    ]
    lines.append(
        "medians: "
        + ", ".join(f"{name}={value:.2f}" for name, value in medians.items())
    )
    lines.append("paper medians: NTP ~0.8, Hitlist ~0.7, CAIDA ~0 (very low)")
    publish("fig1_iid_entropy", "\n".join(lines))

    # Shape: the paper's strict ordering of dataset medians.
    assert medians["NTP Pool"] > medians["IPv6 Hitlist"] > medians["CAIDA /48"]
    assert medians["NTP Pool"] > 0.7
    assert medians["CAIDA /48"] < 0.25
