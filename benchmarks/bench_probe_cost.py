"""Extension — measurement cost: probes sent per address discovered.

The paper's methodological argument (§3 "Ethical Considerations"): active
campaigns inject "immense volumes of superfluous data" to elicit
responses, while the passive NTP deployment sends *zero* unsolicited
packets — it answers queries clients were making anyway — and still
collects orders of magnitude more addresses.  This bench tallies each
methodology's probe budget against its yield.
"""

from repro.analysis.tables import format_table
from repro.scan.caida import split_routed_prefixes
from repro.scan.hitlist_service import HITLIST_PROTOCOLS

from conftest import publish


def test_probe_cost(benchmark, bench_world, bench_study):
    def tally():
        # Hitlist: every candidate is probed once per protocol per week.
        hitlist_probes = sum(
            snapshot.candidates_probed * len(HITLIST_PROTOCOLS)
            for snapshot in bench_study.hitlist_service.snapshots
        )
        # CAIDA: one trace per /48 unit per cycle; a trace costs ~path
        # length packets — count conservatively as 1 probe per unit.
        caida_units = sum(1 for _ in split_routed_prefixes(bench_world))
        caida_cycles = 5  # 10 weeks at 14-day cycles
        caida_probes = caida_units * caida_cycles
        return hitlist_probes, caida_probes

    hitlist_probes, caida_probes = benchmark(tally)

    rows = []
    for name, probes, discovered in (
        ("NTP passive", 0, len(bench_study.ntp)),
        ("IPv6 Hitlist", hitlist_probes, len(bench_study.hitlist)),
        ("CAIDA routed /48", caida_probes, len(bench_study.caida)),
    ):
        per_address = probes / discovered if discovered else float("inf")
        rows.append(
            [name, probes, discovered, f"{per_address:,.1f}"]
        )
    lines = [
        format_table(
            ["methodology", "unsolicited probes", "addresses", "probes/address"],
            rows,
            title="Measurement cost: probes sent per address discovered",
        ),
        "",
        "The passive corpus costs zero unsolicited packets (its servers "
        "answer queries clients sent anyway) and dwarfs both active "
        "datasets — the paper's core methodological claim.",
    ]
    publish("probe_cost", "\n".join(lines))

    assert hitlist_probes > 0 and caida_probes > 0
    assert len(bench_study.ntp) > len(bench_study.hitlist)
    assert len(bench_study.ntp) > len(bench_study.caida)
