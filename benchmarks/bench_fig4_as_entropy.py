"""Figure 4 — per-AS IID entropy CDFs for the top-5 ASes.

Paper shape (Fig. 4a, full period): three of the top five ASes track the
aggregate high-entropy curve; Reliance Jio and Telkomsel show distinctly
lower-entropy modes (Jio randomizes only the lower four IID bytes for a
third of its addresses; Telkomsel leans on DHCPv6 pools).  Fig. 4b
repeats the analysis for a single day (1 July 2022).
"""

from repro.analysis.distributions import ECDF
from repro.analysis.figures import render_cdf_chart
from repro.core import top_as_entropy_distributions
from repro.world import DAY, WEEK

from conftest import publish


def _label(world):
    def name(asn):
        record = world.registry.lookup(asn)
        return record.name if record else f"AS{asn}"

    return name


def test_fig4_as_entropy(benchmark, bench_world, bench_study):
    full = benchmark(
        top_as_entropy_distributions,
        bench_study.ntp,
        bench_world.ipv6_origin_asn,
        5,
        None,
        _label(bench_world),
    )

    start = bench_study.campaign.config.start
    one_day = (start + 22 * WEEK, start + 22 * WEEK + DAY)  # ~1 July 2022
    daily = top_as_entropy_distributions(
        bench_study.ntp,
        bench_world.ipv6_origin_asn,
        top=5,
        window=one_day,
        as_name=_label(bench_world),
    )

    lines = [
        render_cdf_chart(
            full,
            x_label="normalized IID Shannon entropy",
            title="Figure 4a: top-5 AS entropy CDFs (full campaign)",
        ),
        "",
        render_cdf_chart(
            daily,
            x_label="normalized IID Shannon entropy",
            title="Figure 4b: top-5 AS entropy CDFs (single day)",
        ),
        "",
    ]
    medians = {name: ECDF(values).median for name, values in full.items()}
    lines.append(
        "full-period medians: "
        + ", ".join(f"{name}={value:.2f}" for name, value in medians.items())
    )
    lines.append(
        "paper: T-Mobile/ChinaNet/China Mobile track ~0.8; Reliance Jio "
        "and Telkomsel show low-entropy modes"
    )
    publish("fig4_as_entropy", "\n".join(lines))

    # Shape: Jio's median sits below the generic carriers' medians.
    if "Reliance Jio" in medians:
        generic = [
            value
            for name, value in medians.items()
            if name in ("T-Mobile US", "China Mobile", "ChinaNet")
        ]
        if generic:
            assert medians["Reliance Jio"] < max(generic)
