"""Figure 6 + §5.2 — EUI-64 tracking: lifetimes, /64 spread, classes.

Paper shape: EUI-64 IIDs are *less* likely to be seen only once than
general IIDs (~55% vs 60–70%) and show a long persistence tail (Fig. 6a);
most appear in one /64 but a heavy tail spans dozens to thousands
(Fig. 6b); 8.7% of MACs appear in >=2 /64s, classified as 86% mostly
static, 8% prefix reassignment, 5% changing providers, 0.44% user
movement, 0.01% MAC reuse.
"""

from repro.analysis.figures import render_ccdf_chart, render_cdf_chart
from repro.analysis.tables import format_table
from repro.core import (
    address_lifetime_summary,
    analyze_tracking,
    eui64_iid_lifetimes,
)
from repro.core.tracking import TrackingClass
from repro.world import DAY

from conftest import publish

_PAPER_FRACTIONS = {
    TrackingClass.MOSTLY_STATIC: "86%",
    TrackingClass.PREFIX_REASSIGNMENT: "8%",
    TrackingClass.CHANGING_PROVIDERS: "5%",
    TrackingClass.USER_MOVEMENT: "0.44%",
    TrackingClass.MAC_REUSE: "0.01%",
}


def test_fig6_tracking(benchmark, bench_world, bench_study):
    report = benchmark(
        analyze_tracking,
        bench_study.ntp,
        bench_world.ipv6_origin_asn,
        bench_world.country_of,
    )

    eui_lifetimes = [l / DAY for l in eui64_iid_lifetimes(bench_study.ntp)]
    slash64_counts = [float(count) for count in report.slash64_counts()]
    eui_seen_once = sum(1 for l in eui_lifetimes if l == 0.0) / len(
        eui_lifetimes
    )
    all_seen_once = address_lifetime_summary(
        bench_study.ntp
    ).seen_once_fraction

    lines = [
        render_cdf_chart(
            {"EUI-64 IIDs": eui_lifetimes},
            x_label="EUI-64 IID lifetime (days)",
            title="Figure 6a: CDF of EUI-64 IID lifetimes",
        ),
        "",
        "EUI-64 IIDs seen once: %.0f%% vs all addresses %.0f%% (paper: "
        "~55%% vs 60-70%%)" % (100 * eui_seen_once, 100 * all_seen_once),
        "",
        render_ccdf_chart(
            {"EUI-64 MACs": slash64_counts},
            x_label="distinct /64s per EUI-64 MAC",
            title="Figure 6b: CCDF of /64s per EUI-64 IID",
        ),
        "",
        "MACs in >=2 /64s: %d of %d = %.1f%% (paper: 8.7%%)"
        % (
            report.multi_slash64_macs,
            report.unique_macs,
            100 * report.multi_slash64_fraction,
        ),
        "",
    ]
    fractions = report.class_fractions()
    rows = [
        [
            cls.value,
            report.classes[cls],
            f"{100 * fractions[cls]:.2f}%",
            _PAPER_FRACTIONS[cls],
        ]
        for cls in TrackingClass
    ]
    lines.append(
        format_table(
            ["class", "MACs", "measured", "paper"],
            rows,
            title="§5.2 classification of multi-/64 EUI-64 MACs",
        )
    )
    publish("fig6_tracking", "\n".join(lines))

    # Shape: EUI-64 IIDs persist more than general addresses; the class
    # ranking's head is mostly-static, with reassignment second.
    assert eui_seen_once < all_seen_once
    assert (
        report.classes[TrackingClass.MOSTLY_STATIC]
        >= report.classes[TrackingClass.PREFIX_REASSIGNMENT]
    )
    assert max(slash64_counts) >= 2
