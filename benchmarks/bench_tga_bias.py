"""Extension — TGA training bias (the paper's §1 claim, tested).

"Target generation algorithms must be trained on *some* hitlist and are
biased to the types of addresses contained in their training data."

This bench trains the same two TGAs once on the (router/CPE-flavoured)
IPv6 Hitlist and once on a same-size sample of the (client-flavoured)
NTP corpus, probes each candidate set, and compares what each training
diet discovers: hit rate, IID entropy of the hits, and the share of hits
that are client devices.
"""

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.ipv6 import iid_of
from repro.analysis.distributions import ECDF
from repro.analysis.tables import format_table
from repro.scan.tga import ClusterExpansion, NibbleModel
from repro.world import CAMPAIGN_EPOCH, WEEK, ResponderKind
from repro.world.rng import split_rng

from conftest import publish

BUDGET = 3_000


def _evaluate(world, seeds, when, label):
    rows = []
    for name, generator in (
        ("entropy/ip-style", NibbleModel()),
        ("6Gen-style", ClusterExpansion()),
    ):
        rng = split_rng(1234, "tga", label, name)
        candidates = generator.fit(seeds).generate(BUDGET, rng)
        hits = []
        clients = 0
        for candidate in candidates:
            response = world.probe(candidate, when)
            if response is None:
                continue
            hits.append(candidate)
            if (
                response.kind is ResponderKind.DEVICE
                and response.device is not None
                and not response.device.device_type.is_infrastructure
            ):
                clients += 1
        hit_rate = len(hits) / len(candidates) if candidates else 0.0
        median_entropy = (
            ECDF(
                [normalized_iid_entropy(iid_of(hit)) for hit in hits]
            ).median
            if hits
            else float("nan")
        )
        rows.append(
            [
                label,
                name,
                len(candidates),
                len(hits),
                f"{100 * hit_rate:.1f}%",
                f"{median_entropy:.2f}",
                clients,
            ]
        )
    return rows


def test_tga_bias(benchmark, bench_world, bench_study):
    when = CAMPAIGN_EPOCH + 30 * WEEK
    hitlist_seeds = set(bench_study.hitlist.addresses())
    rng = split_rng(1234, "tga-sample")
    ntp_all = sorted(bench_study.ntp.addresses())
    ntp_seeds = set(
        rng.sample(ntp_all, min(len(hitlist_seeds), len(ntp_all)))
    )

    def run():
        rows = _evaluate(bench_world, hitlist_seeds, when, "Hitlist-trained")
        rows += _evaluate(bench_world, ntp_seeds, when, "NTP-trained")
        return rows

    rows = benchmark(run)

    table = format_table(
        [
            "training set", "TGA", "candidates", "hits", "hit rate",
            "median hit entropy", "client hits",
        ],
        rows,
        title="TGA training bias (paper §1: models inherit their "
              "hitlist's biases)",
    )
    publish("tga_bias", table)

    by_key = {(row[0], row[1]): row for row in rows}
    # The paper's claim, quantified:
    # 1. Hitlist-trained generators find things — but only low-entropy
    #    infrastructure (hidden rack servers, router-style numbering).
    assert by_key[("Hitlist-trained", "entropy/ip-style")][3] > 0
    assert by_key[("Hitlist-trained", "6Gen-style")][3] > 0
    assert float(by_key[("Hitlist-trained", "entropy/ip-style")][5]) < 0.3
    # 2. NTP-trained generators inherit the client flavour: whatever
    #    they hit skews high-entropy (aliased space), and *actual*
    #    ephemeral clients remain ungeneratable for every TGA.
    ntp_row = by_key[("NTP-trained", "entropy/ip-style")]
    if ntp_row[3] > 0:
        assert float(ntp_row[5]) > 0.5
    for row in rows:
        assert row[6] == 0  # no TGA ever synthesizes a live client
