"""Shared fixtures for the benchmark harness.

One moderate-scale world and one full study are built per session and
shared by every bench; each bench then times its analysis step and writes
the regenerated table/figure (paper-vs-measured) both to stdout and to
``benchmarks/output/<name>.txt``.

Scale note: the paper's corpus is 7.9B addresses from the production
Internet; the bench world collects a few hundred thousand observations
from a ~2700-network simulation.  Absolute counts differ by construction;
the *shapes* — orderings, ratios, CDF positions — are the reproduction
targets (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core import StudyConfig, run_study
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world

from jsonout import OUTPUT_DIR, publish_text

BENCH_SEED = 42

BENCH_WORLD_CONFIG = WorldConfig(
    seed=BENCH_SEED,
    n_fixed_ases=30,
    n_cellular_ases=8,
    n_hosting_ases=8,
    n_home_networks=1500,
    n_cellular_subscribers=600,
    n_hosting_networks=60,
)


@pytest.fixture(scope="session")
def bench_world():
    return build_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_study(bench_world):
    return run_study(
        bench_world,
        StudyConfig(start=CAMPAIGN_EPOCH, weeks=31, seed=BENCH_SEED),
    )


def publish(name: str, text: str) -> None:
    """Print a bench's regenerated artifact and persist it to disk."""
    publish_text(name, text)
