"""Memory — monolithic in-memory corpus vs the streaming segment store.

A multi-month campaign used to hold its entire corpus in the collector
process until the final ``save_corpus``.  With
:class:`repro.core.segments.SegmentStore` the day-loop flushes sealed,
CRC-covered segments whenever the buffer crosses a byte budget, so the
resident set stays bounded by the budget instead of growing with the
address population.

This bench feeds the *same* deterministic ~30k-address observation
stream to both sinks in separate subprocesses (so each child's peak RSS
is its own), then loads both on-disk corpora back and asserts they are
byte-identical — the fold over ``[first, last, count]`` records is
associative, so any segmentation must reproduce the monolithic bytes.

Runs standalone too (CI perf smoke)::

    PYTHONPATH=src python benchmarks/bench_segment_store.py \
        --segment-bytes 8192 --check

``--check`` exits non-zero when the corpora diverge or the segmented
child's peak RSS is not below the monolithic child's.  Results land in
``benchmarks/output/BENCH_segments.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import pathlib
import random
import resource
import subprocess
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(_SRC))

MONOLITHIC_FILE = "monolithic.corpus.bin"


def synth_address(seed: int, index: int) -> int:
    """The ``index``-th synthetic address — a pure function, so neither
    child has to hold the address population in memory."""
    digest = hashlib.blake2b(
        f"{seed}:{index}".encode(), digest_size=16
    ).digest()
    return int.from_bytes(digest, "big") | (1 << 127)


def stream(events: int, addresses: int, seed: int):
    """Deterministic sighting tuples; ~``events / addresses`` sightings
    per address exercise the min/max/sum fold, not just insertion."""
    rng = random.Random(seed)
    for position in range(events):
        address = synth_address(seed, rng.randrange(addresses))
        first = rng.uniform(0.0, 8e6)
        yield address, first, first + rng.uniform(0.0, 8e6), 1 + rng.randrange(4)


def reset_peak_rss() -> None:
    """Reset the kernel's peak-RSS watermark for this process.

    On Linux ``ru_maxrss`` survives fork+exec — a child spawned from a
    fat parent (say, a pytest session) inherits the parent's high-water
    mark and the measurement is meaningless.  Writing ``5`` to
    ``/proc/self/clear_refs`` resets ``VmHWM`` to the current RSS.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:
        pass


def peak_rss_kib() -> float:
    """This process's high-water resident set in KiB.

    Prefers ``VmHWM`` from ``/proc/self/status`` (the only counter
    :func:`reset_peak_rss` can reset); falls back to
    ``getrusage(RUSAGE_SELF).ru_maxrss`` where /proc is unavailable.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1])
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


def run_child(mode: str, args) -> int:
    """Child entry: consume the stream into one sink, print JSON."""
    from repro.core.corpus import AddressCorpus
    from repro.core.segments import SegmentBufferedCorpus, SegmentStore
    from repro.core.storage import save_corpus

    directory = pathlib.Path(args.child_dir)
    reset_peak_rss()
    observations = stream(args.events, args.addresses, args.seed)
    t0 = time.perf_counter()
    if mode == "monolithic":
        corpus = AddressCorpus("bench")
        for address, first, last, count in observations:
            corpus.record_interval(address, first, last, count)
        save_corpus(corpus, directory / MONOLITHIC_FILE)
        distinct = len(corpus)
    else:
        store = SegmentStore(
            directory, name="bench", segment_bytes=args.segment_bytes
        )
        buffered = SegmentBufferedCorpus("bench", store)
        buffered.set_window(0, 7)
        for address, first, last, count in observations:
            buffered.record_interval(address, first, last, count)
        buffered.seal()
        store.commit(buffered.take_sealed(), completed_weeks=1)
        distinct = sum(
            meta.records for meta in store.load_manifest().segments
        )
    seconds = time.perf_counter() - t0
    print(
        json.dumps(
            {
                "peak_rss_kib": round(peak_rss_kib(), 1),
                "seconds": round(seconds, 4),
                "records": distinct,
            }
        )
    )
    return 0


def measure(mode: str, directory: pathlib.Path, args) -> dict:
    """Run one child subprocess and parse its JSON report."""
    process = subprocess.run(
        [
            sys.executable,
            str(pathlib.Path(__file__).resolve()),
            "--child", mode,
            "--child-dir", str(directory),
            "--events", str(args.events),
            "--addresses", str(args.addresses),
            "--seed", str(args.seed),
            "--segment-bytes", str(args.segment_bytes),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(process.stdout.strip().splitlines()[-1])


def corpora_identical(directory: pathlib.Path) -> bool:
    from repro.core.segments import SegmentedCorpusReader
    from repro.core.storage import load_corpus, save_corpus_binary

    def as_bytes(corpus) -> bytes:
        buffer = io.BytesIO()
        save_corpus_binary(corpus, buffer)
        return buffer.getvalue()

    monolithic = load_corpus(directory / MONOLITHIC_FILE)
    segmented = SegmentedCorpusReader.open(directory).load("bench")
    return as_bytes(monolithic) == as_bytes(segmented)


def run_bench(args) -> dict:
    from repro.core.segments import SegmentedCorpusReader

    with tempfile.TemporaryDirectory(prefix="bench-segments-") as name:
        directory = pathlib.Path(name)
        monolithic = measure("monolithic", directory, args)
        segmented = measure("segmented", directory, args)
        reader = SegmentedCorpusReader.open(directory)
        metas = reader.segments()
        identical = corpora_identical(directory)
        monolithic_bytes = (directory / MONOLITHIC_FILE).stat().st_size
        segment_bytes_total = sum(meta.size_bytes for meta in metas)
    return {
        "events": args.events,
        "addresses": args.addresses,
        "seed": args.seed,
        "segment_bytes": args.segment_bytes,
        "segments": len(metas),
        "monolithic_peak_rss_kib": monolithic["peak_rss_kib"],
        "segmented_peak_rss_kib": segmented["peak_rss_kib"],
        "rss_ratio": round(
            segmented["peak_rss_kib"] / monolithic["peak_rss_kib"], 4
        ),
        "monolithic_seconds": monolithic["seconds"],
        "segmented_seconds": segmented["seconds"],
        "monolithic_file_bytes": monolithic_bytes,
        "segment_file_bytes": segment_bytes_total,
        "corpora_identical": identical,
    }


def render(payload: dict) -> str:
    saved = (
        payload["monolithic_peak_rss_kib"]
        - payload["segmented_peak_rss_kib"]
    )
    return "\n".join(
        [
            "Collector memory: monolithic corpus vs streaming segment store",
            "",
            f"stream: {payload['events']:,} sightings over "
            f"{payload['addresses']:,} addresses "
            f"(flush budget {payload['segment_bytes']:,} B, "
            f"{payload['segments']} segments)",
            f"monolithic: {payload['monolithic_peak_rss_kib']:,.0f} KiB "
            f"peak RSS, {payload['monolithic_seconds']:.2f}s",
            f"segmented:  {payload['segmented_peak_rss_kib']:,.0f} KiB "
            f"peak RSS, {payload['segmented_seconds']:.2f}s",
            f"memory: {payload['rss_ratio']:.2f}x of monolithic "
            f"({saved:,.0f} KiB saved), "
            f"corpora identical: {payload['corpora_identical']}",
        ]
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--addresses", type=int, default=30_000, metavar="N",
        help="distinct addresses in the synthetic stream (default: 30000)",
    )
    parser.add_argument(
        "--events", type=int, default=90_000, metavar="N",
        help="sighting events, i.e. re-observations included "
             "(default: 90000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--segment-bytes", type=int, default=8192, metavar="B",
        help="flush budget handed to the segment store (default: 8192)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the corpora diverge or the segmented "
             "peak RSS is not below --max-rss-ratio of the monolithic",
    )
    parser.add_argument(
        "--max-rss-ratio", type=float, default=1.0, metavar="X",
        help="with --check, fail when segmented/monolithic peak RSS "
             "is at or above X (default: 1.0, i.e. must be below)",
    )
    parser.add_argument("--child", choices=("monolithic", "segmented"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-dir", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return run_child(args.child, args)

    from jsonout import publish_text, write_bench_json

    payload = run_bench(args)
    publish_text("segment_store", render(payload))
    write_bench_json("segments", payload)

    if args.check:
        if not payload["corpora_identical"]:
            print(
                "FAIL: segmented corpus diverges from monolithic",
                file=sys.stderr,
            )
            return 1
        if payload["rss_ratio"] >= args.max_rss_ratio:
            print(
                f"FAIL: segmented peak RSS is {payload['rss_ratio']:.2f}x "
                f"of monolithic (required < {args.max_rss_ratio:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {payload['rss_ratio']:.2f}x peak RSS, corpora identical"
        )
    return 0


def test_segment_store_memory(benchmark):
    """Harness entry: equivalence + the memory win, then a timed flush
    loop at the CI flush budget."""
    parser_args = argparse.Namespace(
        addresses=30_000, events=90_000, seed=42, segment_bytes=8192
    )
    payload = run_bench(parser_args)
    from jsonout import publish_text, write_bench_json

    publish_text("segment_store", render(payload))
    write_bench_json("segments", payload)
    assert payload["corpora_identical"]
    assert payload["rss_ratio"] < 1.0

    from repro.core.segments import SegmentBufferedCorpus, SegmentStore

    def segmented_round():
        with tempfile.TemporaryDirectory() as name:
            store = SegmentStore(name, name="bench", segment_bytes=8192)
            buffered = SegmentBufferedCorpus("bench", store)
            buffered.set_window(0, 7)
            for address, first, last, count in stream(10_000, 4_000, 42):
                buffered.record_interval(address, first, last, count)
            buffered.seal()
            store.commit(buffered.take_sealed(), completed_weeks=1)

    benchmark.pedantic(segmented_round, rounds=3, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
