"""Figure 5 — seven-category address composition, NTP vs Hitlist.

Paper shape (1 July 2022): the NTP corpus is ~2/3 high entropy plus ~21%
medium; the Hitlist is only ~20% medium+high, its Low Byte fraction is
~33x the NTP corpus's, and it carries ~3% IPv4-mapped addresses versus
the NTP corpus's 0.00002%.
"""

from repro.addr.patterns import AddressCategory
from repro.analysis.tables import format_table
from repro.core import compare_category_compositions
from repro.world import DAY, WEEK

from conftest import publish

_CATEGORY_ORDER = [
    AddressCategory.ZEROES,
    AddressCategory.LOW_BYTE,
    AddressCategory.LOW_2_BYTES,
    AddressCategory.IPV4_MAPPED,
    AddressCategory.HIGH_ENTROPY,
    AddressCategory.MEDIUM_ENTROPY,
    AddressCategory.LOW_ENTROPY,
]

_PAPER_NOTES = {
    AddressCategory.LOW_BYTE: "Hitlist ~33x NTP",
    AddressCategory.IPV4_MAPPED: "Hitlist 3% vs NTP 0.00002%",
    AddressCategory.HIGH_ENTROPY: "NTP ~66%",
    AddressCategory.MEDIUM_ENTROPY: "NTP ~21%",
}


def test_fig5_categories(benchmark, bench_world, bench_study):
    start = bench_study.campaign.config.start
    one_day = (start + 22 * WEEK, start + 22 * WEEK + DAY)

    compositions = benchmark(
        compare_category_compositions,
        [bench_study.ntp, bench_study.hitlist],
        bench_world.ipv6_origin_asn,
        bench_world.ipv4_origin_asn,
        one_day,
        5,     # min_as_instances, scaled from the paper's 100
        0.05,  # min_as_fraction, scaled from the paper's 10%
    )

    ntp = compositions["ntp-pool"]
    hitlist = compositions["ipv6-hitlist"]
    rows = []
    for category in _CATEGORY_ORDER:
        rows.append(
            [
                category.value,
                f"{100 * ntp[category]:.3f}%",
                f"{100 * hitlist[category]:.3f}%",
                _PAPER_NOTES.get(category, ""),
            ]
        )
    table = format_table(
        ["category", "NTP corpus", "IPv6 Hitlist", "paper"],
        rows,
        title="Figure 5: address category fractions (single day)",
    )
    publish("fig5_categories", table)

    # Shape assertions from the paper's narrative.
    assert ntp[AddressCategory.HIGH_ENTROPY] > 0.4
    assert hitlist[AddressCategory.LOW_BYTE] > ntp[AddressCategory.LOW_BYTE]
    assert (
        hitlist[AddressCategory.IPV4_MAPPED]
        >= ntp[AddressCategory.IPV4_MAPPED]
    )
    assert (
        ntp[AddressCategory.HIGH_ENTROPY] + ntp[AddressCategory.MEDIUM_ENTROPY]
        > hitlist[AddressCategory.HIGH_ENTROPY]
        + hitlist[AddressCategory.MEDIUM_ENTROPY]
    )
