"""§4.2 — backscanning responsiveness and aliased-network discovery.

Paper numbers: ~2/3 of 71.3M probed NTP clients responded; random
same-/64 targets responded 3.5% of the time; 98% of the inferred aliased
space was also in the Hitlist's alias list, but backscanning discovered
aliased prefixes the Hitlist misses; 3,841,751 NTP clients lived in
aliased /64s versus only 23 such addresses in the Hitlist.
"""

import pytest

from repro.core import BackscanCampaign
from repro.net.prefixes import Prefix

from conftest import publish


@pytest.fixture(scope="session")
def alias_report(bench_world, bench_study):
    campaign = BackscanCampaign(
        bench_world, bench_study.campaign, vantage_count=5, seed=99
    )
    return campaign.run(start_day=30 * 7, days=7)


def test_backscan_aliases(benchmark, bench_world, bench_study, alias_report):
    report = alias_report
    service = bench_study.hitlist_service

    def analyze():
        known = 0
        for prefix64 in report.aliased_slash64s:
            if service.is_aliased(prefix64 | 1):
                known += 1
        hitlist_clients_in_aliased = sum(
            1
            for address in bench_study.hitlist.addresses()
            if (address & ~((1 << 64) - 1)) in report.aliased_slash64s
        )
        return known, hitlist_clients_in_aliased

    known, hitlist_in_aliased = benchmark(analyze)

    total_aliased = len(report.aliased_slash64s)
    lines = [
        "Backscanning and aliased networks (paper §4.2)",
        "",
        "NTP clients probed: %d; responsive: %d (%.1f%%; paper ~67%%)"
        % (
            report.probed_clients,
            report.responsive_clients,
            100 * report.client_responsive_fraction,
        ),
        "random same-/64 targets probed: %d; responsive: %d (%.1f%%; "
        "paper 3.5%%)"
        % (
            report.random_probed,
            report.random_responsive,
            100 * report.random_responsive_fraction,
        ),
        "aliased /64s inferred: %d; already in Hitlist alias list: %d "
        "(%.0f%%; paper 98%%)"
        % (
            total_aliased,
            known,
            100 * known / total_aliased if total_aliased else 0.0,
        ),
        "NTP clients inside aliased /64s: %d vs Hitlist addresses inside "
        "them: %d (paper: 3,841,751 vs 23)"
        % (len(report.clients_in_aliased_64s), hitlist_in_aliased),
    ]
    publish("backscan_aliases", "\n".join(lines))

    # Shape: random responsiveness is rare and aliased-driven; the NTP
    # corpus sees far more clients in aliased space than the Hitlist.
    assert report.random_responsive_fraction < 0.25
    if report.clients_in_aliased_64s:
        assert len(report.clients_in_aliased_64s) > hitlist_in_aliased
