"""§5.3 — EUI-64 geolocation via wired→wireless offset inference.

Paper numbers: 2.69M geolocated BSSIDs queried; offsets inferred for 117
OUIs with >=500 pairs; 225,354 MACs geolocated; 75% of geolocations in
Germany (AVM Fritz!Box dominance — 80% of geolocated MACs are AVM).
"""

from repro.analysis.tables import format_table
from repro.geo import geolocate_corpus

from conftest import publish


def test_geolocation(benchmark, bench_world, bench_study):
    report = benchmark(
        geolocate_corpus,
        list(bench_study.ntp.eui64_addresses()),
        bench_world.bssid_db,
        12,  # min_pairs, scaled down from the paper's 500
    )

    top = report.top_countries(5)
    rows = [
        [country, f"{100 * share:.1f}%"] for country, share in top
    ]
    lines = [
        "Geolocation of EUI-64 devices (paper §5.3)",
        "",
        "EUI-64 addresses fed in: %d; unique MACs: %d"
        % (report.eui64_addresses, report.unique_macs),
        "wardriving DB size: %d BSSIDs (paper: 2,692,307)"
        % len(bench_world.bssid_db),
        "OUIs with accepted offsets: %d (paper: 117)" % len(report.offsets),
        "MACs geolocated: %d (paper: 225,354)" % report.located_count,
        "",
        format_table(
            ["country", "share of geolocations"],
            rows,
            title="top countries (paper: DE 75%, MX 7%, IN 4%, FR 3%, LU 2%)",
        ),
    ]
    inferred = sorted(report.offsets.values(), key=lambda o: -o.pairs)[:5]
    lines.append("")
    lines.append(
        "sample inferred offsets: "
        + ", ".join(
            f"OUI {offset.oui:06x} -> {offset.offset:+d} "
            f"(support {offset.support})"
            for offset in inferred
        )
    )
    publish("geolocation", "\n".join(lines))

    # Shape: the attack works, and Germany dominates through AVM CPE.
    assert report.located_count > 0
    assert report.offsets
    if top:
        assert top[0][0] == "DE"
        assert top[0][1] > 0.3
    # Every inferred offset must be the vendor's true one (1..4 by
    # construction of the world).
    for offset in report.offsets.values():
        assert offset.offset == 1 + (offset.oui % 4)
