"""Ablation — nibble-level vs byte-level IID entropy.

The paper computes Shannon entropy over the IID's 16 hex nibbles.  An
8-byte alphabet is cheaper per IID but saturates at log2(8)=3 bits and
reclassifies a meaningful share of addresses across the 0.25/0.75 class
boundaries.  This bench measures both the disagreement rate and the
speed difference on the NTP corpus.
"""

from repro.addr.entropy import (
    entropy_class,
    normalized_byte_entropy,
    normalized_iid_entropy,
)
from repro.addr.ipv6 import iid_of

from conftest import publish

SAMPLE = 20_000


def test_ablation_entropy_granularity(benchmark, bench_study):
    iids = [iid_of(a) for a in list(bench_study.ntp.addresses())[:SAMPLE]]

    nibble_values = benchmark(
        lambda: [normalized_iid_entropy(iid) for iid in iids]
    )
    byte_values = [normalized_byte_entropy(iid) for iid in iids]

    disagreements = sum(
        1
        for nibble, byte in zip(nibble_values, byte_values)
        if entropy_class(nibble) is not entropy_class(min(byte, 1.0))
    )
    mean_nibble = sum(nibble_values) / len(nibble_values)
    mean_byte = sum(byte_values) / len(byte_values)

    lines = [
        "Ablation: entropy alphabet granularity",
        "",
        f"IIDs sampled: {len(iids):,}",
        f"mean normalized entropy: nibbles {mean_nibble:.3f}, "
        f"bytes {mean_byte:.3f}",
        "class disagreements (low/medium/high boundaries): "
        f"{disagreements:,} ({100 * disagreements / len(iids):.1f}%)",
        "",
        "Byte-level entropy saturates early (8 symbols, max 3 bits): a "
        "random IID's 8 bytes are almost always all-distinct, pinning "
        "its normalized entropy at 1.0 and erasing the structure the "
        "paper's Fig. 4 per-AS analysis depends on.",
    ]
    publish("ablation_entropy_granularity", "\n".join(lines))

    # The metrics genuinely differ — the paper's choice is not cosmetic.
    assert disagreements > 0
    assert mean_byte > mean_nibble
