"""Serving throughput — coalesced vectorized lookups vs one-per-await.

Builds a synthetic clustered corpus (same generator as the analysis
bench), seals it into a segment store, derives the mmap-backed
``SERVING.rsi`` index, and drives the
:class:`repro.serve.CoalescingEngine` with 64 concurrent clients three
ways:

* **unbatched** — ``coalesce=False``, one kernel call per awaited query:
  the naive async-server baseline;
* **coalesced** — the same one-query-per-await clients, but every query
  arriving in one event-loop tick is answered by a single vectorized
  binary search;
* **batched** — clients issue ``batch()`` calls of ~256 addresses (the
  remote client's ``*_batch`` shape), coalesced across clients.

With ``--server``, the wire protocols are compared too: one ``repro
serve`` process is driven remotely over both JSON-lines and RSB1
binary frames with pipelined 1024-address batches of mixed ops
(record/origin/contains), answers digested for bit-identity, and the
binary-over-JSON throughput ratio reported; a second, ``--serve-workers
2 --json-only`` fleet proves the negotiation downgrade (a binary client
lands on ``protocol == "json"`` with correct answers).

Reported per mode: aggregate lookups/s and p50/p99 per-query latency.
``--check`` additionally proves correctness end to end: every serving
answer bit-identical to the in-process :class:`CorpusIndex` plus
:meth:`RoutingTable.origin_asn` ground truth, remote (TCP) answers
bit-identical to local ones **under both wire protocols** when
``--server`` is given, the batched speedup at least ``--min-speedup``,
the RSB1 throughput at least ``--min-wire-speedup`` times JSON-lines,
and — the zero-copy proof — all of it still true after every sealed
``.seg`` is deleted.

Runs standalone (CI perf smoke)::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --addresses 140000 --check --server

Results land in ``benchmarks/output/BENCH_serve.json``, with the
per-protocol wire sections also published standalone as
``BENCH_serve_wire_binary.json`` / ``BENCH_serve_wire_json.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(_SRC))

from repro.core.index import CorpusIndex
from repro.core.kernels import NO_MAC
from repro.core.segments import SegmentStore
from repro.serve import (
    CoalescingEngine,
    PROTOCOL_BINARY,
    PROTOCOL_JSON,
    READY_PREFIX,
    RemoteHitlistClient,
    ServingIndex,
    build_serving_index,
)

from bench_analysis_index import build_corpus, build_routing, generate_events
from jsonout import publish_text, write_bench_json

CLIENTS = 64
UNBATCHED_PER_CLIENT = 200
COALESCED_PER_CLIENT = 1500
BATCH_SIZE = 256
BATCHES_PER_CLIENT = 24

#: Multi-worker sweep: client *processes* driving the fleet (separate
#: processes so the drivers don't share the servers' GIL) and batched
#: rounds per driver.
SWEEP_DRIVERS = 4
SWEEP_ROUNDS = 60

#: Wire comparison: pipelined batches per op per protocol, their size,
#: in-flight cap, and the op mix (record is the encode-heaviest reply,
#: origin and contains the common scalar shapes).
WIRE_BATCH = 1024
WIRE_BATCHES = 64
WIRE_INFLIGHT = 16
WIRE_OPS = ("record", "origin", "contains")


def build_store(directory, n_addresses, seed):
    """Seal the synthetic corpus into several segments; return routing."""
    table, _, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(max(50, n_addresses // 150))]
    events = generate_events(n_addresses, seed, blocks, macs)
    store = SegmentStore(directory, name="serve-bench")
    metas = []
    segments = 6
    span = (len(events) + segments - 1) // segments
    for number in range(segments):
        chunk = events[number * span : (number + 1) * span]
        corpus = build_corpus("serve-bench", chunk)
        metas.append(
            store.write_segment(
                corpus,
                segment_id=f"seg-{number:03d}",
                start_day=number * 7,
                end_day=(number + 1) * 7,
            )
        )
    store.commit(metas, completed_weeks=segments)
    return table


def query_mix(index, seed):
    """Ground-truth addresses plus misses, shuffled deterministically."""
    import random

    rng = random.Random(seed)
    queries = list(index.addresses)
    # ~10% misses of every shape: absent IID, absent /64, absent /48.
    for _ in range(max(1, len(queries) // 10)):
        base = rng.choice(index.addresses)
        kind = rng.randrange(3)
        if kind == 0:
            queries.append(base ^ (1 + rng.getrandbits(8)))
        elif kind == 1:
            queries.append(base ^ (1 << 70))
        else:
            queries.append(base ^ (1 << 90))
    rng.shuffle(queries)
    return queries


def expected_answers(gt, table, queries):
    """The in-process oracle every serving mode is checked against."""
    row_of = {address: row for row, address in enumerate(gt.addresses)}
    s48 = {address >> 80 for address in gt.addresses}
    s64 = {address >> 64 for address in gt.addresses}
    out = {op: [] for op in (
        "record", "lifetime", "entropy", "features",
        "origin", "contains", "slash48", "slash64",
    )}
    for query in queries:
        row = row_of.get(query)
        if row is None:
            for op in ("record", "lifetime", "entropy", "features"):
                out[op].append(None)
        else:
            out["record"].append(
                (gt.first[row], gt.last[row], gt.counts[row])
            )
            out["lifetime"].append(gt.last[row] - gt.first[row])
            out["entropy"].append(gt.entropies[row])
            mac = gt.macs[row]
            out["features"].append((
                gt.entropies[row],
                gt.pattern_codes[row],
                None if mac == NO_MAC else mac,
            ))
        out["contains"].append(row is not None)
        out["slash48"].append(query >> 80 in s48)
        out["slash64"].append(query >> 64 in s64)
        out["origin"].append(table.origin_asn(query))
    return out


def check_index(index, expected, queries):
    """Assert every batch query matches the oracle, bit for bit."""
    mismatches = []
    for op, method in (
        ("record", index.record_batch),
        ("lifetime", index.lifetime_batch),
        ("entropy", index.entropy_batch),
        ("features", index.features_batch),
        ("origin", index.origin_batch),
        ("contains", index.contains_batch),
        ("slash48", index.slash48_batch),
        ("slash64", index.slash64_batch),
    ):
        if method(queries) != expected[op]:
            mismatches.append(op)
    return mismatches


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, int(fraction * len(sorted_values))
    )
    return sorted_values[position]


async def drive_singles(engine, queries, per_client):
    """64 concurrent clients, one awaited query each step."""
    latencies = []

    async def client(offset):
        step = CLIENTS
        for position in range(per_client):
            query = queries[(offset + position * step) % len(queries)]
            started = time.perf_counter()
            await engine.query("contains", query)
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    await asyncio.gather(*(client(n) for n in range(CLIENTS)))
    elapsed = time.perf_counter() - started
    return CLIENTS * per_client, elapsed, latencies


async def drive_batches(engine, queries):
    """64 concurrent clients issuing ~256-address batch() calls."""
    latencies = []

    async def client(offset):
        for call in range(BATCHES_PER_CLIENT):
            start = (offset * BATCHES_PER_CLIENT + call) * BATCH_SIZE
            chunk = [
                queries[(start + n) % len(queries)]
                for n in range(BATCH_SIZE)
            ]
            started = time.perf_counter()
            await engine.batch("contains", chunk)
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    await asyncio.gather(*(client(n) for n in range(CLIENTS)))
    elapsed = time.perf_counter() - started
    return CLIENTS * BATCHES_PER_CLIENT * BATCH_SIZE, elapsed, latencies


def measure(index, queries):
    """Throughput + latency for the three serving modes."""
    modes = {}

    async def run_all():
        gc.collect()
        engine = CoalescingEngine(index, coalesce=False)
        count, elapsed, latencies = await drive_singles(
            engine, queries, UNBATCHED_PER_CLIENT
        )
        modes["unbatched"] = (count, elapsed, latencies, engine)

        gc.collect()
        engine = CoalescingEngine(index)
        count, elapsed, latencies = await drive_singles(
            engine, queries, COALESCED_PER_CLIENT
        )
        modes["coalesced"] = (count, elapsed, latencies, engine)

        gc.collect()
        engine = CoalescingEngine(index)
        count, elapsed, latencies = await drive_batches(engine, queries)
        modes["batched"] = (count, elapsed, latencies, engine)

    asyncio.run(run_all())
    report = {}
    for mode, (count, elapsed, latencies, engine) in modes.items():
        latencies.sort()
        report[mode] = {
            "lookups": count,
            "seconds": round(elapsed, 6),
            "lookups_per_second": round(count / elapsed, 1),
            "latency_p50_us": round(1e6 * percentile(latencies, 0.50), 1),
            "latency_p99_us": round(1e6 * percentile(latencies, 0.99), 1),
            "kernel_calls": engine.batches_executed,
            "queries_per_kernel_call": round(
                engine.queries_served / max(1, engine.batches_executed), 1
            ),
        }
    return report


async def check_remote(host, port, expected, queries, protocol):
    """Remote answers must equal the oracle (hence the local engine)."""
    sample = queries[: min(len(queries), 4096)]
    client = await RemoteHitlistClient.connect(
        host, int(port), protocol=protocol
    )
    mismatches = []
    try:
        if client.protocol != protocol:
            mismatches.append(f"{protocol}:negotiation")
        for op, method in (
            ("record", client.record_batch),
            ("lifetime", client.lifetime_batch),
            ("entropy", client.entropy_batch),
            ("features", client.features_batch),
            ("origin", client.origin_batch),
            ("contains", client.contains_batch),
            ("slash48", client.in_slash48_batch),
            ("slash64", client.in_slash64_batch),
        ):
            if await method(sample) != expected[op][: len(sample)]:
                mismatches.append(f"{protocol}:{op}")
        stats = await client.stats()
    finally:
        await client.aclose()
    return mismatches, stats


def _spawn_server(directory, *extra_args):
    """Spawn ``repro serve``; returns (process, host, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(directory)]
        + list(extra_args),
        env={**os.environ, "PYTHONPATH": str(_SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        ready = process.stdout.readline().strip()
        if not ready.startswith(READY_PREFIX):
            raise RuntimeError(f"server failed to start: {ready!r}")
    except BaseException:
        process.kill()
        process.wait(timeout=30)
        raise
    _, _, host, port = ready.split()
    return process, host, int(port)


def _stop_server(process):
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=30)


def run_server_check(directory, expected, queries):
    """Spawn ``repro serve``; verify answers under both protocols."""
    process, host, port = _spawn_server(directory)
    mismatches = []
    try:
        for protocol in (PROTOCOL_BINARY, PROTOCOL_JSON):
            found, stats = asyncio.run(
                check_remote(host, port, expected, queries, protocol)
            )
            mismatches.extend(found)
    finally:
        _stop_server(process)
    return mismatches, stats


async def _drive_protocol(host, port, protocol, queries):
    """Pipelined WIRE_BATCH-address batches of mixed ops, timed.

    Answers land in slot order (completion order must not change the
    digest), and the digest is computed *after* the timed region so the
    measurement is wire work, not hashing.
    """
    import hashlib

    client = await RemoteHitlistClient.connect(
        host, port, protocol=protocol
    )
    calls = []
    for number in range(WIRE_BATCHES):
        start = number * WIRE_BATCH
        chunk = [
            queries[(start + n) % len(queries)]
            for n in range(WIRE_BATCH)
        ]
        for op in WIRE_OPS:
            calls.append((getattr(client, f"{op}_batch"), chunk))
    answers = [None] * len(calls)
    semaphore = asyncio.Semaphore(WIRE_INFLIGHT)

    async def one(slot, method, chunk):
        async with semaphore:
            answers[slot] = await method(chunk)

    async with client:
        granted = client.protocol
        started = time.perf_counter()
        await asyncio.gather(
            *(
                one(slot, method, chunk)
                for slot, (method, chunk) in enumerate(calls)
            )
        )
        elapsed = time.perf_counter() - started
    digest = hashlib.sha256()
    for batch in answers:
        digest.update(json.dumps(batch).encode())
    lookups = len(calls) * WIRE_BATCH
    return {
        "requested": protocol,
        "granted": granted,
        "batch_size": WIRE_BATCH,
        "ops": list(WIRE_OPS),
        "lookups": lookups,
        "seconds": round(elapsed, 6),
        "lookups_per_second": round(lookups / elapsed, 1),
        "answers_digest": digest.hexdigest(),
    }


def run_wire_comparison(directory, queries):
    """RSB1 vs JSON-lines batched remote throughput, same server.

    The acceptance gate: bit-identical answers (equal digests) and a
    binary-over-JSON speedup of at least ``--min-wire-speedup``.
    """
    process, host, port = _spawn_server(
        directory, "--reload-interval", "0"
    )
    per_protocol = {}
    try:
        for protocol in (PROTOCOL_JSON, PROTOCOL_BINARY):
            per_protocol[protocol] = asyncio.run(
                _drive_protocol(host, port, protocol, queries)
            )
    finally:
        _stop_server(process)
    binary = per_protocol[PROTOCOL_BINARY]
    jsonl = per_protocol[PROTOCOL_JSON]
    return {
        "batch_size": WIRE_BATCH,
        "per_protocol": per_protocol,
        "speedup": round(
            binary["lookups_per_second"]
            / jsonl["lookups_per_second"],
            2,
        ),
        "identical": (
            binary["answers_digest"] == jsonl["answers_digest"]
        ),
        "negotiated": (
            binary["granted"] == PROTOCOL_BINARY
            and jsonl["granted"] == PROTOCOL_JSON
        ),
    }


def run_downgrade_check(directory, expected, queries):
    """A binary client against a 2-worker ``--json-only`` fleet.

    Proves the negotiation downgrade under the pre-forked fan-out: the
    client requested RSB1, every worker declines, and the connection
    keeps answering correctly over JSON-lines.
    """
    process, host, port = _spawn_server(
        directory,
        "--serve-workers", "2",
        "--json-only",
        "--reload-interval", "0",
    )
    try:

        async def go():
            client = await RemoteHitlistClient.connect(
                host, port, protocol=PROTOCOL_BINARY
            )
            async with client:
                sample = queries[: min(len(queries), 2048)]
                answers = await client.contains_batch(sample)
                return (
                    client.protocol,
                    answers == expected["contains"][: len(sample)],
                )

        granted, identical = asyncio.run(go())
    finally:
        _stop_server(process)
    return {
        "fleet_workers": 2,
        "requested": PROTOCOL_BINARY,
        "granted": granted,
        "downgraded": granted == PROTOCOL_JSON,
        "answers_identical": identical,
    }


def _sweep_driver(host, port, queries, rounds, offset, out_queue):
    """One client process: batched contains over a deterministic slice.

    Returns ``(lookups, seconds, answers_digest)`` via the queue; the
    digest covers every answer in issue order, so two sweeps with the
    same (queries, rounds, offset) are bit-identical iff digests match
    — regardless of which worker the kernel landed each connection on.
    """
    import hashlib

    async def go():
        client = await RemoteHitlistClient.connect(host, port)
        digest = hashlib.sha256()
        lookups = 0
        async with client:
            started = time.perf_counter()
            for round_number in range(rounds):
                start = (offset + round_number) * BATCH_SIZE
                chunk = [
                    queries[(start + n) % len(queries)]
                    for n in range(BATCH_SIZE)
                ]
                answers = await client.contains_batch(chunk)
                digest.update(json.dumps(answers).encode())
                lookups += len(answers)
            elapsed = time.perf_counter() - started
        return lookups, elapsed, digest.hexdigest()

    out_queue.put(asyncio.run(go()))


def _drive_fleet(host, port, queries):
    """SWEEP_DRIVERS client processes against one fleet; aggregate."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    out_queue = context.Queue()
    drivers = [
        context.Process(
            target=_sweep_driver,
            args=(
                host,
                port,
                queries,
                SWEEP_ROUNDS,
                number * SWEEP_ROUNDS,
                out_queue,
            ),
        )
        for number in range(SWEEP_DRIVERS)
    ]
    for driver in drivers:
        driver.start()
    results = [out_queue.get(timeout=600) for _ in drivers]
    for driver in drivers:
        driver.join(timeout=60)
    lookups = sum(result[0] for result in results)
    # Wall-clock of the slowest driver: they run concurrently.
    elapsed = max(result[1] for result in results)
    digests = sorted(result[2] for result in results)
    return {
        "lookups": lookups,
        "seconds": round(elapsed, 6),
        "lookups_per_second": round(lookups / elapsed, 1),
        "digests": digests,
    }


def run_worker_sweep(directory, queries, workers):
    """Throughput of ``--serve-workers 1`` vs ``--serve-workers N``.

    The acceptance bar scales with the hardware: N workers can only
    beat one where there are cores to run them, so the required
    speedup is ``min(min_worker_speedup, 0.8 * min(N, cpu_count))`` —
    the full 2x bar on multi-core machines, an honest no-regression
    sanity bound (~0.8x) on a single core.
    """
    sweep = {
        "workers": workers,
        "drivers": SWEEP_DRIVERS,
        "cpu_count": os.cpu_count() or 1,
        "per_count": {},
    }
    for count in sorted({1, workers}):
        process, host, port = _spawn_server(
            directory,
            "--serve-workers",
            str(count),
            "--reload-interval",
            "0",
        )
        try:
            sweep["per_count"][str(count)] = _drive_fleet(
                host, port, queries
            )
        finally:
            _stop_server(process)
    single = sweep["per_count"]["1"]
    fleet = sweep["per_count"][str(workers)]
    sweep["speedup"] = round(
        fleet["lookups_per_second"] / single["lookups_per_second"], 2
    )
    sweep["identical"] = single["digests"] == fleet["digests"]
    return sweep


def run_bench(n_addresses, seed=11, server=False, serve_workers=0):
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        directory = pathlib.Path(tmp)
        table = build_store(directory, n_addresses, seed)
        build_started = time.perf_counter()
        build_serving_index(directory, routing=table)
        build_seconds = time.perf_counter() - build_started

        index = ServingIndex.open(directory)
        gt_started = time.perf_counter()
        from repro.core.segments import SegmentedCorpusReader

        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(directory).load()
        )
        gt_seconds = time.perf_counter() - gt_started
        queries = query_mix(gt, seed)
        expected = expected_answers(gt, table, queries)

        mismatched_ops = check_index(index, expected, queries)
        remote_mismatches, remote_stats = [], None
        wire_comparison = downgrade = None
        if server:
            remote_mismatches, remote_stats = run_server_check(
                directory, expected, queries
            )
            wire_comparison = run_wire_comparison(directory, queries)
            downgrade = run_downgrade_check(
                directory, expected, queries
            )

        worker_sweep = None
        if serve_workers > 1:
            worker_sweep = run_worker_sweep(
                directory, queries, serve_workers
            )

        modes = measure(index, queries)

        # Zero-copy proof: with every sealed segment gone, a fresh open
        # still answers everything, identically.
        index.close()
        removed = 0
        for segment in directory.glob("*.seg"):
            segment.unlink()
            removed += 1
        index = ServingIndex.open(directory)
        zero_copy_mismatches = check_index(index, expected, queries)
        index.close()

        speedup = (
            modes["coalesced"]["lookups_per_second"]
            / modes["unbatched"]["lookups_per_second"]
        )
        payload = {
            "addresses": len(gt.addresses),
            "queries": len(queries),
            "clients": CLIENTS,
            "index_rows": modes and len(gt.addresses),
            "index_build_seconds": round(build_seconds, 3),
            "ground_truth_build_seconds": round(gt_seconds, 3),
            "modes": modes,
            "coalesced_speedup": round(speedup, 2),
            "batched_speedup": round(
                modes["batched"]["lookups_per_second"]
                / modes["unbatched"]["lookups_per_second"],
                2,
            ),
            "results_identical": not mismatched_ops,
            "zero_copy_identical": not zero_copy_mismatches,
            "segments_deleted_for_zero_copy_proof": removed,
            "remote_checked": bool(server),
            "remote_identical": not remote_mismatches,
        }
        if remote_stats is not None:
            payload["remote_rows"] = remote_stats["rows"]
        if wire_comparison is not None:
            payload["wire"] = wire_comparison
        if downgrade is not None:
            payload["downgrade"] = downgrade
        if worker_sweep is not None:
            payload["worker_sweep"] = worker_sweep
        payload["_mismatches"] = {
            "local": mismatched_ops,
            "zero_copy": zero_copy_mismatches,
            "remote": remote_mismatches,
        }
        return payload


def render(payload):
    lines = [
        "serving throughput: coalesced vectorized lookups vs one-per-await",
        f"  corpus: {payload['addresses']:,} addresses, "
        f"{payload['queries']:,} distinct queries, "
        f"{payload['clients']} concurrent clients",
        f"  index build: {payload['index_build_seconds']:.3f}s "
        f"(in-process ground truth: "
        f"{payload['ground_truth_build_seconds']:.3f}s)",
    ]
    for mode in ("unbatched", "coalesced", "batched"):
        row = payload["modes"][mode]
        lines.append(
            f"  {mode:10s} {row['lookups_per_second']:>12,.0f}/s   "
            f"p50 {row['latency_p50_us']:>8,.1f}us   "
            f"p99 {row['latency_p99_us']:>8,.1f}us   "
            f"{row['queries_per_kernel_call']:>7,.1f} q/kernel-call"
        )
    lines.append(
        f"  coalesced speedup over unbatched: "
        f"{payload['coalesced_speedup']:.1f}x "
        f"(batched: {payload['batched_speedup']:.1f}x)"
    )
    lines.append(
        f"  results identical to in-process index: "
        f"{payload['results_identical']}"
    )
    lines.append(
        f"  zero-copy (all {payload['segments_deleted_for_zero_copy_proof']}"
        f" .seg deleted) identical: {payload['zero_copy_identical']}"
    )
    if payload["remote_checked"]:
        lines.append(
            f"  remote (TCP, both protocols) identical: "
            f"{payload['remote_identical']}"
        )
    wire_row = payload.get("wire")
    if wire_row:
        for protocol in (PROTOCOL_JSON, PROTOCOL_BINARY):
            row = wire_row["per_protocol"][protocol]
            lines.append(
                f"  wire {protocol:7s} "
                f"{row['lookups_per_second']:>12,.0f}/s over TCP "
                f"(batch {row['batch_size']}, "
                f"ops {'/'.join(row['ops'])})"
            )
        lines.append(
            f"  RSB1 speedup over JSON-lines: "
            f"{wire_row['speedup']:.2f}x, answers identical: "
            f"{wire_row['identical']}"
        )
    downgrade = payload.get("downgrade")
    if downgrade:
        lines.append(
            f"  downgrade vs {downgrade['fleet_workers']}-worker "
            f"--json-only fleet: requested "
            f"{downgrade['requested']}, granted "
            f"{downgrade['granted']}, answers identical: "
            f"{downgrade['answers_identical']}"
        )
    sweep = payload.get("worker_sweep")
    if sweep:
        for count, row in sorted(
            sweep["per_count"].items(), key=lambda item: int(item[0])
        ):
            lines.append(
                f"  fleet x{count:>2s}  "
                f"{row['lookups_per_second']:>12,.0f}/s over TCP  "
                f"({sweep['drivers']} driver processes)"
            )
        lines.append(
            f"  {sweep['workers']}-worker speedup over 1: "
            f"{sweep['speedup']:.2f}x on {sweep['cpu_count']} cores, "
            f"answers identical: {sweep['identical']}"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--addresses", type=int, default=140_000,
        help="synthetic corpus size (default: 140000, the reference "
             "corpus scale)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on any result mismatch or when the "
             "coalesced speedup is below --min-speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0, metavar="X",
        help="with --check: required batched-over-unbatched speedup "
             "(default: 5.0)",
    )
    parser.add_argument(
        "--server", action="store_true",
        help="also spawn `repro serve` and verify the TCP answers "
             "under both wire protocols, compare RSB1 vs JSON-lines "
             "throughput, and prove the --json-only downgrade",
    )
    parser.add_argument(
        "--min-wire-speedup", type=float, default=2.0, metavar="X",
        help="with --check and --server: required RSB1-over-JSON "
             "batched remote throughput ratio (default: 2.0)",
    )
    parser.add_argument(
        "--serve-workers", type=int, default=0, metavar="N",
        help="also sweep a real `repro serve --serve-workers N` fleet "
             "vs 1 worker over TCP with multiprocess client drivers "
             "(0 skips the sweep; default: 0)",
    )
    parser.add_argument(
        "--min-worker-speedup", type=float, default=2.0, metavar="X",
        help="with --check and --serve-workers: required N-worker "
             "speedup over 1 worker, capped by available cores as "
             "0.8 * min(N, cpu_count) (default: 2.0)",
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        args.addresses,
        seed=args.seed,
        server=args.server,
        serve_workers=args.serve_workers,
    )
    mismatches = payload.pop("_mismatches")
    sweep = payload.get("worker_sweep")
    if sweep:
        # N workers can only beat 1 where there are cores to run them;
        # scale the bar to the hardware (the full bar on real
        # multi-core, a no-regression sanity bound on a single core).
        sweep["required_speedup"] = round(
            min(
                args.min_worker_speedup,
                0.8 * max(1, min(sweep["workers"], sweep["cpu_count"])),
            ),
            2,
        )
    publish_text("serve", render(payload))
    write_bench_json("serve", payload)
    wire_row = payload.get("wire")
    if wire_row:
        # Per-protocol artifacts (CI uploads BENCH_serve*.json).
        for protocol, row in wire_row["per_protocol"].items():
            write_bench_json(f"serve_wire_{protocol}", row)

    if args.check:
        failed = False
        for scope, ops in mismatches.items():
            if ops:
                print(f"CHECK FAILED: {scope} mismatches on {ops}")
                failed = True
        if payload["batched_speedup"] < args.min_speedup:
            print(
                f"CHECK FAILED: batched speedup "
                f"{payload['batched_speedup']:.2f}x "
                f"< required {args.min_speedup:.2f}x"
            )
            failed = True
        if wire_row:
            if not wire_row["identical"]:
                print(
                    "CHECK FAILED: RSB1 answers differ from "
                    "JSON-lines answers"
                )
                failed = True
            if not wire_row["negotiated"]:
                print(
                    "CHECK FAILED: wire negotiation did not grant "
                    "the requested protocols"
                )
                failed = True
            if wire_row["speedup"] < args.min_wire_speedup:
                print(
                    f"CHECK FAILED: RSB1 speedup "
                    f"{wire_row['speedup']:.2f}x < required "
                    f"{args.min_wire_speedup:.2f}x"
                )
                failed = True
        downgrade = payload.get("downgrade")
        if downgrade and not (
            downgrade["downgraded"]
            and downgrade["answers_identical"]
        ):
            print(
                "CHECK FAILED: binary client did not downgrade "
                f"cleanly against the --json-only fleet: {downgrade}"
            )
            failed = True
        if sweep:
            if not sweep["identical"]:
                print(
                    "CHECK FAILED: multi-worker answers differ from "
                    "single-worker answers"
                )
                failed = True
            required = sweep["required_speedup"]
            if sweep["speedup"] < required:
                print(
                    f"CHECK FAILED: {sweep['workers']}-worker speedup "
                    f"{sweep['speedup']:.2f}x < required "
                    f"{required:.2f}x (cores: {sweep['cpu_count']})"
                )
                failed = True
        if failed:
            return 1
        print(
            f"CHECK OK: identical results"
            + (
                ", remote verified on both protocols"
                if payload["remote_checked"]
                else ""
            )
            + f", {payload['batched_speedup']:.1f}x batched speedup"
            + (
                f", {wire_row['speedup']:.2f}x RSB1 over JSON"
                if wire_row
                else ""
            )
            + (
                ", downgrade proven"
                if payload.get("downgrade")
                else ""
            )
            + (
                f", {sweep['speedup']:.2f}x fleet speedup "
                f"(identical answers)"
                if sweep
                else ""
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
