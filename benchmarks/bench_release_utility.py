"""Extension — what the /48-truncated release costs scanners.

The paper's ethics position (§3, §6): release only /48 aggregates, since
full addresses are PII.  The open question it poses — "what is an
appropriate way to share hitlists so as to enable Internet scanning
tools to use them?" — has a measurable core: how much scanning utility
survives truncation?  This bench probes (a) the full corpus addresses,
(b) low-byte guesses derived from the released /48s, and (c) random
addresses inside the released /48s, and compares hit rates.
"""

from repro.core import build_release
from repro.analysis.tables import format_table
from repro.scan.targetgen import subnet_low_byte_candidates
from repro.scan.zmap6 import ZMap6
from repro.world import CAMPAIGN_EPOCH, WEEK
from repro.world.rng import split_rng

from conftest import publish

SAMPLE = 2_000


def test_release_utility(benchmark, bench_world, bench_study):
    when = CAMPAIGN_EPOCH + 30 * WEEK
    rng = split_rng(9, "release-utility")
    corpus = bench_study.ntp
    artifact = build_release(corpus)

    full_targets = rng.sample(sorted(corpus.addresses()), SAMPLE)
    released_48s = sorted(artifact.prefix_counts)
    guess_targets = list(
        subnet_low_byte_candidates(released_48s, subnets=2, hosts=2)
    )
    if len(guess_targets) > SAMPLE:
        guess_targets = rng.sample(guess_targets, SAMPLE)
    random_targets = [
        released_48s[rng.randrange(len(released_48s))] | rng.getrandbits(80)
        for _ in range(SAMPLE)
    ]

    scanner = ZMap6(bench_world, seed=77)

    def run():
        rates = {}
        for label, targets in (
            ("full addresses", full_targets),
            ("/48 release + low-byte guessing", guess_targets),
            ("/48 release + random addresses", random_targets),
        ):
            results = scanner.scan(targets, when)
            rates[label] = sum(r.responsive for r in results) / len(results)
        return rates

    rates = benchmark(run)

    rows = [[label, f"{100 * rate:.1f}%"] for label, rate in rates.items()]
    lines = [
        format_table(
            ["target source", "hit rate"],
            rows,
            title="Scanning utility of the ethics-aware /48 release",
        ),
        "",
        f"(release: {artifact.prefix_count:,} /48s from "
        f"{artifact.address_count:,} addresses; probes at campaign week 30)",
        "",
        "Truncation keeps scanners pointed at active space but destroys "
        "the per-address hit rate — the privacy/utility trade the paper "
        "asks the community to navigate.",
    ]
    publish("release_utility", "\n".join(lines))

    assert rates["full addresses"] > rates["/48 release + low-byte guessing"]
    assert rates["full addresses"] > rates["/48 release + random addresses"]