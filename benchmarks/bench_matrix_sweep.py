"""Throughput — the matrix sweep harness vs running cells directly.

The sweep scheduler buys isolation (a crashed or hung cell cannot sink
the sweep) and crash-safe resume, but it pays for them with per-cell
process spawns and an atomically rewritten ``MATRIX.json`` after every
transition.  This bench quantifies that tax: the same grid of cells is
run once as a plain in-process loop over ``execute_cell`` (the floor)
and then through ``run_matrix`` at 1/2/4 matrix workers, reporting
cells/minute and the single-worker harness overhead, and asserting the
swept corpora stay bit-identical to the direct ones.

Runs standalone too (CI perf smoke)::

    PYTHONPATH=src python benchmarks/bench_matrix_sweep.py --check

``--check`` exits non-zero when the harness overhead exceeds
``--max-overhead`` percent (default 5) or any cell's corpus digest
diverges from the direct run.  Results land in
``benchmarks/output/BENCH_matrix.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(_SRC))

from repro.matrix import MatrixSpec, execute_cell, run_matrix

#: Cells sized so per-cell work dominates the scheduler's fixed costs
#: (process spawn plus manifest rewrites) without making the bench slow.
BENCH_OVERRIDES = {
    "n_home_networks": 200,
    "n_cellular_subscribers": 100,
    "n_hosting_networks": 10,
}


def bench_spec(seeds):
    return MatrixSpec(
        presets=("tiny",),
        overrides=(BENCH_OVERRIDES,),
        faults=(None, "flap=0.2,loss=0.05,seed=5"),
        weeks=(2,),
        workers=(1,),
        seeds=tuple(seeds),
    )


def run_direct(spec, directory):
    """The floor: every cell in-process, sequentially, no harness."""
    digests = {}
    t0 = time.perf_counter()
    for cell in spec.expand():
        result = execute_cell(cell, pathlib.Path(directory) / cell.cell_id)
        digests[cell.cell_id] = result["digest"]
    return time.perf_counter() - t0, digests


def run_swept(spec, directory, matrix_workers):
    t0 = time.perf_counter()
    result = run_matrix(
        spec, directory, matrix_workers=matrix_workers
    )
    seconds = time.perf_counter() - t0
    assert result.counts["ok"] == len(spec.expand()), result.counts
    digests = {
        cell_id: record.digest
        for cell_id, record in result.manifest.cells.items()
    }
    return seconds, digests


def run_bench(seeds):
    spec = bench_spec(seeds)
    cells = len(spec.expand())
    with tempfile.TemporaryDirectory() as scratch:
        scratch = pathlib.Path(scratch)
        direct_seconds, direct_digests = run_direct(
            spec, scratch / "direct"
        )
        payload = {
            "cells": cells,
            "direct_seconds": round(direct_seconds, 4),
            "direct_cells_per_minute": round(
                60 * cells / direct_seconds, 1
            ),
            "digests_identical": True,
            "workers": {},
        }
        for matrix_workers in (1, 2, 4):
            seconds, digests = run_swept(
                spec, scratch / f"sweep-{matrix_workers}", matrix_workers
            )
            if digests != direct_digests:
                payload["digests_identical"] = False
            payload["workers"][str(matrix_workers)] = {
                "seconds": round(seconds, 4),
                "cells_per_minute": round(60 * cells / seconds, 1),
                "speedup_vs_direct": round(direct_seconds / seconds, 2),
            }
        single = payload["workers"]["1"]["seconds"]
        payload["overhead_pct"] = round(
            100 * (single - direct_seconds) / direct_seconds, 2
        )
    return payload


def render(payload):
    lines = [
        "Matrix sweep harness: direct execute_cell loop vs run_matrix",
        "",
        f"cells: {payload['cells']}",
        f"direct loop: {payload['direct_seconds']:.2f}s "
        f"({payload['direct_cells_per_minute']:.0f} cells/min)",
    ]
    for workers, stats in payload["workers"].items():
        lines.append(
            f"{workers} matrix worker(s): {stats['seconds']:.2f}s "
            f"({stats['cells_per_minute']:.0f} cells/min, "
            f"{stats['speedup_vs_direct']:.2f}x direct)"
        )
    lines.append(
        f"harness overhead at 1 worker: {payload['overhead_pct']:+.1f}%"
    )
    lines.append(
        "corpora bit-identical across all runs: "
        + ("yes" if payload["digests_identical"] else "NO")
    )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="number of seed-axis cells per fault regime / 2 "
             "(default: 8 -> 8 cells total)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when overhead exceeds --max-overhead or "
             "any swept corpus diverges from the direct run",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=5.0, metavar="PCT",
        help="with --check, maximum tolerated single-worker harness "
             "overhead in percent (default: 5.0)",
    )
    args = parser.parse_args(argv)

    from jsonout import publish_text, write_bench_json

    payload = run_bench(range(max(1, args.seeds // 2)))
    publish_text("matrix_sweep", render(payload))
    write_bench_json("matrix", payload)

    if args.check:
        if not payload["digests_identical"]:
            print(
                "FAIL: swept corpora diverge from the direct loop",
                file=sys.stderr,
            )
            return 1
        if payload["overhead_pct"] > args.max_overhead:
            print(
                f"FAIL: harness overhead {payload['overhead_pct']:.1f}% "
                f"exceeds {args.max_overhead:.1f}%",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {payload['overhead_pct']:+.1f}% overhead, "
            "corpora identical"
        )
    return 0


def test_matrix_sweep_throughput(benchmark):
    """Harness entry: identity + overhead numbers, then a timed small
    sweep at two matrix workers."""
    payload = run_bench(range(4))
    from jsonout import publish_text, write_bench_json

    publish_text("matrix_sweep", render(payload))
    write_bench_json("matrix", payload)
    assert payload["digests_identical"]

    timed_spec = bench_spec((0,))

    def sweep_round():
        with tempfile.TemporaryDirectory() as name:
            run_matrix(timed_spec, name, matrix_workers=2)

    benchmark(sweep_round)


if __name__ == "__main__":
    sys.exit(main())
