"""Ablation — prefix-trie longest-prefix match vs linear scan.

Every origin-AS and geolocation lookup funnels through LPM; the corpus
analyses perform millions of them.  This bench compares the trie against
the linear baseline on the bench world's real routing table.
"""

from repro.net.prefixes import LinearPrefixTable
from repro.world.rng import split_rng

from conftest import publish

LOOKUPS = 2_000


def test_ablation_lpm(benchmark, bench_world, bench_study):
    routing = bench_world.routing
    linear = LinearPrefixTable()
    for prefix, asn in routing.items():
        linear.insert(prefix, asn)

    addresses = list(bench_study.ntp.addresses())[:LOOKUPS]

    def trie_lookups():
        return [routing.origin_asn(address) for address in addresses]

    def linear_lookups():
        return [linear.lookup(address) for address in addresses]

    trie_results = benchmark(trie_lookups)
    linear_results = linear_lookups()

    import time

    t0 = time.perf_counter()
    linear_lookups()
    linear_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    trie_lookups()
    trie_seconds = time.perf_counter() - t0

    lines = [
        "Ablation: longest-prefix match implementation",
        "",
        f"table size: {len(routing):,} announcements; "
        f"{len(addresses):,} lookups",
        f"trie:   {trie_seconds * 1e6 / len(addresses):8.2f} us/lookup",
        f"linear: {linear_seconds * 1e6 / len(addresses):8.2f} us/lookup",
        f"speedup: {linear_seconds / trie_seconds:.1f}x",
    ]
    publish("ablation_lpm", "\n".join(lines))

    # Correctness: identical answers; performance: trie wins.
    assert trie_results == linear_results
    assert trie_seconds < linear_seconds
