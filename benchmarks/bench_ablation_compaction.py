"""Ablation — interval compaction of observations vs raw logging.

The corpus stores one ``[first, last, count]`` record per address rather
than every raw sighting.  This bench quantifies the trade: ingestion
speed and memory of the compacted corpus versus an append-only raw log,
on a synthetic re-observation-heavy stream (the NTP workload: stable
devices are sighted hundreds of times).
"""

import sys

from repro.core.corpus import AddressCorpus
from repro.world.rng import split_rng

from conftest import publish

STREAM_LENGTH = 200_000
UNIQUE_ADDRESSES = 20_000


def _stream():
    rng = split_rng(7, "compaction")
    addresses = [rng.getrandbits(128) for _ in range(UNIQUE_ADDRESSES)]
    return [
        (addresses[rng.randrange(UNIQUE_ADDRESSES)], float(i))
        for i in range(STREAM_LENGTH)
    ]


def _ingest_compacted(stream):
    corpus = AddressCorpus("compacted")
    for address, when in stream:
        corpus.record(address, when)
    return corpus


def _ingest_raw(stream):
    log = []
    for address, when in stream:
        log.append((address, when))
    return log


def test_ablation_compaction(benchmark):
    stream = _stream()
    corpus = benchmark(_ingest_compacted, stream)
    raw = _ingest_raw(stream)

    compacted_bytes = sys.getsizeof(corpus._records) + sum(
        sys.getsizeof(k) + sys.getsizeof(v)
        for k, v in corpus._records.items()
    )
    raw_bytes = sys.getsizeof(raw) + sum(sys.getsizeof(e) for e in raw)
    lines = [
        "Ablation: observation compaction",
        "",
        f"stream: {STREAM_LENGTH:,} sightings of {UNIQUE_ADDRESSES:,} addresses",
        f"compacted corpus: {len(corpus):,} records, ~{compacted_bytes:,} bytes",
        f"raw log: {len(raw):,} entries, ~{raw_bytes:,} bytes",
        f"memory ratio raw/compacted: {raw_bytes / compacted_bytes:.1f}x",
        "",
        "Compaction preserves everything the paper's analyses need "
        "(first/last sighting, count) at a fraction of the memory; raw "
        "logs additionally preserve inter-sighting gaps, which no "
        "analysis in the paper consumes.",
    ]
    publish("ablation_compaction", "\n".join(lines))

    # Sampling with replacement leaves ~e^-10 of the pool undrawn.
    assert UNIQUE_ADDRESSES - 5 <= len(corpus) <= UNIQUE_ADDRESSES
    assert raw_bytes > compacted_bytes
