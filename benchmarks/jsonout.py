"""Machine-readable benchmark artifacts.

Each bench publishes two artifacts under ``benchmarks/output/``: a
human-readable text rendering (via :func:`publish_text` or the conftest
``publish`` helper) and a small JSON document named ``BENCH_<name>.json``
(via :func:`write_bench_json`) that CI jobs and regression tooling can
assert on without parsing prose.

The JSON layout is deliberately flat: a ``bench`` name, the interpreter
version the numbers were taken on, and whatever scalar measurements the
bench reports.  Timings are wall-clock seconds as floats.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Any, Dict

__all__ = ["OUTPUT_DIR", "publish_text", "write_bench_json"]

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def publish_text(name: str, text: str) -> pathlib.Path:
    """Print a bench's text artifact and persist it to disk."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[artifact written to {path}]")
    return path


def write_bench_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` with the bench's measurements."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    document = {"bench": name, "python": platform.python_version()}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {path}]")
    return path
