"""Extension — hitlist rust: responsiveness decay by snapshot age.

Quantifies the "Rusty Clusters" effect the paper builds on: a published
hitlist snapshot loses responsive addresses as customer prefixes rotate
and clients churn, while passively observed client addresses rust almost
immediately.  This is the operational argument for continuous collection
over static lists.
"""

from repro.analysis.tables import format_table
from repro.core.decay import corpus_decay, responsiveness_decay
from repro.world import CAMPAIGN_EPOCH, WEEK

from conftest import publish

MAX_AGE = 8


def test_hitlist_decay(benchmark, bench_world, bench_study):
    snapshots = bench_study.hitlist_service.snapshots[:12]

    hitlist_curve = benchmark(
        responsiveness_decay, bench_world, snapshots, MAX_AGE, 300, 5
    )

    # Passive-corpus comparison: addresses first seen in week 10,
    # re-probed at increasing ages.
    week10 = (
        CAMPAIGN_EPOCH + 10 * WEEK,
        CAMPAIGN_EPOCH + 11 * WEEK,
    )
    ntp_addresses = [
        address
        for address in bench_study.ntp.addresses_in_window(*week10)
    ]
    ntp_curve = corpus_decay(
        bench_world,
        ntp_addresses,
        observed_at=week10[1],
        ages_weeks=list(range(MAX_AGE + 1)),
        sample=300,
        seed=5,
    )

    rows = [
        [
            age,
            f"{100 * hitlist_curve.get(age, float('nan')):.1f}%",
            f"{100 * ntp_curve.get(age, float('nan')):.1f}%",
        ]
        for age in range(MAX_AGE + 1)
    ]
    table = format_table(
        ["age (weeks)", "Hitlist still responsive", "NTP corpus still responsive"],
        rows,
        title="Hitlist rust: responsiveness by snapshot age",
    )
    publish("hitlist_decay", table)

    # Shape: fresh snapshots are nearly fully responsive; they decay
    # with age; passive client addresses rust far faster.
    assert hitlist_curve[0] > 0.9
    assert hitlist_curve[MAX_AGE] < hitlist_curve[0]
    assert ntp_curve[MAX_AGE] < hitlist_curve[MAX_AGE]
