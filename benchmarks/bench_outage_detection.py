"""Extension — outage detection from passive NTP activity.

The paper motivates large hitlists with applications like outage
detection (§2.1).  This bench injects whole-AS outages into a dedicated
world, runs the passive campaign with an activity recorder attached, and
scores the collapse detector against the injected ground truth —
precision, recall, and day-level localization.
"""

import pytest

from repro.analysis.tables import format_table
from repro.core import (
    ASActivityRecorder,
    CampaignConfig,
    NTPCampaign,
    detect_outages,
)
from repro.world import CAMPAIGN_EPOCH, DAY, WorldConfig, build_world

from conftest import publish

WEEKS = 12


@pytest.fixture(scope="module")
def outage_setup():
    world = build_world(
        WorldConfig(
            seed=88,
            n_fixed_ases=20,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=900,
            n_cellular_subscribers=300,
            n_hosting_networks=30,
            outage_as_count=3,
            outage_min_days=3,
            outage_max_days=7,
            campaign_weeks=WEEKS,
        )
    )
    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=WEEKS, seed=88)
    )
    recorder = ASActivityRecorder(world.ipv6_origin_asn, epoch=CAMPAIGN_EPOCH)
    campaign.extra_sinks.append(recorder)
    campaign.run()
    return world, recorder


def test_outage_detection(benchmark, outage_setup):
    world, recorder = outage_setup
    days = WEEKS * 7

    events = benchmark(detect_outages, recorder, days, 0.2, 3.0)

    truth = {
        asn: [
            (
                int((start - CAMPAIGN_EPOCH) // DAY),
                int((end - CAMPAIGN_EPOCH) // DAY),
            )
            for start, end in windows
        ]
        for asn, windows in world.outages.items()
    }

    rows = []
    detected_asns = {event.asn for event in events}
    hits = 0
    for asn, windows in sorted(truth.items()):
        for true_start, true_end in windows:
            matching = [
                event
                for event in events
                if event.asn == asn
                and event.start_day < true_end
                and event.end_day > true_start
            ]
            found = bool(matching)
            hits += found
            baseline = (
                f"{matching[0].baseline:.0f}/day" if matching else
                f"{sorted(recorder.series(asn, days))[days // 2]}/day"
            )
            rows.append(
                [
                    f"AS{asn}",
                    f"{true_start}-{true_end}",
                    (
                        f"{matching[0].start_day}-{matching[0].end_day}"
                        if matching
                        else "missed"
                    ),
                    baseline,
                ]
            )
    total_truth = sum(len(w) for w in truth.values())
    false_alarms = [
        event for event in events if event.asn not in truth
    ]
    table = format_table(
        ["AS", "injected (days)", "detected (days)", "baseline"],
        rows,
        title="Outage detection vs injected ground truth",
    )
    lines = [
        table,
        "",
        f"recall: {hits}/{total_truth} injected outages detected",
        f"false alarms (events in healthy ASes): {len(false_alarms)}",
    ]
    publish("outage_detection", "\n".join(lines))

    # Every sufficiently observed injected outage must be found, with no
    # false alarms in healthy ASes.
    assert hits >= max(1, total_truth - 1)
    assert len(false_alarms) == 0
