"""Figure 2 — address lifetime CCDF and IID lifetimes by entropy class.

Paper shape:

* Fig. 2a: >60% of addresses are observed exactly once; 1.2% persist a
  week or longer, 0.4% a month or longer, 0.03% six months or longer.
* Fig. 2b: low-entropy IIDs persist longest — ~10% of them are seen for
  a week or more, versus <=5% of medium/high-entropy IIDs.
"""

from repro.addr.entropy import EntropyClass
from repro.analysis.figures import render_ccdf_chart, render_cdf_chart
from repro.core import address_lifetime_summary, iid_lifetimes_by_entropy
from repro.world import DAY, WEEK

from conftest import publish


def test_fig2_lifetimes(benchmark, bench_study):
    summary = benchmark(address_lifetime_summary, bench_study.ntp)
    buckets = iid_lifetimes_by_entropy(bench_study.ntp)

    day_lifetimes = [l / DAY for l in bench_study.ntp.lifetimes()]
    lines = [
        render_ccdf_chart(
            {"all addresses": day_lifetimes},
            x_label="address lifetime (days)",
            title="Figure 2a: CCDF of address lifetimes",
        ),
        "",
        "measured: seen-once %.1f%% (paper >60%%), >=week %.2f%% (paper "
        "1.2%%), >=month %.2f%% (paper 0.4%%), >=6 months %.3f%% (paper "
        "0.03%%)"
        % (
            100 * summary.seen_once_fraction,
            100 * summary.week_or_longer_fraction,
            100 * summary.month_or_longer_fraction,
            100 * summary.six_months_or_longer_fraction,
        ),
        "",
    ]

    class_labels = {
        EntropyClass.LOW: "low entropy (<0.25)",
        EntropyClass.MEDIUM: "medium entropy",
        EntropyClass.HIGH: "high entropy (>=0.75)",
    }
    samples = {
        class_labels[cls]: [l / DAY for l in values]
        for cls, values in buckets.items()
        if values
    }
    lines.append(
        render_cdf_chart(
            samples,
            x_label="IID lifetime (days)",
            title="Figure 2b: CDF of IID lifetimes by entropy class",
        )
    )
    week_shares = {}
    for cls, values in buckets.items():
        if values:
            week_shares[cls] = sum(1 for l in values if l >= WEEK) / len(values)
    lines.append("")
    lines.append(
        "IIDs observed >= 1 week: "
        + ", ".join(
            f"{cls.value}={100 * share:.1f}%" for cls, share in week_shares.items()
        )
        + "  (paper: low ~10%, medium/high <=5%)"
    )
    publish("fig2_lifetimes", "\n".join(lines))

    # Shape assertions.
    assert summary.seen_once_fraction > 0.5
    assert (
        summary.week_or_longer_fraction
        > summary.month_or_longer_fraction
        >= summary.six_months_or_longer_fraction
    )
    if EntropyClass.LOW in week_shares and EntropyClass.HIGH in week_shares:
        assert week_shares[EntropyClass.LOW] > week_shares[EntropyClass.HIGH]
