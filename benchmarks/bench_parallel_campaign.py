"""Throughput — serial vs sharded multi-process NTP collection.

The keyed per-device×day RNG makes the campaign embarrassingly parallel:
any partition of the device population yields bit-identical corpora once
merged.  This bench measures what that buys in wall-clock terms on a
moderate world, one collection week, for 1/2/4 worker processes, and
asserts the corpora really are record-identical.
"""

import time

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import run_campaign_parallel
from repro.world import CAMPAIGN_EPOCH

from conftest import publish
from jsonout import write_bench_json


def _campaign(world):
    return NTPCampaign(
        world,
        CampaignConfig(start=CAMPAIGN_EPOCH, weeks=1, seed=77),
    )


def _observations(corpus):
    return sum(count for _, (_, _, count) in corpus.items())


def test_parallel_campaign_throughput(benchmark, bench_world):
    t0 = time.perf_counter()
    serial = _campaign(bench_world).run()
    serial_seconds = time.perf_counter() - t0
    observations = _observations(serial)

    lines = [
        "Sharded campaign execution: serial vs multi-process (1 week)",
        "",
        f"addresses: {len(serial):,}, observations: {observations:,}",
        f"serial: {serial_seconds:.2f}s "
        f"({observations / serial_seconds:,.0f} obs/s)",
    ]
    payload = {
        "addresses": len(serial),
        "observations": observations,
        "serial_seconds": round(serial_seconds, 4),
        "workers": {},
    }
    for workers in (2, 4):
        campaign = _campaign(bench_world)
        t0 = time.perf_counter()
        merged = run_campaign_parallel(campaign, workers=workers)
        seconds = time.perf_counter() - t0
        assert dict(merged.items()) == dict(serial.items())
        lines.append(
            f"{workers} workers: {seconds:.2f}s "
            f"({observations / seconds:,.0f} obs/s, "
            f"{serial_seconds / seconds:.2f}x serial)"
        )
        payload["workers"][str(workers)] = {
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 2),
        }

    publish("parallel_campaign", "\n".join(lines))
    write_bench_json("parallel", payload)

    # The timed loop the harness reports: a 2-worker sharded week.
    benchmark(
        lambda: run_campaign_parallel(_campaign(bench_world), workers=2)
    )
