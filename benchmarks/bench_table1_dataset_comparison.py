"""Table 1 — dataset comparison (NTP vs IPv6 Hitlist vs CAIDA).

Regenerates the paper's Table 1 plus the §3/§4.1 side numbers: the size
ratios, overlap fractions, country mix (top-5 share) and the
phone-provider AS share per dataset.

Paper values for reference:

* NTP 7.91B addresses / 9,006 ASNs / 7.21M /48s / 1,098 addrs per /48;
* Hitlist 21.4M / 18,184 / 431,851 / 50; common addrs = 1.3% of Hitlist;
* CAIDA 11.6M / 13,770 / 11.1M / 1; common addrs = 0.02% of CAIDA;
* top-5 countries (IN, CN, US, BR, ID) = 76% of the NTP corpus;
* phone-provider share: 14% (NTP) vs 2% (Hitlist).
"""

from repro.analysis.tables import format_table
from repro.core import compare_datasets, phone_provider_shares
from repro.net.geodb import country_histogram, top_country_share

from conftest import publish


def test_table1_dataset_comparison(benchmark, bench_world, bench_study):
    comparison = benchmark(
        compare_datasets,
        bench_study.ntp,
        [bench_study.hitlist, bench_study.caida],
        bench_world.ipv6_origin_asn,
    )

    lines = [comparison.render(), ""]
    lines.append(
        "size ratios: NTP/Hitlist = %.0fx (paper 370x), "
        "NTP/CAIDA = %.0fx (paper 681x)"
        % (
            comparison.size_ratio("ipv6-hitlist"),
            comparison.size_ratio("caida-routed-48"),
        )
    )
    lines.append(
        "overlap: %.1f%% of Hitlist (paper 1.3%%), "
        "%.2f%% of CAIDA (paper 0.02%%)"
        % (
            100 * comparison.overlap_fraction("ipv6-hitlist"),
            100 * comparison.overlap_fraction("caida-routed-48"),
        )
    )

    shares = phone_provider_shares(
        [bench_study.ntp, bench_study.hitlist],
        bench_world.registry,
        bench_world.ipv6_origin_asn,
    )
    lines.append(
        "phone-provider AS share: NTP %.0f%% (paper 14%%) vs "
        "Hitlist %.0f%% (paper 2%%)"
        % (100 * shares["ntp-pool"], 100 * shares["ipv6-hitlist"])
    )

    histogram = country_histogram(
        bench_study.ntp.addresses(), bench_world.geodb
    )
    ranked, share = top_country_share(histogram, top=5)
    lines.append(
        "top-5 client countries: %s = %.0f%% of corpus (paper: "
        "IN, CN, US, BR, ID = 76%%)"
        % (", ".join(country for country, _ in ranked), 100 * share)
    )
    publish("table1_dataset_comparison", "\n".join(lines))

    # Shape assertions: orderings the paper reports must hold.
    rows = {row.name: row for row in comparison.rows}
    assert rows["ntp-pool"].addresses > rows["ipv6-hitlist"].addresses
    assert rows["ntp-pool"].addresses > rows["caida-routed-48"].addresses
    assert (
        rows["ntp-pool"].avg_addresses_per_48
        > rows["ipv6-hitlist"].avg_addresses_per_48
        > rows["caida-routed-48"].avg_addresses_per_48
    )
    assert comparison.overlap_fraction("caida-routed-48") < 0.02
    assert shares["ntp-pool"] > shares["ipv6-hitlist"]
