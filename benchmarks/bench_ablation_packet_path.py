"""Ablation — full NTP packet path vs direct recording.

The campaign pushes every captured query through genuine RFC 5905
serialize → validate → respond code (the honest mode).  This bench
quantifies what that fidelity costs versus recording observations
directly, over one collection week.
"""

import time

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.world import CAMPAIGN_EPOCH

from conftest import publish


def _collect(world, full_packet_path):
    campaign = NTPCampaign(
        world,
        CampaignConfig(
            start=CAMPAIGN_EPOCH,
            weeks=1,
            seed=77,
            full_packet_path=full_packet_path,
        ),
    )
    return campaign.run()


def test_ablation_packet_path(benchmark, bench_world):
    full = benchmark(_collect, bench_world, True)

    t0 = time.perf_counter()
    fast = _collect(bench_world, False)
    fast_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    _collect(bench_world, True)
    full_seconds = time.perf_counter() - t0

    lines = [
        "Ablation: full packet path vs direct recording (1 week)",
        "",
        f"addresses collected: {len(full):,} (identical in both modes)",
        f"full packet path: {full_seconds:.2f}s",
        f"direct recording: {fast_seconds:.2f}s",
        f"packet-path overhead: {100 * (full_seconds / fast_seconds - 1):.0f}%",
    ]
    publish("ablation_packet_path", "\n".join(lines))

    # The corpora must be identical — fidelity costs time, not data.
    assert set(full.addresses()) == set(fast.addresses())
