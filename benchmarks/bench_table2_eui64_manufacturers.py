"""Table 2 + §5.1 — EUI-64 prevalence and manufacturer attribution.

Paper numbers: 238M EUI-64 addresses = 3% of the corpus (versus <121,000
expected from random IIDs); 171.6M distinct embedded MACs; the most
common "manufacturer" is **Unlisted** (73.9%) — OUIs absent from the
IEEE registry — followed by Amazon, Samsung, Sonos, vivo and other
consumer-device makers.
"""

from repro.addr.oui_db import UNLISTED, manufacturer_counts
from repro.analysis.tables import format_table
from repro.core import analyze_tracking

from conftest import publish


def test_table2_eui64_manufacturers(benchmark, bench_world, bench_study):
    report = benchmark(
        analyze_tracking,
        bench_study.ntp,
        bench_world.ipv6_origin_asn,
        bench_world.country_of,
    )

    counts = manufacturer_counts(report.tracks.keys(), bench_world.oui_db)
    rows = [
        [vendor, count]
        for vendor, count in counts.most_common(10)
    ]
    table = format_table(
        ["Manufacturer", "MACs"],
        rows,
        title="Table 2: embedded-MAC manufacturers (top 10)",
    )
    lines = [
        table,
        "",
        "EUI-64 addresses: %d = %.2f%% of corpus (paper: 3%%)"
        % (report.eui64_addresses, 100 * report.eui64_fraction),
        "expected EUI-64-lookalikes from random IIDs: %.1f (paper bound: "
        "<121,000 of 7.9B)" % report.expected_random,
        "unique embedded MACs: %d (paper: 171,611,786)" % report.unique_macs,
        "Unlisted share: %.1f%% (paper: 73.9%%)"
        % (100 * counts.get(UNLISTED, 0) / max(1, report.unique_macs)),
    ]
    publish("table2_eui64_manufacturers", "\n".join(lines))

    # Shape: EUI-64 detections vastly exceed the random-lookalike bound,
    # and unlisted OUIs top the manufacturer table.
    assert report.eui64_addresses > 10 * report.expected_random
    assert counts.most_common(1)[0][0] == UNLISTED
    assert 0.005 < report.eui64_fraction < 0.15
