"""Figure 7 — exemplar EUI-64 tracking timelines.

The paper plots four exemplar devices: (a) a MAC from an unregistered OUI
frequently renumbered inside one AS, (b) a reused MAC visible in many
countries at once, (c) a device switching between two Brazilian
providers, and (d) a Huawei MAC commuting between Chinese networks.  The
bench extracts one exemplar per §5.2 class from the corpus and renders
its sighting timeline across /64s (grouped by AS).
"""

from collections import defaultdict

from repro.addr.mac import format_mac
from repro.analysis.figures import render_timeline
from repro.core import analyze_tracking
from repro.core.tracking import TrackingClass

from conftest import publish

_PANELS = [
    (TrackingClass.PREFIX_REASSIGNMENT, "(a) frequent renumbering in one AS"),
    (TrackingClass.MAC_REUSE, "(b) MAC reuse across countries"),
    (TrackingClass.CHANGING_PROVIDERS, "(c) provider change"),
    (TrackingClass.USER_MOVEMENT, "(d) user movement between ASes"),
]


def test_fig7_timelines(benchmark, bench_world, bench_study):
    report = analyze_tracking(
        bench_study.ntp, bench_world.ipv6_origin_asn, bench_world.country_of
    )

    def extract():
        return {
            cls: report.exemplar(cls) for cls, _ in _PANELS
        }

    exemplars = benchmark(extract)

    start = bench_study.campaign.config.start
    end = bench_study.campaign.config.end
    lines = ["Figure 7: exemplar EUI-64 tracking timelines", ""]
    for cls, caption in _PANELS:
        track = exemplars[cls]
        lines.append(caption)
        if track is None:
            lines.append("  (no exemplar of this class at bench scale)")
            lines.append("")
            continue
        by_group = defaultdict(list)
        for when, prefix64, asn in track.timeline:
            record = bench_world.registry.lookup(asn) if asn else None
            label = record.name if record else f"AS{asn}"
            by_group[label].append(when)
        lines.append(
            f"  MAC {format_mac(track.mac)} — {len(track.slash64s)} /64s, "
            f"{track.transitions} transitions, ASes: "
            + ", ".join(str(asn) for asn in track.asns)
        )
        lines.append(
            render_timeline(dict(by_group), start, end, width=60)
        )
        lines.append("")
    publish("fig7_timelines", "\n".join(lines))

    # At bench scale at least the two big classes must have exemplars.
    assert exemplars[TrackingClass.PREFIX_REASSIGNMENT] is not None
    reuse = exemplars[TrackingClass.MAC_REUSE]
    if reuse is not None:
        assert len(reuse.countries) > 1
