"""Ablation — alias-detection probe count vs accuracy.

APD sends N random probes per candidate prefix (Gasser et al. use 16).
Fewer probes are cheaper but risk false positives: a dense real /64
could answer a lucky probe.  This bench sweeps N against the world's
ground truth (profiles know whether they are aliased).
"""

from repro.net.prefixes import Prefix
from repro.scan.alias import AliasDetector
from repro.world import CAMPAIGN_EPOCH

from conftest import publish

PROBE_COUNTS = (1, 2, 4, 8, 16)


def _candidates(world, per_kind=120):
    """Ground-truthed candidate /64s: aliased and dense-real."""
    aliased = []
    real = []
    when = CAMPAIGN_EPOCH + 3600.0
    for network in world.networks.values():
        prefix64 = Prefix(
            network.delegated_base(when) & ~((1 << 64) - 1), 64
        )
        if network.profile.aliased:
            if len(aliased) < per_kind:
                aliased.append(prefix64)
        elif len(real) < per_kind and network.devices:
            real.append(prefix64)
        if len(aliased) >= per_kind and len(real) >= per_kind:
            break
    return aliased, real, when


def test_ablation_alias_probes(benchmark, bench_world):
    aliased, real, when = _candidates(bench_world)

    def sweep():
        rows = []
        for probes in PROBE_COUNTS:
            detector = AliasDetector(
                bench_world, seed=5, probes_per_prefix=probes
            )
            true_positive = sum(
                1 for prefix in aliased if detector.check(prefix, when).aliased
            )
            false_positive = sum(
                1 for prefix in real if detector.check(prefix, when).aliased
            )
            rows.append((probes, true_positive, false_positive))
        return rows

    rows = benchmark(sweep)

    from repro.analysis.tables import format_table

    table = format_table(
        ["probes//64", "aliased detected", "real /64s misflagged"],
        [
            [probes, f"{tp}/{len(aliased)}", f"{fp}/{len(real)}"]
            for probes, tp, fp in rows
        ],
        title="Ablation: APD probe count vs accuracy",
    )
    publish("ablation_alias_probes", table)

    # Aliased space answers every probe, so detection is perfect at any
    # N; false positives must vanish as N grows.
    for probes, tp, fp in rows:
        assert tp == len(aliased)
    assert rows[-1][2] <= rows[0][2]
    assert rows[-1][2] == 0
