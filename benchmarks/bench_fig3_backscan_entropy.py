"""Figure 3 — IID entropy of backscanned NTP clients (hit / miss / random).

Paper shape: responsive clients ("NTP hit") skew lower-entropy than
unresponsive ones ("NTP miss") — nearly 70% of misses have entropy >0.75
versus ~50% of hits — and randomly-probed-yet-responsive addresses are
alias artifacts.
"""

import pytest

from repro.analysis.distributions import ECDF
from repro.analysis.figures import render_cdf_chart
from repro.core import BackscanCampaign

from conftest import publish


@pytest.fixture(scope="session")
def backscan_report(bench_world, bench_study):
    campaign = BackscanCampaign(
        bench_world, bench_study.campaign, vantage_count=5, seed=99
    )
    # The paper backscanned for a week after the collection campaign; we
    # use the final collection week.
    return campaign.run(start_day=30 * 7, days=7)


def test_fig3_backscan_entropy(benchmark, backscan_report):
    report = backscan_report

    def compute():
        samples = {
            "NTP hit": report.hit_entropies,
            "NTP miss": report.miss_entropies,
        }
        if report.random_responsive_entropies:
            samples["Random (responsive)"] = report.random_responsive_entropies
        return samples

    samples = benchmark(compute)

    high_miss = sum(1 for e in report.miss_entropies if e > 0.75) / max(
        1, len(report.miss_entropies)
    )
    high_hit = sum(1 for e in report.hit_entropies if e > 0.75) / max(
        1, len(report.hit_entropies)
    )
    lines = [
        render_cdf_chart(
            samples,
            x_label="normalized IID Shannon entropy",
            title="Figure 3: backscanned NTP client IID entropy",
        ),
        "",
        "entropy >0.75: misses %.0f%% vs hits %.0f%% (paper: ~70%% vs ~50%%)"
        % (100 * high_miss, 100 * high_hit),
        "responsive fraction: %.2f (paper ~0.67)"
        % report.client_responsive_fraction,
    ]
    publish("fig3_backscan_entropy", "\n".join(lines))

    # Shape: misses skew higher-entropy than hits.
    assert high_miss > high_hit
    assert 0.4 < report.client_responsive_fraction < 0.95
