"""Analysis throughput — naive per-figure scans vs the columnar index.

Every analysis in the report pipeline (Table 1 comparison, phone-provider
shares, entropy CDF, lifetimes, addressing categories, per-AS entropy,
EUI-64 tracking) used to re-scan the corpus and re-resolve one LPM origin
per address.  The :class:`repro.core.index.CorpusIndex` materializes the
shared per-address columns once and :class:`repro.core.index.CachedOrigins`
memoizes origin resolution per distinct /64, so the whole suite reads the
same pass.

This bench builds a synthetic clustered corpus (few distinct /64s, ~60
origin ASes, IIDs drawn from the paper's pattern families, announcements
more specific than /64 included), runs the full analysis suite both ways,
asserts the results are identical, and reports the end-to-end speedup —
the indexed timing *includes* building the index.

Runs standalone too (CI perf smoke)::

    PYTHONPATH=src python benchmarks/bench_analysis_index.py \
        --addresses 30000 --check

``--check`` exits non-zero when results diverge or the indexed path is
slower than the naive one.  Results land in
``benchmarks/output/BENCH_analysis.json``.

``--incremental`` benches the segmented path instead: the same corpus is
sealed into a segment store, then indexed two ways — a cold full rebuild
(read every ``.seg``, rescan every record, recompute every feature) vs
the fold of the seal-time partial indexes (``.idx`` only, zero segment
re-reads).  The fold must be bit-identical to the rebuild and, with
``--check``, reuse every partial and beat ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import gc
import pathlib
import random
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(_SRC))

from repro.addr.eui64 import mac_to_iid
from repro.addr.ipv6 import with_iid
from repro.analysis.distributions import ECDF
from repro.analysis.figures import corpus_entropy_samples
from repro.core.categories import (
    category_composition,
    top_as_entropy_distributions,
)
from repro.core.compare import compare_datasets, phone_provider_shares
from repro.core.corpus import AddressCorpus
from repro.core.index import CachedOrigins
from repro.core.lifetime import (
    address_lifetime_summary,
    eui64_iid_lifetimes,
    iid_lifetimes_by_entropy,
)
from repro.core.tracking import analyze_tracking
from repro.net.asn import ASCategory, ASRecord, ASRegistry, ISPSubtype
from repro.net.prefixes import Prefix
from repro.net.routing import RoutingTable

from jsonout import publish_text, write_bench_json

NUM_AS = 60
COUNTRIES = ("DE", "US", "JP", "FR", "BR", "IN", "GB", "NL")
#: Average addresses per distinct /64 — the clustering CachedOrigins
#: exploits (the paper's corpora are similarly /64-heavy).
CLUSTER = 24


def build_routing():
    """~60 origin ASes at /32 with /48, /64 and longer sub-announcements."""
    table = RoutingTable()
    registry = ASRegistry()
    blocks = []
    for n in range(NUM_AS):
        asn = 64500 + n
        block = (0x2001 << 112) | ((n + 1) << 96)
        blocks.append(block)
        table.announce(Prefix(block, 32), asn)
        subtype = (
            ISPSubtype.PHONE_PROVIDER if n % 3 == 0 else ISPSubtype.FIXED_LINE
        )
        registry.register(
            ASRecord(
                asn=asn,
                name=f"SYNTH-{asn}",
                country=COUNTRIES[n % len(COUNTRIES)],
                category=ASCategory.ISP,
                subtype=subtype,
            )
        )
    for n in range(0, NUM_AS, 4):
        table.announce(
            Prefix(blocks[n] | (1 << 80), 48), 64500 + (n + 1) % NUM_AS
        )
    for n in range(0, NUM_AS, 7):
        table.announce(
            Prefix(blocks[n] | (2 << 80) | (1 << 64), 64),
            64500 + (n + 2) % NUM_AS,
        )
    # Announcements more specific than /64: the memoization edge case.
    # Each /80 covers the IIDs of its /64 whose top 16 bits are zero.
    for n in (0, 5, 11):
        table.announce(Prefix(blocks[n] | (3 << 80), 80), 65100 + n)
    return table, registry, blocks


def generate_events(n_events, seed, blocks, macs):
    """Sighting tuples clustered into ``n_events / CLUSTER`` /64s."""
    rng = random.Random(seed)
    slash64s = [
        rng.choice(blocks) | (rng.randrange(6) << 80) | (rng.randrange(4) << 64)
        for _ in range(max(1, n_events // CLUSTER))
    ]
    events = []
    for position in range(n_events):
        prefix = slash64s[position % len(slash64s)]
        kind = rng.random()
        if kind < 0.20:
            iid = mac_to_iid(rng.choice(macs))
        elif kind < 0.45:
            iid = rng.randrange(1 << 16)        # low-byte patterns
        elif kind < 0.60:
            iid = rng.randrange(1 << 32)        # hex32-decodable
        else:
            iid = rng.getrandbits(64)           # high entropy
        first = rng.uniform(0.0, 8e6)
        events.append(
            (
                with_iid(prefix, iid),
                first,
                first + rng.uniform(0.0, 8e6),
                1 + rng.randrange(5),
            )
        )
    return events


def build_corpus(name, events):
    corpus = AddressCorpus(name)
    for address, first, last, count in events:
        corpus.record_interval(address, first, last, count)
    return corpus


def run_suite(ntp, active, origin, registry, ipv4_origin, country_of):
    """The corpus-bound analyses the full report runs, in report order."""
    comparison = compare_datasets(ntp, [active], origin)
    return {
        "table1": comparison.render(),
        "phone_shares": phone_provider_shares([ntp, active], registry, origin),
        "entropy_median": ECDF(corpus_entropy_samples(ntp)).median,
        "lifetimes": address_lifetime_summary(ntp),
        "iid_lifetimes": iid_lifetimes_by_entropy(ntp),
        "eui64_lifetimes": eui64_iid_lifetimes(ntp),
        "categories": category_composition(
            ntp, origin, ipv4_origin,
            min_as_instances=2, min_as_fraction=0.001,
        ),
        "top_as_entropy": top_as_entropy_distributions(ntp, origin, top=10),
        "tracking": analyze_tracking(ntp, origin, country_of),
    }


def results_match(naive, indexed):
    if naive.keys() != indexed.keys():
        return False
    for key in naive:
        left, right = naive[key], indexed[key]
        if key == "tracking":
            if (
                left.tracks != right.tracks
                or left.classes != right.classes
                or left.eui64_addresses != right.eui64_addresses
                or left.multi_slash64_macs != right.multi_slash64_macs
            ):
                return False
        elif left != right:
            return False
    return True


def run_bench(n_events, seed=11, repeat=2):
    """Time the suite naive vs indexed; return the JSON payload."""
    table, registry, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(max(50, n_events // 150))]
    events = generate_events(n_events, seed, blocks, macs)
    active_events = events[::9]

    def ipv4_origin(value):
        return 64500 + (value % NUM_AS)

    def country_getter(origin):
        def country_of(address):
            asn = origin(address)
            record = registry.lookup(asn) if asn is not None else None
            return None if record is None else record.country
        return country_of

    # Both timed regions get the same GC treatment: collect up front and
    # pause cyclic collection while the clock runs, so neither path pays
    # GC passes whose cost scales with the *other* path's retained
    # results (whichever suite runs second would otherwise be penalized).
    def isolated(fn):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - t0
        finally:
            gc.enable()

    # Each path runs ``repeat`` times and reports its best wall-clock
    # (scheduler noise and cache pollution only ever add time); the
    # equality check compares the first round's results.

    # Naive: raw per-address LPM, every analysis re-scans the records.
    naive = None
    naive_seconds = float("inf")
    for _ in range(repeat):
        ntp = build_corpus("ntp-pool", events)
        active = build_corpus("ipv6-hitlist", active_events)
        origin = table.origin_asn
        result, seconds = isolated(
            lambda: run_suite(
                ntp, active, origin, registry, ipv4_origin,
                country_getter(origin),
            )
        )
        naive = result if naive is None else naive
        naive_seconds = min(naive_seconds, seconds)

    # Indexed: one columnar pass per corpus (timed — the speedup is
    # end-to-end, including the index build), /64-memoized origins
    # shared by every analysis.  A fresh resolver per round keeps the
    # cache cold so the LPM cost is not amortized across rounds.
    indexed = None
    indexed_seconds = float("inf")
    build_seconds = float("inf")
    origins = None
    for _ in range(repeat):
        ntp = build_corpus("ntp-pool", events)
        active = build_corpus("ipv6-hitlist", active_events)
        origins = CachedOrigins.from_routing_table(table)

        def indexed_run():
            ntp.build_index(origins)
            active.build_index(origins)
            return run_suite(
                ntp, active, origins, registry, ipv4_origin,
                country_getter(origins),
            )

        result, seconds = isolated(indexed_run)
        indexed = result if indexed is None else indexed
        if seconds < indexed_seconds:
            indexed_seconds = seconds
            build_seconds = (
                ntp.index.build_seconds + active.index.build_seconds
            )

    info = origins.cache_info()
    return {
        "events": n_events,
        "repeat": repeat,
        "addresses": len(ntp),
        "distinct_slash64s": len(ntp.slash64_set()),
        "hot_slash64s": info["hot_slash64s"],
        "lpm_calls": info["lpm_calls"],
        "naive_seconds": round(naive_seconds, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "index_build_seconds": round(build_seconds, 4),
        "speedup": round(naive_seconds / indexed_seconds, 2),
        "results_equal": results_match(naive, indexed),
    }


def run_incremental_bench(n_events, seed=11, repeat=2, segments=24):
    """Cold full rebuild vs partial-index fold over one segment store."""
    import shutil
    import tempfile

    from repro.core.index import CorpusIndex
    from repro.core.segments import SegmentStore
    from repro.obs import MetricsRegistry

    _, _, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(max(50, n_events // 150))]
    events = generate_events(n_events, seed, blocks, macs)

    def isolated(fn):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - t0
        finally:
            gc.enable()

    directory = tempfile.mkdtemp(prefix="bench-incremental-")
    try:
        store = SegmentStore(directory, name="ntp-pool")
        span = max(1, len(events) // segments + 1)
        metas = []
        for number in range(0, len(events), span):
            corpus = build_corpus(
                "ntp-pool", events[number:number + span]
            )
            metas.append(
                store.write_segment(
                    corpus,
                    segment_id=f"bench-{number // span:04d}",
                    start_day=7 * (number // span),
                    end_day=7 * (number // span + 1),
                )
            )
        store.commit(metas, completed_weeks=len(metas))

        # Cold: read and CRC-check every .seg, fold records in Python,
        # full-scan feature rebuild — the pre-partial-index analysis path.
        cold_index = None
        cold_seconds = float("inf")
        for _ in range(repeat):
            reader = store.reader()
            result, seconds = isolated(
                lambda: CorpusIndex.build(reader.load())
            )
            cold_index = result if cold_index is None else cold_index
            cold_seconds = min(cold_seconds, seconds)

        # Fold: .idx files only; entropies/codes/MACs carried over from
        # seal time, so no feature recomputation and zero .seg reads.
        fold_index = None
        fold_seconds = float("inf")
        registry = None
        for _ in range(repeat):
            registry = MetricsRegistry()
            reader = SegmentStore(
                directory, name="ntp-pool", metrics=registry
            ).reader()
            result, seconds = isolated(reader.build_index)
            fold_index = result if fold_index is None else fold_index
            fold_seconds = min(fold_seconds, seconds)

        identical = (
            fold_index.addresses == cold_index.addresses
            and fold_index.slash48s == cold_index.slash48s
            and fold_index.slash64s == cold_index.slash64s
            and all(
                getattr(fold_index, column).tobytes()
                == getattr(cold_index, column).tobytes()
                for column in (
                    "first", "last", "counts", "iids",
                    "entropies", "pattern_codes", "macs",
                )
            )
        )
        return {
            "mode": "incremental",
            "events": n_events,
            "repeat": repeat,
            "addresses": len(cold_index.addresses),
            "segments": len(metas),
            "segments_reused": registry.counter_value(
                "repro_index_segments_reused_total"
            ),
            "segments_rescanned": registry.counter_value(
                "repro_index_segments_rescanned_total"
            ),
            "cold_seconds": round(cold_seconds, 4),
            "fold_seconds": round(fold_seconds, 4),
            "speedup": round(cold_seconds / fold_seconds, 2),
            "results_equal": identical,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def render_incremental(payload):
    return "\n".join(
        [
            "Segmented analysis: cold full rebuild vs partial-index fold",
            "",
            f"addresses: {payload['addresses']:,} across "
            f"{payload['segments']} sealed segments",
            f"cold rebuild: {payload['cold_seconds']:.3f}s "
            "(every .seg re-read, every feature recomputed)",
            f"partial fold: {payload['fold_seconds']:.3f}s "
            f"({payload['segments_reused']} partials folded, "
            f"{payload['segments_rescanned']} segments rescanned)",
            f"speedup: {payload['speedup']:.2f}x, "
            f"bit-identical: {payload['results_equal']}",
        ]
    )


def render(payload):
    return "\n".join(
        [
            "Analysis suite: naive per-figure scans vs columnar index",
            "",
            f"addresses: {payload['addresses']:,} "
            f"({payload['distinct_slash64s']:,} /64s, "
            f"{payload['hot_slash64s']} hot)",
            f"naive:   {payload['naive_seconds']:.2f}s "
            "(per-address LPM, per-analysis re-scan)",
            f"indexed: {payload['indexed_seconds']:.2f}s "
            f"(incl. {payload['index_build_seconds']:.2f}s index build, "
            f"{payload['lpm_calls']:,} LPM calls)",
            f"speedup: {payload['speedup']:.2f}x end-to-end, "
            f"results identical: {payload['results_equal']}",
        ]
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--addresses", type=int, default=140_000, metavar="N",
        help="sighting events to generate (default: 140000; unique "
             "addresses come out slightly lower)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
    )
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="rounds per path; the best wall-clock of N is reported "
             "(default: 2)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when results diverge or speedup < --min-speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="with --check, fail when the measured speedup is below X "
             "(default: 1.0, or 3.0 with --incremental)",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="bench the segmented path: cold full rebuild vs the fold "
             "of seal-time partial indexes",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 3.0 if args.incremental else 1.0

    if args.incremental:
        payload = run_incremental_bench(
            args.addresses, seed=args.seed, repeat=args.repeat
        )
        publish_text("analysis_incremental", render_incremental(payload))
        write_bench_json("analysis_incremental", payload)
    else:
        payload = run_bench(
            args.addresses, seed=args.seed, repeat=args.repeat
        )
        publish_text("analysis_index", render(payload))
        write_bench_json("analysis", payload)

    if args.check:
        if not payload["results_equal"]:
            print(
                "FAIL: fold diverges from rebuild"
                if args.incremental
                else "FAIL: indexed results diverge from naive",
                file=sys.stderr,
            )
            return 1
        if args.incremental and not payload["segments_reused"]:
            print(
                "FAIL: no seal-time partial index was reused",
                file=sys.stderr,
            )
            return 1
        if args.incremental and payload["segments_rescanned"]:
            print(
                f"FAIL: {payload['segments_rescanned']} segments were "
                "rescanned on the incremental path",
                file=sys.stderr,
            )
            return 1
        if payload["speedup"] < min_speedup:
            print(
                f"FAIL: speedup {payload['speedup']:.2f}x "
                f"< required {min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: {payload['speedup']:.2f}x, results identical")
    return 0


def test_analysis_index_speedup(benchmark):
    """Harness entry: reduced scale, equality + not-slower assertions."""
    payload = run_bench(30_000)
    publish_text("analysis_index", render(payload))
    write_bench_json("analysis", payload)
    assert payload["results_equal"]
    assert payload["speedup"] > 1.0

    table, registry, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(200)]
    events = generate_events(10_000, 11, blocks, macs)

    def indexed_round():
        corpus = build_corpus("ntp-pool", events)
        origins = CachedOrigins.from_routing_table(table)
        corpus.build_index(origins)
        return iid_lifetimes_by_entropy(corpus)

    benchmark.pedantic(indexed_round, rounds=3, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
