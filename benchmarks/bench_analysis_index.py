"""Analysis throughput — naive per-figure scans vs the columnar index.

Every analysis in the report pipeline (Table 1 comparison, phone-provider
shares, entropy CDF, lifetimes, addressing categories, per-AS entropy,
EUI-64 tracking) used to re-scan the corpus and re-resolve one LPM origin
per address.  The :class:`repro.core.index.CorpusIndex` materializes the
shared per-address columns once and :class:`repro.core.index.CachedOrigins`
memoizes origin resolution per distinct /64, so the whole suite reads the
same pass.

This bench builds a synthetic clustered corpus (few distinct /64s, ~60
origin ASes, IIDs drawn from the paper's pattern families, announcements
more specific than /64 included), runs the full analysis suite both ways,
asserts the results are identical, and reports the end-to-end speedup —
the indexed timing *includes* building the index.

Runs standalone too (CI perf smoke)::

    PYTHONPATH=src python benchmarks/bench_analysis_index.py \
        --addresses 30000 --check

``--check`` exits non-zero when results diverge or the indexed path is
slower than the naive one.  Results land in
``benchmarks/output/BENCH_analysis.json``.
"""

from __future__ import annotations

import argparse
import gc
import pathlib
import random
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(_SRC))

from repro.addr.eui64 import mac_to_iid
from repro.addr.ipv6 import with_iid
from repro.analysis.distributions import ECDF
from repro.analysis.figures import corpus_entropy_samples
from repro.core.categories import (
    category_composition,
    top_as_entropy_distributions,
)
from repro.core.compare import compare_datasets, phone_provider_shares
from repro.core.corpus import AddressCorpus
from repro.core.index import CachedOrigins
from repro.core.lifetime import (
    address_lifetime_summary,
    eui64_iid_lifetimes,
    iid_lifetimes_by_entropy,
)
from repro.core.tracking import analyze_tracking
from repro.net.asn import ASCategory, ASRecord, ASRegistry, ISPSubtype
from repro.net.prefixes import Prefix
from repro.net.routing import RoutingTable

from jsonout import publish_text, write_bench_json

NUM_AS = 60
COUNTRIES = ("DE", "US", "JP", "FR", "BR", "IN", "GB", "NL")
#: Average addresses per distinct /64 — the clustering CachedOrigins
#: exploits (the paper's corpora are similarly /64-heavy).
CLUSTER = 24


def build_routing():
    """~60 origin ASes at /32 with /48, /64 and longer sub-announcements."""
    table = RoutingTable()
    registry = ASRegistry()
    blocks = []
    for n in range(NUM_AS):
        asn = 64500 + n
        block = (0x2001 << 112) | ((n + 1) << 96)
        blocks.append(block)
        table.announce(Prefix(block, 32), asn)
        subtype = (
            ISPSubtype.PHONE_PROVIDER if n % 3 == 0 else ISPSubtype.FIXED_LINE
        )
        registry.register(
            ASRecord(
                asn=asn,
                name=f"SYNTH-{asn}",
                country=COUNTRIES[n % len(COUNTRIES)],
                category=ASCategory.ISP,
                subtype=subtype,
            )
        )
    for n in range(0, NUM_AS, 4):
        table.announce(
            Prefix(blocks[n] | (1 << 80), 48), 64500 + (n + 1) % NUM_AS
        )
    for n in range(0, NUM_AS, 7):
        table.announce(
            Prefix(blocks[n] | (2 << 80) | (1 << 64), 64),
            64500 + (n + 2) % NUM_AS,
        )
    # Announcements more specific than /64: the memoization edge case.
    # Each /80 covers the IIDs of its /64 whose top 16 bits are zero.
    for n in (0, 5, 11):
        table.announce(Prefix(blocks[n] | (3 << 80), 80), 65100 + n)
    return table, registry, blocks


def generate_events(n_events, seed, blocks, macs):
    """Sighting tuples clustered into ``n_events / CLUSTER`` /64s."""
    rng = random.Random(seed)
    slash64s = [
        rng.choice(blocks) | (rng.randrange(6) << 80) | (rng.randrange(4) << 64)
        for _ in range(max(1, n_events // CLUSTER))
    ]
    events = []
    for position in range(n_events):
        prefix = slash64s[position % len(slash64s)]
        kind = rng.random()
        if kind < 0.20:
            iid = mac_to_iid(rng.choice(macs))
        elif kind < 0.45:
            iid = rng.randrange(1 << 16)        # low-byte patterns
        elif kind < 0.60:
            iid = rng.randrange(1 << 32)        # hex32-decodable
        else:
            iid = rng.getrandbits(64)           # high entropy
        first = rng.uniform(0.0, 8e6)
        events.append(
            (
                with_iid(prefix, iid),
                first,
                first + rng.uniform(0.0, 8e6),
                1 + rng.randrange(5),
            )
        )
    return events


def build_corpus(name, events):
    corpus = AddressCorpus(name)
    for address, first, last, count in events:
        corpus.record_interval(address, first, last, count)
    return corpus


def run_suite(ntp, active, origin, registry, ipv4_origin, country_of):
    """The corpus-bound analyses the full report runs, in report order."""
    comparison = compare_datasets(ntp, [active], origin)
    return {
        "table1": comparison.render(),
        "phone_shares": phone_provider_shares([ntp, active], registry, origin),
        "entropy_median": ECDF(corpus_entropy_samples(ntp)).median,
        "lifetimes": address_lifetime_summary(ntp),
        "iid_lifetimes": iid_lifetimes_by_entropy(ntp),
        "eui64_lifetimes": eui64_iid_lifetimes(ntp),
        "categories": category_composition(
            ntp, origin, ipv4_origin,
            min_as_instances=2, min_as_fraction=0.001,
        ),
        "top_as_entropy": top_as_entropy_distributions(ntp, origin, top=10),
        "tracking": analyze_tracking(ntp, origin, country_of),
    }


def results_match(naive, indexed):
    if naive.keys() != indexed.keys():
        return False
    for key in naive:
        left, right = naive[key], indexed[key]
        if key == "tracking":
            if (
                left.tracks != right.tracks
                or left.classes != right.classes
                or left.eui64_addresses != right.eui64_addresses
                or left.multi_slash64_macs != right.multi_slash64_macs
            ):
                return False
        elif left != right:
            return False
    return True


def run_bench(n_events, seed=11, repeat=2):
    """Time the suite naive vs indexed; return the JSON payload."""
    table, registry, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(max(50, n_events // 150))]
    events = generate_events(n_events, seed, blocks, macs)
    active_events = events[::9]

    def ipv4_origin(value):
        return 64500 + (value % NUM_AS)

    def country_getter(origin):
        def country_of(address):
            asn = origin(address)
            record = registry.lookup(asn) if asn is not None else None
            return None if record is None else record.country
        return country_of

    # Both timed regions get the same GC treatment: collect up front and
    # pause cyclic collection while the clock runs, so neither path pays
    # GC passes whose cost scales with the *other* path's retained
    # results (whichever suite runs second would otherwise be penalized).
    def isolated(fn):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - t0
        finally:
            gc.enable()

    # Each path runs ``repeat`` times and reports its best wall-clock
    # (scheduler noise and cache pollution only ever add time); the
    # equality check compares the first round's results.

    # Naive: raw per-address LPM, every analysis re-scans the records.
    naive = None
    naive_seconds = float("inf")
    for _ in range(repeat):
        ntp = build_corpus("ntp-pool", events)
        active = build_corpus("ipv6-hitlist", active_events)
        origin = table.origin_asn
        result, seconds = isolated(
            lambda: run_suite(
                ntp, active, origin, registry, ipv4_origin,
                country_getter(origin),
            )
        )
        naive = result if naive is None else naive
        naive_seconds = min(naive_seconds, seconds)

    # Indexed: one columnar pass per corpus (timed — the speedup is
    # end-to-end, including the index build), /64-memoized origins
    # shared by every analysis.  A fresh resolver per round keeps the
    # cache cold so the LPM cost is not amortized across rounds.
    indexed = None
    indexed_seconds = float("inf")
    build_seconds = float("inf")
    origins = None
    for _ in range(repeat):
        ntp = build_corpus("ntp-pool", events)
        active = build_corpus("ipv6-hitlist", active_events)
        origins = CachedOrigins.from_routing_table(table)

        def indexed_run():
            ntp.build_index(origins)
            active.build_index(origins)
            return run_suite(
                ntp, active, origins, registry, ipv4_origin,
                country_getter(origins),
            )

        result, seconds = isolated(indexed_run)
        indexed = result if indexed is None else indexed
        if seconds < indexed_seconds:
            indexed_seconds = seconds
            build_seconds = (
                ntp.index.build_seconds + active.index.build_seconds
            )

    info = origins.cache_info()
    return {
        "events": n_events,
        "repeat": repeat,
        "addresses": len(ntp),
        "distinct_slash64s": len(ntp.slash64_set()),
        "hot_slash64s": info["hot_slash64s"],
        "lpm_calls": info["lpm_calls"],
        "naive_seconds": round(naive_seconds, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "index_build_seconds": round(build_seconds, 4),
        "speedup": round(naive_seconds / indexed_seconds, 2),
        "results_equal": results_match(naive, indexed),
    }


def render(payload):
    return "\n".join(
        [
            "Analysis suite: naive per-figure scans vs columnar index",
            "",
            f"addresses: {payload['addresses']:,} "
            f"({payload['distinct_slash64s']:,} /64s, "
            f"{payload['hot_slash64s']} hot)",
            f"naive:   {payload['naive_seconds']:.2f}s "
            "(per-address LPM, per-analysis re-scan)",
            f"indexed: {payload['indexed_seconds']:.2f}s "
            f"(incl. {payload['index_build_seconds']:.2f}s index build, "
            f"{payload['lpm_calls']:,} LPM calls)",
            f"speedup: {payload['speedup']:.2f}x end-to-end, "
            f"results identical: {payload['results_equal']}",
        ]
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--addresses", type=int, default=140_000, metavar="N",
        help="sighting events to generate (default: 140000; unique "
             "addresses come out slightly lower)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
    )
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="rounds per path; the best wall-clock of N is reported "
             "(default: 2)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when results diverge or speedup < --min-speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.0, metavar="X",
        help="with --check, fail when indexed/naive speedup is below X "
             "(default: 1.0, i.e. indexed must not be slower)",
    )
    args = parser.parse_args(argv)

    payload = run_bench(args.addresses, seed=args.seed, repeat=args.repeat)
    publish_text("analysis_index", render(payload))
    write_bench_json("analysis", payload)

    if args.check:
        if not payload["results_equal"]:
            print("FAIL: indexed results diverge from naive", file=sys.stderr)
            return 1
        if payload["speedup"] < args.min_speedup:
            print(
                f"FAIL: speedup {payload['speedup']:.2f}x "
                f"< required {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: {payload['speedup']:.2f}x, results identical")
    return 0


def test_analysis_index_speedup(benchmark):
    """Harness entry: reduced scale, equality + not-slower assertions."""
    payload = run_bench(30_000)
    publish_text("analysis_index", render(payload))
    write_bench_json("analysis", payload)
    assert payload["results_equal"]
    assert payload["speedup"] > 1.0

    table, registry, blocks = build_routing()
    macs = [(0x0011_22 << 24) + n for n in range(200)]
    events = generate_events(10_000, 11, blocks, macs)

    def indexed_round():
        corpus = build_corpus("ntp-pool", events)
        origins = CachedOrigins.from_routing_table(table)
        corpus.build_index(origins)
        return iid_lifetimes_by_entropy(corpus)

    benchmark.pedantic(indexed_round, rounds=3, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
