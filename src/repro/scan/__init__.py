"""Active-measurement substrate.

Probe primitives (:mod:`repro.scan.probes`), the ZMap6-style stateless
scanner (:mod:`repro.scan.zmap6`), Yarrp-style stateless traceroute
(:mod:`repro.scan.yarrp`), target generation
(:mod:`repro.scan.targetgen`), aliased-prefix detection
(:mod:`repro.scan.alias`), and the two comparison campaigns: CAIDA's
routed /48 traces (:mod:`repro.scan.caida`) and the TUM IPv6 Hitlist
pipeline (:mod:`repro.scan.hitlist_service`).
"""

from .alias import (
    DEFAULT_PROBES,
    DEFAULT_THRESHOLD,
    AliasDetector,
    AliasVerdict,
    filter_aliased,
)
from .caida import CAIDACampaign, split_routed_prefixes
from .hitlist_service import HITLIST_PROTOCOLS, HitlistService, WeeklySnapshot
from .probes import ProbeResult, Protocol, probe_once
from .targetgen import (
    low_byte_candidates,
    pattern_candidates,
    subnet_low_byte_candidates,
)
from .yarrp import TraceResult, Yarrp
from .zmap6 import ScanStats, ZMap6

__all__ = [
    "AliasDetector",
    "AliasVerdict",
    "CAIDACampaign",
    "DEFAULT_PROBES",
    "DEFAULT_THRESHOLD",
    "HITLIST_PROTOCOLS",
    "HitlistService",
    "ProbeResult",
    "Protocol",
    "ScanStats",
    "TraceResult",
    "WeeklySnapshot",
    "Yarrp",
    "ZMap6",
    "filter_aliased",
    "low_byte_candidates",
    "pattern_candidates",
    "probe_once",
    "split_routed_prefixes",
    "subnet_low_byte_candidates",
]
