"""Yarrp analogue: stateless randomized traceroute.

Yarrp (Beverly 2016) traces to many targets by randomly permuting
(target, TTL) probes and reconstructing paths from the ICMPv6
Time-Exceeded replies, avoiding per-flow state.  Against the simulated
world a trace follows the AS-level forwarding path from the vantage AS
to the target's origin AS; each transit AS reveals the ingress router
interface of its hop (when it has infrastructure space), and the final
hop is the target itself if it answers an Echo Request.

Traceroute is what gives the CAIDA-style datasets their router-heavy,
low-IID-entropy composition (paper Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from ..world.rng import split_rng
from ..world.world import ResponderKind, World

__all__ = ["TraceResult", "Yarrp"]


@dataclass(frozen=True)
class TraceResult:
    """One reconstructed trace."""

    target: int
    hops: Tuple[Optional[int], ...]  # per-hop router addresses (None = no reply)
    destination_reached: bool

    @property
    def responsive_hops(self) -> Tuple[int, ...]:
        """Hop addresses that actually replied."""
        return tuple(hop for hop in self.hops if hop is not None)


class Yarrp:
    """Stateless traceroute engine bound to a vantage AS."""

    def __init__(self, world: World, source_asn: int, seed: int = 0) -> None:
        if source_asn not in world.topology:
            raise ValueError(f"vantage AS{source_asn} not in topology")
        self._world = world
        self._source_asn = source_asn
        self._seed = seed

    @property
    def source_asn(self) -> int:
        """The vantage AS traces originate from."""
        return self._source_asn

    def trace(self, target: int, when: float) -> TraceResult:
        """Trace to one target; returns hop addresses and reachability."""
        world = self._world
        target_asn = world.routing.origin_asn(target)
        if target_asn is None or target_asn not in world.topology:
            return TraceResult(target=target, hops=(), destination_reached=False)
        path = world.topology.path(self._source_asn, target_asn)
        if path is None:
            return TraceResult(target=target, hops=(), destination_reached=False)
        hops = tuple(world.router_plan.hop_addresses(path))
        response = world.probe(target, when)
        return TraceResult(
            target=target,
            hops=hops,
            destination_reached=response is not None,
        )

    def trace_many(
        self, targets: Iterable[int], when: float
    ) -> Iterator[TraceResult]:
        """Trace a randomized permutation of the target list.

        The permutation mirrors Yarrp's randomized probing; results are
        yielded in probe order.
        """
        target_list = list(dict.fromkeys(targets))
        rng = split_rng(self._seed, "yarrp", self._source_asn)
        rng.shuffle(target_list)
        for target in target_list:
            yield self.trace(target, when)

    def discovered_addresses(
        self, targets: Iterable[int], when: float
    ) -> Set[int]:
        """All addresses revealed by tracing: hops plus reached targets."""
        discovered: Set[int] = set()
        for result in self.trace_many(targets, when):
            discovered.update(result.responsive_hops)
            if result.destination_reached:
                discovered.add(result.target)
        return discovered
