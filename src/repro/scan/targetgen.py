"""Target generation for active IPv6 scanning.

Brute-force scanning is impossible in IPv6 (§2.1), so active campaigns
probe *candidate* addresses produced from what is already known:

* :func:`low_byte_candidates` — the operator-convention guesses (``::1``,
  ``::2``, …) that find routers and manually numbered servers;
* :func:`subnet_low_byte_candidates` — the same guesses across the first
  subnets of each /48, mirroring how target-generation tools walk the
  subnet dimension;
* :func:`pattern_candidates` — an entropy/ip-style structural learner:
  IIDs observed inside a /48 are recombined with that /48's other
  observed /64s (real devices in sibling subnets often share addressing
  conventions).

These generators are exactly why hitlists built on them skew toward
predictable, low-entropy addresses — the bias the paper quantifies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set

from ..addr.ipv6 import iid_of, prefix_of, slash48_of

__all__ = [
    "low_byte_candidates",
    "subnet_low_byte_candidates",
    "pattern_candidates",
]


def low_byte_candidates(
    prefixes48: Iterable[int], hosts: int = 2
) -> Iterator[int]:
    """Yield ``::1 … ::hosts`` of subnet 0 for each /48 base address."""
    if hosts < 1:
        raise ValueError("hosts must be >= 1")
    for base in prefixes48:
        base = slash48_of(base)
        for host in range(1, hosts + 1):
            yield base | host


def subnet_low_byte_candidates(
    prefixes48: Iterable[int], subnets: int = 4, hosts: int = 2
) -> Iterator[int]:
    """Yield low-byte guesses across the first ``subnets`` /64s per /48."""
    if subnets < 1:
        raise ValueError("subnets must be >= 1")
    if hosts < 1:
        raise ValueError("hosts must be >= 1")
    for base in prefixes48:
        base = slash48_of(base)
        for subnet in range(subnets):
            subnet_base = base | (subnet << 64)
            for host in range(1, hosts + 1):
                yield subnet_base | host


def pattern_candidates(
    seed_addresses: Iterable[int], max_per_slash48: int = 64
) -> Iterator[int]:
    """Recombine observed IIDs with sibling /64s inside each /48.

    For every /48 with at least two observed /64s, each observed IID is
    proposed in each *other* observed /64 — the cheapest useful form of
    structural target generation.  Seeds themselves are not re-emitted.
    Output per /48 is capped to keep candidate volume bounded.
    """
    if max_per_slash48 < 1:
        raise ValueError("max_per_slash48 must be >= 1")
    by_48: Dict[int, Set[int]] = defaultdict(set)
    for address in seed_addresses:
        by_48[slash48_of(address)].add(address)
    for block, addresses in by_48.items():
        prefixes = sorted({prefix_of(address) for address in addresses})
        if len(prefixes) < 2:
            continue
        iids = sorted({iid_of(address) for address in addresses})
        emitted = 0
        seen = addresses
        for iid in iids:
            for prefix in prefixes:
                candidate = prefix | iid
                if candidate in seen:
                    continue
                yield candidate
                emitted += 1
                if emitted >= max_per_slash48:
                    break
            if emitted >= max_per_slash48:
                break
