"""Aliased-prefix detection (APD).

Gasser et al. detect aliased networks by probing pseudo-random addresses
inside a prefix: a real prefix has astronomically small odds of answering
on random IIDs, so a prefix whose random probes all (or nearly all)
answer is aliased — one middlebox speaking for the whole network.
Hitlist hygiene requires filtering such prefixes before counting
"responsive" addresses (paper §2.1, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from ..net.prefixes import Prefix
from ..world.rng import split_rng
from ..world.world import World

__all__ = ["AliasVerdict", "AliasDetector", "DEFAULT_PROBES", "DEFAULT_THRESHOLD"]

#: Random probes sent per candidate prefix (Gasser et al. use 16).
DEFAULT_PROBES = 16

#: Fraction of probes that must answer for an alias verdict.
DEFAULT_THRESHOLD = 1.0


@dataclass(frozen=True)
class AliasVerdict:
    """APD outcome for one prefix."""

    prefix: Prefix
    probes: int
    responses: int
    aliased: bool


class AliasDetector:
    """Aliased-prefix detector over the world oracle."""

    def __init__(
        self,
        world: World,
        seed: int = 0,
        probes_per_prefix: int = DEFAULT_PROBES,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        if probes_per_prefix < 1:
            raise ValueError("probes_per_prefix must be >= 1")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        self._world = world
        self._seed = seed
        self._probes = probes_per_prefix
        self._threshold = threshold

    def check(self, prefix: Prefix, when: float) -> AliasVerdict:
        """Probe random addresses inside ``prefix`` and judge it."""
        rng = split_rng(self._seed, "apd", prefix.network, prefix.length)
        span = prefix.last_address - prefix.network
        responses = 0
        for _ in range(self._probes):
            target = prefix.network + rng.randint(0, span)
            if self._world.is_responsive(target, when):
                responses += 1
        aliased = responses >= self._threshold * self._probes
        return AliasVerdict(
            prefix=prefix, probes=self._probes, responses=responses,
            aliased=aliased,
        )

    def detect(
        self, prefixes: Iterable[Prefix], when: float
    ) -> Dict[Prefix, AliasVerdict]:
        """Run APD over many prefixes."""
        return {prefix: self.check(prefix, when) for prefix in prefixes}

    def aliased_prefixes(
        self, prefixes: Iterable[Prefix], when: float
    ) -> Set[Prefix]:
        """Just the prefixes judged aliased."""
        return {
            prefix
            for prefix, verdict in self.detect(prefixes, when).items()
            if verdict.aliased
        }


def filter_aliased(
    addresses: Iterable[int], aliased: Iterable[Prefix]
) -> List[int]:
    """Drop addresses covered by any aliased prefix.

    Linear in ``len(addresses) * len(aliased)`` for small alias lists;
    campaigns with large lists should use a :class:`PrefixTrie` instead
    (the Hitlist service does).
    """
    aliased_list = list(aliased)
    kept = []
    for address in addresses:
        if not any(prefix.contains(address) for prefix in aliased_list):
            kept.append(address)
    return kept
