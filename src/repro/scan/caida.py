"""The CAIDA routed /48 campaign (paper §3, "comparative datasets").

CAIDA's Archipelago measurement splits every routed prefix of length /32
or longer into /48s and Yarrp-traces toward the ``::1`` address of each;
prefixes shorter than /32 get a single ``::1`` probe.  The resulting
dataset is almost entirely router interfaces and manually numbered hosts
— one discovered address per /48 on average and rock-bottom IID entropy
(paper Table 1 and Fig. 1).

:class:`CAIDACampaign` reproduces that methodology against the simulated
world from a set of vantage ASes over a date range, recording first/last
seen times per discovered address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..net.prefixes import Prefix
from ..world.clock import DAY
from ..world.world import World
from .yarrp import Yarrp

__all__ = ["CAIDACampaign", "split_routed_prefixes"]

#: Prefixes this long or longer are split into /48s.
SPLIT_BOUNDARY = 32


def split_routed_prefixes(
    world: World, max_split: int = 1 << 12
) -> Iterator[Prefix]:
    """Enumerate the /48 probe units of the routed table.

    Follows CAIDA's rule: routed prefixes with length >= /32 are split
    into constituent /48s; shorter prefixes contribute themselves as a
    single probe unit.  ``max_split`` caps the /48s taken per prefix (a
    /16 would explode into 2**32 units; real campaigns bound their
    target lists too).
    """
    for routed in world.routing.routed_prefixes():
        prefix = routed.prefix
        if prefix.length >= SPLIT_BOUNDARY:
            if prefix.length >= 48:
                yield prefix
                continue
            count = 1 << (48 - prefix.length)
            if count > max_split:
                count = max_split
            for index, sub in enumerate(prefix.subprefixes(48)):
                if index >= count:
                    break
                yield sub
        else:
            yield prefix


@dataclass
class CAIDACampaign:
    """Yarrp traces to the ::1 of every routed /48.

    Parameters
    ----------
    world:
        The simulated Internet.
    vantage_asns:
        ASes hosting Archipelago-like monitors; each probe unit is traced
        from one vantage (round-robin), as Ark distributes work.
    seed:
        Trace-order randomization seed.
    """

    world: World
    vantage_asns: Sequence[int]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.vantage_asns:
            raise ValueError("need at least one vantage AS")

    def probe_targets(self) -> List[int]:
        """The ::1 target of every probe unit."""
        return [
            prefix.network | 1 for prefix in split_routed_prefixes(self.world)
        ]

    def run(
        self, start: float, end: float, cycle_days: float = 14.0
    ) -> Dict[int, Tuple[float, float]]:
        """Run trace cycles over ``[start, end)``.

        Ark continuously re-traces its target list; we model one full
        pass every ``cycle_days``.  Returns each discovered address
        mapped to its (first_seen, last_seen) times.
        """
        if end <= start:
            raise ValueError("empty campaign window")
        if cycle_days <= 0:
            raise ValueError("cycle_days must be positive")
        targets = self.probe_targets()
        discovered: Dict[int, Tuple[float, float]] = {}
        cycle_index = 0
        when = start
        while when < end:
            vantage = self.vantage_asns[cycle_index % len(self.vantage_asns)]
            yarrp = Yarrp(self.world, vantage, seed=self.seed + cycle_index)
            for address in yarrp.discovered_addresses(targets, when):
                if address in discovered:
                    first, _ = discovered[address]
                    discovered[address] = (first, when)
                else:
                    discovered[address] = (when, when)
            cycle_index += 1
            when = start + cycle_index * cycle_days * DAY
        return discovered
