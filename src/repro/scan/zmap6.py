"""ZMap6 analogue: stateless, high-rate, single-packet probing.

Mirrors the behaviour that matters for the paper's campaigns: a target
list is probed once per protocol in randomized order with no per-target
state (responses are matched by address), duplicate targets are sent
only once, and per-scan statistics mirror ZMap's hit-rate summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..obs import MetricsRegistry, NULL_REGISTRY
from ..world.rng import derive_seed, split_rng
from ..world.world import World
from .icmpv6 import EchoMessage, parse_message
from .probes import ProbeResult, Protocol, probe_once

__all__ = ["ScanStats", "ZMap6"]


@dataclass
class ScanStats:
    """Counters for one scan invocation."""

    sent: int = 0
    responsive: int = 0
    duplicates_suppressed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of sent probes that elicited a response."""
        return self.responsive / self.sent if self.sent else 0.0


class ZMap6:
    """A stateless scanner bound to a world and a scan seed.

    The seed drives the randomized probe order (ZMap's address
    permutation); results are independent of the order, but the shuffle
    keeps the simulation faithful to how such scans interleave targets.
    """

    #: Default scanner source address (documentation space).
    DEFAULT_SOURCE = (0x20010DB8 << 96) | 0x5CA9

    def __init__(
        self,
        world: World,
        seed: int = 0,
        wire_fidelity: bool = False,
        source_address: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._world = world
        self._seed = seed
        self._scan_counter = 0
        self._wire_fidelity = wire_fidelity
        self._source_address = (
            self.DEFAULT_SOURCE if source_address is None else source_address
        )
        registry = NULL_REGISTRY if metrics is None else metrics
        self._m_probes = registry.counter(
            "repro_zmap6_probes_total", "probe packets sent"
        )
        self._m_hits = registry.counter(
            "repro_zmap6_responsive_total", "probes that elicited a response"
        )
        self._m_duplicates = registry.counter(
            "repro_zmap6_duplicates_suppressed_total",
            "duplicate targets dropped before sending",
        )

    def scan(
        self,
        targets: Iterable[int],
        when: float,
        protocol: Protocol = Protocol.ICMPV6,
    ) -> List[ProbeResult]:
        """Probe each distinct target once; returns per-target results."""
        distinct: List[int] = []
        seen = set()
        total = 0
        for target in targets:
            total += 1
            if target not in seen:
                seen.add(target)
                distinct.append(target)
        rng = split_rng(self._seed, "zmap6", self._scan_counter)
        self._scan_counter += 1
        rng.shuffle(distinct)

        stats = ScanStats(duplicates_suppressed=total - len(distinct))
        results = []
        for target in distinct:
            if self._wire_fidelity and protocol is Protocol.ICMPV6:
                result = self._probe_on_wire(target, when)
            else:
                result = probe_once(self._world, target, when, protocol)
            stats.sent += 1
            if result.responsive:
                stats.responsive += 1
            results.append(result)
        self._m_probes.inc(stats.sent)
        self._m_hits.inc(stats.responsive)
        self._m_duplicates.inc(stats.duplicates_suppressed)
        self.last_stats = stats
        return results

    def _probe_on_wire(self, target: int, when: float) -> ProbeResult:
        """ICMPv6 probe through real Echo packets.

        ZMap validates replies statelessly by deriving the identifier
        and sequence from the target address: a reply that echoes the
        wrong values is spoofed or stale and is discarded.
        """
        state = derive_seed(self._seed, "zmap-state", target)
        request = EchoMessage(
            is_request=True,
            identifier=state & 0xFFFF,
            sequence=(state >> 16) & 0xFFFF,
        )
        request_wire = request.pack(self._source_address, target)
        result = probe_once(self._world, target, when, Protocol.ICMPV6)
        if not result.responsive:
            return result
        # The responder echoes our message back; parse + validate it as
        # the real scanner would before believing the hit.
        sent = parse_message(request_wire, self._source_address, target)
        reply_wire = sent.reply().pack(target, self._source_address)
        reply = parse_message(reply_wire, target, self._source_address)
        if (
            reply.identifier != request.identifier
            or reply.sequence != request.sequence
        ):
            return ProbeResult(
                target=target, when=when, protocol=Protocol.ICMPV6,
                responsive=False,
            )
        return result

    def responsive_addresses(
        self,
        targets: Iterable[int],
        when: float,
        protocols: Iterable[Protocol] = (Protocol.ICMPV6,),
    ) -> Dict[int, List[Protocol]]:
        """Scan under several protocols; map each responsive address to
        the protocols it answered."""
        target_list = list(targets)
        responsive: Dict[int, List[Protocol]] = {}
        for protocol in protocols:
            for result in self.scan(target_list, when, protocol):
                if result.responsive:
                    responsive.setdefault(result.target, []).append(protocol)
        return responsive
