"""Target-generation algorithms (TGAs).

The paper's introduction makes a structural point about TGAs
(entropy/ip, 6Gen, 6Tree, 6GAN, …): they are *trained on some hitlist*
and therefore inherit its biases — a router-heavy training set yields
router-flavoured candidates and keeps clients invisible (§1).  This
module implements two classic TGA families so that claim can be tested
directly (``benchmarks/bench_tga_bias.py``):

* :class:`NibbleModel` — an entropy/ip-flavoured generator.  Training
  IIDs are first *segmented* into pattern groups (entropy/ip's core
  insight: IPv6 addresses are mixtures of distinct schemes, and a single
  global distribution would synthesize chimeras that exist nowhere).
  Each group carries its own per-position nibble distributions and its
  own prefix pool; candidates sample a group, then an IID from the
  group's distributions, then one of the group's prefixes.
* :class:`ClusterExpansion` — a 6Gen/6Tree-flavoured generator: training
  addresses sharing a (prefix, pattern) cell form a cluster whose
  per-position alphabets are enumerated tightest-first.

Both follow the same protocol: ``fit(seeds)`` then
``generate(budget, rng)``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..addr.ipv6 import iid_of, nibbles_of_iid, prefix_of

__all__ = ["TargetGenerator", "NibbleModel", "ClusterExpansion", "pattern_signature"]


def pattern_signature(iid: int) -> Tuple[int, ...]:
    """Coarse per-position class of an IID: 0 = zero nibble, 1 = set.

    Segmenting by this signature separates the major addressing schemes
    (low-byte, EUI-64, IPv4-embedded, full-random) well enough for
    per-group distributions to stay scheme-pure.
    """
    return tuple(0 if nibble == 0 else 1 for nibble in nibbles_of_iid(iid))


class TargetGenerator:
    """Common TGA interface."""

    def fit(self, seeds: Iterable[int]) -> "TargetGenerator":
        """Learn from a training hitlist; returns self for chaining."""
        raise NotImplementedError

    def generate(self, budget: int, rng) -> List[int]:
        """Emit up to ``budget`` candidate addresses (no training seeds)."""
        raise NotImplementedError


class _PatternGroup:
    """One segmented scheme: distributions + the prefixes it was seen in."""

    __slots__ = ("count", "position_counts", "prefixes")

    def __init__(self) -> None:
        self.count = 0
        self.position_counts: List[Counter] = [Counter() for _ in range(16)]
        self.prefixes: Set[int] = set()

    def observe(self, prefix: int, iid: int) -> None:
        self.count += 1
        self.prefixes.add(prefix)
        for position, nibble in enumerate(nibbles_of_iid(iid)):
            self.position_counts[position][nibble] += 1

    def sample_iid(self, rng) -> int:
        iid = 0
        for position in range(16):
            counts = self.position_counts[position]
            total = sum(counts.values())
            mark = rng.randrange(total)
            accumulated = 0
            for value, count in sorted(counts.items()):
                accumulated += count
                if mark < accumulated:
                    iid = (iid << 4) | value
                    break
        return iid


class NibbleModel(TargetGenerator):
    """Entropy/ip-flavoured segmented nibble-distribution model."""

    def __init__(self) -> None:
        self._groups: Dict[Tuple[int, ...], _PatternGroup] = {}
        self._group_order: List[Tuple[int, ...]] = []
        self._seeds: Set[int] = set()
        self._fitted = False

    def fit(self, seeds: Iterable[int]) -> "NibbleModel":
        for address in seeds:
            self._seeds.add(address)
            iid = iid_of(address)
            signature = pattern_signature(iid)
            group = self._groups.get(signature)
            if group is None:
                group = _PatternGroup()
                self._groups[signature] = group
            group.observe(prefix_of(address), iid)
        if not self._seeds:
            raise ValueError("cannot fit on an empty training set")
        # Deterministic weighted-sampling order: big groups first.
        self._group_order = sorted(
            self._groups, key=lambda sig: (-self._groups[sig].count, sig)
        )
        self._fitted = True
        return self

    def _sample_group(self, rng) -> _PatternGroup:
        total = len(self._seeds)
        mark = rng.randrange(total)
        accumulated = 0
        for signature in self._group_order:
            group = self._groups[signature]
            accumulated += group.count
            if mark < accumulated:
                return group
        return self._groups[self._group_order[-1]]

    def generate(self, budget: int, rng) -> List[int]:
        if not self._fitted:
            raise ValueError("generate() before fit()")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        candidates: List[int] = []
        emitted: Set[int] = set()
        attempts = 0
        # Cap attempts so degenerate models (single seed) terminate.
        while len(candidates) < budget and attempts < budget * 8:
            attempts += 1
            group = self._sample_group(rng)
            prefixes = sorted(group.prefixes)
            prefix = prefixes[rng.randrange(len(prefixes))]
            candidate = prefix | group.sample_iid(rng)
            if candidate in self._seeds or candidate in emitted:
                continue
            emitted.add(candidate)
            candidates.append(candidate)
        return candidates


class ClusterExpansion(TargetGenerator):
    """6Gen-flavoured cluster enumeration over (prefix, pattern) cells.

    Clusters are ranked by *density* — small total expansion relative to
    cluster size — and each is expanded by enumerating its per-position
    alphabet cross-product, exactly the "grow tight regions first"
    heuristic 6Gen uses.
    """

    #: Upper bound on a single cluster's expansion size.
    MAX_CLUSTER_EXPANSION = 4096

    def __init__(self) -> None:
        self._clusters: List[Tuple[int, List[Set[int]], int]] = []
        self._seeds: Set[int] = set()
        self._fitted = False

    def fit(self, seeds: Iterable[int]) -> "ClusterExpansion":
        cells: Dict[Tuple[int, Tuple[int, ...]], List[int]] = defaultdict(list)
        for address in seeds:
            self._seeds.add(address)
            iid = iid_of(address)
            cells[(prefix_of(address), pattern_signature(iid))].append(iid)
        if not self._seeds:
            raise ValueError("cannot fit on an empty training set")
        self._clusters = []
        for (prefix, _signature), iids in cells.items():
            alphabets: List[Set[int]] = [set() for _ in range(16)]
            for iid in iids:
                for position, nibble in enumerate(nibbles_of_iid(iid)):
                    alphabets[position].add(nibble)
            grown = [self._grow_range(alphabet) for alphabet in alphabets]
            expansion = 1
            for alphabet in grown:
                expansion *= len(alphabet)
                if expansion > self.MAX_CLUSTER_EXPANSION:
                    break
            self._clusters.append((prefix, grown, expansion))
        # Tightest (densest) clusters first; prefix breaks ties.
        self._clusters.sort(key=lambda item: (item[2], item[0]))
        self._fitted = True
        return self

    @staticmethod
    def _grow_range(alphabet: Set[int]) -> Set[int]:
        """Grow a dense position alphabet to its covering integer range.

        6Gen grows *regions*, not value sets: seeds ::1, ::3, ::7 imply
        the range ::1–::7, so the unobserved ::2, ::4–::6 are proposed.
        Growth only happens when the observed values are dense enough
        that interpolation is plausible (span <= 3x the observed count).
        """
        if len(alphabet) < 2:
            return alphabet
        lo, hi = min(alphabet), max(alphabet)
        if hi - lo + 1 <= 3 * len(alphabet):
            return set(range(lo, hi + 1))
        return alphabet

    def _expand(self, alphabets: Sequence[Set[int]], limit: int) -> List[int]:
        iids = [0]
        for alphabet in alphabets:
            values = sorted(alphabet)
            iids = [
                (iid << 4) | value
                for iid in iids
                for value in values
            ]
            if len(iids) > limit:
                iids = iids[:limit]
        return iids

    def generate(self, budget: int, rng) -> List[int]:
        if not self._fitted:
            raise ValueError("generate() before fit()")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        candidates: List[int] = []
        for prefix, alphabets, expansion in self._clusters:
            if len(candidates) >= budget:
                break
            if expansion > self.MAX_CLUSTER_EXPANSION:
                continue
            for iid in self._expand(alphabets, self.MAX_CLUSTER_EXPANSION):
                candidate = prefix | iid
                if candidate in self._seeds:
                    continue
                candidates.append(candidate)
                if len(candidates) >= budget:
                    break
        return candidates
