"""Probe primitives shared by the scanners.

Scanners ask the world's probe oracle whether a target answers.  The
oracle models ICMPv6 reachability; transport-layer probes (the IPv6
Hitlist also scans TCP 80/443, UDP 53/161/443) additionally require the
responder to actually run a service on that port — routers and aliased
middleboxes answer ICMPv6 but only servers and CPE devices expose TCP
services, which is how protocol choice shapes what a campaign sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..world.devices import DeviceType
from ..world.world import ProbeResponse, ResponderKind, World

__all__ = ["Protocol", "ProbeResult", "probe_once"]


class Protocol(Enum):
    """Probe protocols used by the measurement campaigns."""

    ICMPV6 = "icmpv6"
    TCP80 = "tcp/80"
    TCP443 = "tcp/443"
    UDP53 = "udp/53"
    UDP161 = "udp/161"
    QUIC443 = "udp/443"


#: Device types that answer transport-layer (non-ICMPv6) probes.
_SERVICE_DEVICE_TYPES = (DeviceType.SERVER, DeviceType.CPE_ROUTER)


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a single probe."""

    target: int
    when: float
    protocol: Protocol
    responsive: bool
    responder_kind: Optional[ResponderKind] = None
    responder_asn: Optional[int] = None


def probe_once(
    world: World, target: int, when: float, protocol: Protocol
) -> ProbeResult:
    """Send one probe through the world oracle and wrap the outcome."""
    response: Optional[ProbeResponse] = world.probe(target, when)
    if response is not None and protocol is not Protocol.ICMPV6:
        if response.kind is ResponderKind.DEVICE:
            device = response.device
            if device is None or device.device_type not in _SERVICE_DEVICE_TYPES:
                response = None
        elif response.kind is ResponderKind.ROUTER:
            # Routers drop transport probes to their interfaces.
            response = None
        # Aliased middleboxes answer any protocol (they terminate flows).
    if response is None:
        return ProbeResult(
            target=target, when=when, protocol=protocol, responsive=False
        )
    return ProbeResult(
        target=target,
        when=when,
        protocol=protocol,
        responsive=True,
        responder_kind=response.kind,
        responder_asn=response.asn,
    )
