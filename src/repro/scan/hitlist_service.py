"""The IPv6 Hitlist service (Gasser et al.), re-implemented.

The TUM IPv6 Hitlist publishes, roughly weekly: a list of responsive
addresses, and lists of aliased / non-aliased prefixes.  Its pipeline
(paper §2.2, [24], [75]):

1. **Seed harvesting** — domain lists, certificate transparency, AXFR
   dumps etc.; here, a sample of the hosting world's "published" server
   addresses.
2. **Topology input** — traceroutes toward seeds reveal router
   interfaces.
3. **Target generation** — low-byte guesses plus structural recombination
   of observed IIDs (:mod:`repro.scan.targetgen`).
4. **Probing** — ZMap6 over ICMPv6, TCP 80/443, UDP 53.
5. **Alias filtering** — APD over the /64s (and /48s) of responders;
   aliased space is excluded from the responsive list.
6. **Weekly snapshots** — accumulated into the published history.

This produces a dataset with exactly the composition the paper compares
against: servers, routers, CPE — very few ephemeral clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.prefixes import Prefix, PrefixTrie
from ..obs import MetricsRegistry
from ..world.clock import WEEK
from ..world.devices import DeviceType
from ..world.rng import keyed_uniform, split_rng
from ..world.world import World
from .alias import AliasDetector
from .probes import Protocol
from .targetgen import (
    low_byte_candidates,
    pattern_candidates,
    subnet_low_byte_candidates,
)
from .yarrp import Yarrp
from .zmap6 import ZMap6

__all__ = ["WeeklySnapshot", "HitlistService"]

#: Protocols the Hitlist probes with.
HITLIST_PROTOCOLS = (
    Protocol.ICMPV6,
    Protocol.TCP80,
    Protocol.TCP443,
    Protocol.UDP53,
)


@dataclass
class WeeklySnapshot:
    """One published Hitlist release."""

    week: int
    when: float
    responsive: Set[int]
    aliased_prefixes: Set[Prefix]
    candidates_probed: int


class HitlistService:
    """A weekly-cadence Hitlist pipeline bound to a world.

    Parameters
    ----------
    world:
        The simulated Internet.
    vantage_asn:
        The AS the service scans from (TUM scans from one site).
    seed_fraction:
        Fraction of the world's server devices whose addresses are
        discoverable through DNS-like sources each week.
    cpe_seed_fraction:
        Fraction of CPE devices stably exposed through reverse-DNS
        enumeration (Fiebig et al.): many ISPs auto-generate rDNS names
        for customer WAN addresses.  This is the channel through which
        the real Hitlist acquires its medium/high-entropy CPE population
        (paper Fig. 1's ~0.7 median entropy), so it must outweigh the
        low-byte server population.
    seed:
        Randomization seed for sampling, scanning and APD.
    """

    def __init__(
        self,
        world: World,
        vantage_asn: int,
        seed_fraction: float = 0.5,
        cpe_seed_fraction: float = 0.55,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < seed_fraction <= 1.0:
            raise ValueError("seed_fraction must lie in (0, 1]")
        if not 0.0 <= cpe_seed_fraction <= 1.0:
            raise ValueError("cpe_seed_fraction must lie in [0, 1]")
        self._world = world
        self._vantage_asn = vantage_asn
        self._seed_fraction = seed_fraction
        self._cpe_seed_fraction = cpe_seed_fraction
        self._seed = seed
        self._known_responsive: Set[int] = set()
        self._aliased: Set[Prefix] = set()
        #: Incrementally-maintained trie over ``_aliased`` — the single
        #: source of truth for "does the alias list cover this address?"
        #: (both the weekly filter and :meth:`is_aliased` read it; the
        #: old code rebuilt a trie every week and linear-scanned here).
        self._alias_trie: PrefixTrie[bool] = PrefixTrie()
        self.snapshots: List[WeeklySnapshot] = []
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._m_seeds = self.metrics.counter(
            "repro_hitlist_seeds_total", "addresses harvested from seed sources"
        )
        self._m_routers = self.metrics.counter(
            "repro_hitlist_router_interfaces_total",
            "router interfaces revealed by topology traces",
        )
        self._m_candidates = self.metrics.counter(
            "repro_hitlist_candidates_total", "candidate addresses probed"
        )
        self._m_responsive = self.metrics.counter(
            "repro_hitlist_responsive_total",
            "responsive addresses before alias filtering",
        )
        self._m_aliased = self.metrics.counter(
            "repro_hitlist_aliased_prefixes_total",
            "prefixes newly judged aliased by APD",
        )
        self._m_published = self.metrics.gauge(
            "repro_hitlist_known_responsive",
            "size of the accumulated responsive list",
        )

    # -- pipeline stages ------------------------------------------------------

    def _harvest_seeds(self, when: float, week: int) -> Set[int]:
        """DNS-like seed sources: published addresses.

        Whether a device is *published* (a server with a DNS name, a CPE
        whose ISP auto-generates rDNS) is a stable property of the
        device, not a per-week coin flip — so a permanently unpublished
        population exists that only target generation or passive
        collection can reach.
        """
        seeds: Set[int] = set()
        for device in self._world.iter_devices():
            if device.device_type is DeviceType.SERVER:
                fraction = self._seed_fraction
            elif device.device_type is DeviceType.CPE_ROUTER:
                fraction = self._cpe_seed_fraction
            else:
                continue
            published = (
                keyed_uniform(self._seed, "published", device.device_id)
                < fraction
            )
            if published:
                seeds.add(self._world.device_address(device, when))
        return seeds

    def _trace_topology(self, seeds: Set[int], when: float, week: int) -> Set[int]:
        """Router interfaces revealed tracing toward the seeds."""
        yarrp = Yarrp(self._world, self._vantage_asn, seed=self._seed + week)
        return yarrp.discovered_addresses(seeds, when)

    def _generate_targets(self, known: Set[int]) -> Set[int]:
        """Candidate addresses from the known address base."""
        slash48s = {address & ~((1 << 80) - 1) for address in known}
        candidates: Set[int] = set(known)
        candidates.update(low_byte_candidates(slash48s, hosts=2))
        candidates.update(
            subnet_low_byte_candidates(slash48s, subnets=4, hosts=2)
        )
        candidates.update(pattern_candidates(known))
        return candidates

    def _probe(self, candidates: Set[int], when: float, week: int) -> Set[int]:
        """Multi-protocol ZMap6 pass; a target counts once it answers any."""
        scanner = ZMap6(
            self._world, seed=self._seed + 1000 + week, metrics=self.metrics
        )
        responsive = scanner.responsive_addresses(
            candidates, when, protocols=HITLIST_PROTOCOLS
        )
        return set(responsive)

    def _filter_aliases(
        self, responsive: Set[int], when: float, week: int
    ) -> Tuple[Set[int], Set[Prefix]]:
        """APD over responder /64s and /48s; drop aliased space.

        Detection at multiple prefix lengths mirrors Gasser et al.: a
        provider that fronts a whole block with a responder is caught at
        the /48 level even when only a few of its /64s ever held a
        responsive candidate.
        """
        detector = AliasDetector(self._world, seed=self._seed + 2000 + week)
        candidates = {
            Prefix(address & ~((1 << 64) - 1), 64)
            for address in responsive
        }
        candidates.update(
            Prefix(address & ~((1 << 80) - 1), 48)
            for address in responsive
        )
        newly_aliased = detector.aliased_prefixes(candidates, when)
        for prefix in newly_aliased:
            if prefix not in self._aliased:
                self._alias_trie.insert(prefix, True)
        self._aliased.update(newly_aliased)
        kept = {
            address
            for address in responsive
            if self._alias_trie.lookup(address) is None
        }
        return kept, newly_aliased

    # -- public API --------------------------------------------------------------

    def run_week(self, week: int, when: float) -> WeeklySnapshot:
        """Execute one weekly pipeline run and publish its snapshot."""
        with self.metrics.span("hitlist-week"):
            seeds = self._harvest_seeds(when, week)
            routers = self._trace_topology(seeds, when, week)
            known = seeds | routers | self._known_responsive
            candidates = self._generate_targets(known)
            responsive = self._probe(candidates, when, week)
            kept, newly_aliased = self._filter_aliases(responsive, when, week)
            self._known_responsive.update(kept)
        self._m_seeds.inc(len(seeds))
        self._m_routers.inc(len(routers))
        self._m_candidates.inc(len(candidates))
        self._m_responsive.inc(len(responsive))
        self._m_aliased.inc(len(newly_aliased))
        self._m_published.set(len(self._known_responsive))
        snapshot = WeeklySnapshot(
            week=week,
            when=when,
            responsive=kept,
            aliased_prefixes=newly_aliased,
            candidates_probed=len(candidates),
        )
        self.snapshots.append(snapshot)
        return snapshot

    def run(
        self, start: float, weeks: int
    ) -> Dict[int, Tuple[float, float]]:
        """Run ``weeks`` weekly cycles starting at ``start``.

        Returns the accumulated responsive history: address →
        (first_seen, last_seen) over the campaign — the "all snapshots
        within the study window" view the paper compares against.
        """
        if weeks < 1:
            raise ValueError("weeks must be >= 1")
        history: Dict[int, Tuple[float, float]] = {}
        for week in range(weeks):
            when = start + week * WEEK
            snapshot = self.run_week(week, when)
            for address in snapshot.responsive:
                if address in history:
                    first, _ = history[address]
                    history[address] = (first, when)
                else:
                    history[address] = (when, when)
        return history

    @property
    def aliased_prefixes(self) -> Set[Prefix]:
        """All prefixes ever judged aliased (the published alias list)."""
        return set(self._aliased)

    def is_aliased(self, address: int) -> bool:
        """True when the service's alias list covers ``address``.

        Answered from the incrementally-maintained trie in
        O(prefix length) — pinned identical to a naive linear scan of
        :attr:`aliased_prefixes` by tests/scan/test_alias_trie.py.
        """
        return self._alias_trie.lookup(address) is not None
