"""ICMPv6 wire format (RFC 4443) for the probing tools.

ZMap6 and Yarrp speak ICMPv6: Echo Request probes, Echo Reply answers,
and hop discovery via Time Exceeded.  This module implements the
messages those tools emit and parse, including the RFC 4443 §2.3
checksum over the IPv6 pseudo-header — the part real implementations
get wrong most often, and the mechanism that lets a stateless scanner
validate that a reply matches a probe it actually sent (ZMap encodes
state in the identifier/sequence fields; Yarrp in the payload).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "ECHO_REQUEST",
    "ECHO_REPLY",
    "TIME_EXCEEDED",
    "DEST_UNREACHABLE",
    "icmpv6_checksum",
    "EchoMessage",
    "TimeExceededMessage",
    "parse_message",
]

ECHO_REQUEST = 128
ECHO_REPLY = 129
TIME_EXCEEDED = 3
DEST_UNREACHABLE = 1

_ECHO_HEADER = struct.Struct(">BBHHH")
_ERROR_HEADER = struct.Struct(">BBHI")


def icmpv6_checksum(
    source: int, destination: int, message: bytes
) -> int:
    """RFC 4443 §2.3 checksum: ones-complement sum over the IPv6
    pseudo-header (source, destination, upper-layer length, next header
    59=58) plus the ICMPv6 message with its checksum field zeroed."""
    if not 0 <= source < (1 << 128) or not 0 <= destination < (1 << 128):
        raise ValueError("addresses out of range")
    pseudo = (
        source.to_bytes(16, "big")
        + destination.to_bytes(16, "big")
        + len(message).to_bytes(4, "big")
        + b"\x00\x00\x00\x3a"  # zero padding + next header 58
    )
    data = pseudo + message
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
        total = (total & 0xFFFF) + (total >> 16)
    checksum = ~total & 0xFFFF
    # An all-zero checksum is transmitted as 0xFFFF (ones-complement).
    return checksum if checksum != 0 else 0xFFFF


@dataclass(frozen=True)
class EchoMessage:
    """Echo Request/Reply (types 128/129)."""

    is_request: bool
    identifier: int
    sequence: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.identifier <= 0xFFFF:
            raise ValueError(f"identifier out of range: {self.identifier}")
        if not 0 <= self.sequence <= 0xFFFF:
            raise ValueError(f"sequence out of range: {self.sequence}")

    def pack(self, source: int, destination: int) -> bytes:
        """Serialize with a correct checksum for the given endpoints."""
        message_type = ECHO_REQUEST if self.is_request else ECHO_REPLY
        unchecked = (
            _ECHO_HEADER.pack(
                message_type, 0, 0, self.identifier, self.sequence
            )
            + self.payload
        )
        checksum = icmpv6_checksum(source, destination, unchecked)
        return (
            _ECHO_HEADER.pack(
                message_type, 0, checksum, self.identifier, self.sequence
            )
            + self.payload
        )

    def reply(self) -> "EchoMessage":
        """The Echo Reply a target generates: same id/seq/payload."""
        if not self.is_request:
            raise ValueError("only requests are replied to")
        return EchoMessage(
            is_request=False,
            identifier=self.identifier,
            sequence=self.sequence,
            payload=self.payload,
        )


@dataclass(frozen=True)
class TimeExceededMessage:
    """Time Exceeded (type 3): carries the expired packet's head."""

    invoking_packet: bytes

    def pack(self, source: int, destination: int) -> bytes:
        """Serialize; the invoking packet is truncated per RFC 4443 §3.3
        (as much as fits without exceeding the minimum MTU)."""
        body = self.invoking_packet[:1232 - _ERROR_HEADER.size]
        unchecked = _ERROR_HEADER.pack(TIME_EXCEEDED, 0, 0, 0) + body
        checksum = icmpv6_checksum(source, destination, unchecked)
        return _ERROR_HEADER.pack(TIME_EXCEEDED, 0, checksum, 0) + body


def parse_message(
    data: bytes, source: int, destination: int, verify: bool = True
):
    """Parse an ICMPv6 message; returns an Echo/TimeExceeded object.

    With ``verify`` (the default) the checksum is validated against the
    given endpoints — a stateless scanner must discard corrupt or
    spoofed replies.  Raises ``ValueError`` on anything malformed.
    """
    if len(data) < 4:
        raise ValueError("ICMPv6 message shorter than its header")
    message_type = data[0]
    if verify:
        zeroed = data[:2] + b"\x00\x00" + data[4:]
        expected = icmpv6_checksum(source, destination, zeroed)
        got = (data[2] << 8) | data[3]
        if got != expected:
            raise ValueError(
                f"checksum mismatch: got {got:#06x}, expected {expected:#06x}"
            )
    if message_type in (ECHO_REQUEST, ECHO_REPLY):
        if len(data) < _ECHO_HEADER.size:
            raise ValueError("echo message truncated")
        _type, code, _checksum, identifier, sequence = _ECHO_HEADER.unpack_from(
            data
        )
        if code != 0:
            raise ValueError(f"nonzero echo code: {code}")
        return EchoMessage(
            is_request=message_type == ECHO_REQUEST,
            identifier=identifier,
            sequence=sequence,
            payload=data[_ECHO_HEADER.size:],
        )
    if message_type == TIME_EXCEEDED:
        if len(data) < _ERROR_HEADER.size:
            raise ValueError("time-exceeded message truncated")
        return TimeExceededMessage(invoking_packet=data[_ERROR_HEADER.size:])
    raise ValueError(f"unsupported ICMPv6 type: {message_type}")
