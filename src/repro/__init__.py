"""repro — reproduction of "IPv6 Hitlists at Scale: Be Careful What You
Wish For" (Rye & Levin, SIGCOMM 2023).

The package is layered bottom-up:

* :mod:`repro.addr` — IPv6/MAC address analytics (entropy, EUI-64,
  pattern classification);
* :mod:`repro.net` — prefixes, routing, AS records, geolocation,
  AS-level topology;
* :mod:`repro.world` — a deterministic generative model of the IPv6
  Internet (the stand-in for the production network, see DESIGN.md);
* :mod:`repro.ntp` — RFC 5905 packets, stratum-2 servers, the NTP Pool;
* :mod:`repro.scan` — ZMap6/Yarrp analogues, target generation, alias
  detection, the CAIDA and IPv6-Hitlist comparison campaigns;
* :mod:`repro.geo` — the wardriving database and the IPvSeeYou
  geolocation attack;
* :mod:`repro.core` — the paper's contribution: the passive NTP
  campaign, corpora, and every Table/Figure analysis;
* :mod:`repro.analysis` — ECDFs, tables and terminal figures;
* :mod:`repro.api` — the stable facade most consumers should use.

Quickstart::

    from repro.api import Study

    results = Study(seed=7).run()
    print(len(results.ntp), "passively observed addresses")
"""

from .api import Study, open_corpus, release, sweep

__version__ = "1.0.0"

__all__ = ["Study", "open_corpus", "release", "sweep", "__version__"]
