"""Command-line interface.

Six subcommands cover the operational loop a downstream user needs:

* ``repro study``    — build a world, run the full three-campaign study,
  save the corpora, print the Table 1 comparison;
* ``repro analyze``  — headline analyses (lifetimes, EUI-64 prevalence,
  tracking classes) over a saved corpus;
* ``repro release``  — produce the ethics-aware /48-truncated release of
  a saved corpus, with the safety audit;
* ``repro report``   — run a study and emit the consolidated findings
  report;
* ``repro matrix``   — run a declarative scenario sweep (world x faults
  x weeks x seeds) with per-cell isolation, deadlines and crash-safe
  ``--resume``;
* ``repro serve``    — serve a segment store's hitlist over TCP from
  the mmap-backed ``SERVING.rsi`` index, coalescing concurrent lookups
  into vectorized kernel calls.

All randomness flows from ``--seed``; two invocations with identical
arguments produce identical bytes.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.tables import format_table, format_timings
from .api import open_corpus
from .core import (
    ExecutionOptions,
    StudyConfig,
    address_lifetime_summary,
    analyze_tracking,
    build_release,
    compare_datasets,
    run_study,
    save_corpus,
    verify_release_safety,
)
from .core.segments import DEFAULT_SEGMENT_BYTES, MANIFEST_NAME
from .core.storage import checkpoint_candidates
from .core.tracking import TrackingClass
from .faults import FaultPlan
from .obs import MetricsRegistry
from .world import CAMPAIGN_EPOCH, build_world, preset_config, preset_names

__all__ = ["main", "build_parser"]

logger = logging.getLogger("repro.cli")


def _world_config(args):
    return preset_config(args.scale, seed=args.seed)


def _fault_plan(args) -> Optional[FaultPlan]:
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except ValueError as error:
        logger.error("bad --faults spec: %s", error)
        raise SystemExit(2)


def _study_config(args) -> StudyConfig:
    if getattr(args, "workers", 1) < 1:
        logger.error("--workers must be >= 1: %d", args.workers)
        raise SystemExit(2)
    if getattr(args, "max_shard_retries", 2) < 0:
        logger.error(
            "--max-shard-retries must be >= 0: %d", args.max_shard_retries
        )
        raise SystemExit(2)
    shard_timeout = getattr(args, "shard_timeout", None)
    if shard_timeout is not None and shard_timeout <= 0:
        logger.error("--shard-timeout must be > 0: %s", shard_timeout)
        raise SystemExit(2)
    if getattr(args, "segment_bytes", DEFAULT_SEGMENT_BYTES) < 1:
        logger.error(
            "--segment-bytes must be >= 1: %d", args.segment_bytes
        )
        raise SystemExit(2)
    checkpoint = getattr(args, "checkpoint", None)
    segment_dir = getattr(args, "segment_dir", None)
    resume = getattr(args, "resume", False)
    if checkpoint and segment_dir and not resume:
        logger.error(
            "--checkpoint and --segment-dir are mutually exclusive "
            "persistence modes (combine them only with --resume, which "
            "imports the checkpoint into the segment store)"
        )
        raise SystemExit(2)
    resume_from = None
    resume_from_segments = False
    if resume:
        if not checkpoint and not segment_dir:
            logger.error("--resume requires --checkpoint or --segment-dir")
            raise SystemExit(2)
        if checkpoint:
            if any(
                candidate.exists()
                for candidate in checkpoint_candidates(checkpoint)
            ):
                resume_from = checkpoint
            else:
                logger.warning(
                    "no checkpoint at %s; starting fresh", checkpoint
                )
        if segment_dir:
            if Path(segment_dir, MANIFEST_NAME).exists():
                resume_from_segments = True
            else:
                logger.warning(
                    "no segment manifest in %s; starting fresh", segment_dir
                )
        if checkpoint and segment_dir:
            # Migration: the checkpoint is only a read source here; the
            # segment store is the sole write target from now on.
            checkpoint = None
    execution = ExecutionOptions(
        workers=getattr(args, "workers", 1),
        checkpoint=checkpoint,
        resume_from=resume_from,
        segment_dir=segment_dir,
        segment_bytes=getattr(args, "segment_bytes", DEFAULT_SEGMENT_BYTES),
        resume_from_segments=resume_from_segments,
        faults=_fault_plan(args),
        max_shard_retries=getattr(args, "max_shard_retries", 2),
        shard_timeout=shard_timeout,
    )
    return StudyConfig(
        start=CAMPAIGN_EPOCH,
        weeks=args.weeks,
        seed=args.seed,
        execution=execution,
    )


def _print_profile(stage_seconds) -> None:
    logger.info("per-stage timings:\n%s", format_timings(stage_seconds))


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Export the study's telemetry: JSON snapshot by default, the
    Prometheus text exposition for ``.prom``/``.txt`` paths."""
    target = Path(path)
    if target.suffix in {".prom", ".txt"}:
        target.write_text(registry.render_prometheus())
    else:
        target.write_text(registry.to_json())
    logger.info("metrics written to %s", target)


def _cmd_study(args) -> int:
    study_config = _study_config(args)
    world = build_world(_world_config(args))
    logger.info("world: %s", world.stats())
    results = run_study(world, study_config)
    origin = results.origins or world.ipv6_origin_asn
    with results.metrics.span("table1-comparison"):
        comparison = compare_datasets(
            results.ntp, [results.hitlist, results.caida], origin
        )
    print(comparison.render())
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    with results.metrics.span("save-corpora"):
        for corpus in results.corpora():
            path = output_dir / f"{corpus.name}.corpus.bin"
            count = save_corpus(corpus, path)
            print(f"saved {count:,} records to {path}")
    if args.metrics_out:
        _write_metrics(results.metrics, args.metrics_out)
    if args.profile:
        _print_profile(results.stage_seconds)
    return 0


def _cmd_analyze(args) -> int:
    # One columnar index up front; the analyses below then read shared
    # index columns instead of re-scanning the records per headline.
    # For a segment directory the index is folded from the seal-time
    # partial indexes — already-sealed segments are not re-read.
    registry = MetricsRegistry()
    corpus = open_corpus(args.corpus, indexed=True, metrics=registry)
    print(f"corpus {corpus.name!r}: {len(corpus):,} addresses")
    reused = registry.counter_value("repro_index_segments_reused_total")
    rescanned = registry.counter_value(
        "repro_index_segments_rescanned_total"
    )
    if reused or rescanned:
        print(
            f"index: {int(reused):,} segment partials folded, "
            f"{int(rescanned):,} segments rescanned"
        )
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    summary = address_lifetime_summary(corpus)
    print(
        f"lifetimes: {100 * summary.seen_once_fraction:.1f}% seen once, "
        f"{100 * summary.week_or_longer_fraction:.2f}% >= 1 week, "
        f"{100 * summary.month_or_longer_fraction:.2f}% >= 1 month"
    )
    report = analyze_tracking(corpus, lambda a: None, lambda a: None)
    print(
        f"EUI-64: {report.eui64_addresses:,} addresses "
        f"({100 * report.eui64_fraction:.2f}%), "
        f"{report.unique_macs:,} unique MACs, "
        f"{report.multi_slash64_macs:,} in >=2 /64s"
    )
    if report.multi_slash64_macs:
        rows = [
            [cls.value, report.classes[cls]]
            for cls in TrackingClass
        ]
        print(format_table(["tracking class", "MACs"], rows))
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import study_report

    study_config = _study_config(args)
    world = build_world(_world_config(args))
    results = run_study(world, study_config)
    with results.metrics.span("analysis-report"):
        text = study_report(world, results)
    if args.output:
        Path(args.output).write_text(text)
        logger.info("report written to %s", args.output)
    else:
        print(text)
    if args.metrics_out:
        _write_metrics(results.metrics, args.metrics_out)
    if args.profile:
        _print_profile(results.stage_seconds)
    return 0


def _cmd_matrix(args) -> int:
    from .analysis.matrix_report import format_matrix_report
    from .matrix import MatrixSpec, run_matrix

    try:
        spec = MatrixSpec.from_file(args.spec)
    except (OSError, ValueError) as error:
        logger.error("bad matrix spec %s: %s", args.spec, error)
        raise SystemExit(2)
    registry = MetricsRegistry()
    try:
        results = run_matrix(
            spec,
            args.dir,
            resume=args.resume,
            matrix_workers=args.matrix_workers,
            cell_timeout=args.cell_timeout,
            max_cell_retries=args.max_cell_retries,
            metrics=registry,
        )
    except ValueError as error:
        logger.error("matrix sweep refused: %s", error)
        raise SystemExit(2)
    text = format_matrix_report(
        results.manifest, directory=results.directory
    )
    if args.report:
        Path(args.report).write_text(text)
        logger.info("matrix report written to %s", args.report)
    else:
        print(text)
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    counts = results.counts
    logger.info(
        "sweep finished: %d ok, %d failed, %d timeout, %d rejected, "
        "%d skipped on resume",
        counts["ok"],
        counts["failed"],
        counts["timeout"],
        counts["rejected"],
        counts["skipped_resume"],
    )
    # Graceful degradation is the contract: failed cells are recorded
    # in MATRIX.json, not turned into a non-zero sweep exit.
    return 0


def _cmd_release(args) -> int:
    corpus = open_corpus(args.corpus)
    artifact = build_release(corpus)
    violations = verify_release_safety(artifact)
    if violations:
        for violation in violations:
            print(f"UNSAFE: {violation}", file=sys.stderr)
        return 1
    with open(args.output, "w") as stream:
        artifact.write(stream)
    print(
        f"released {artifact.prefix_count:,} /48s "
        f"(aggregating {artifact.address_count:,} addresses) to {args.output}"
    )
    return 0


def _cmd_serve(args) -> int:
    # Lazy import: serving is optional machinery; the other subcommands
    # must not pay for (or depend on) it.
    from .serve import ensure_serving_index
    from .serve.fleet import FleetConfig, run_single, run_supervisor

    if args.serve_workers < 1:
        logger.error(
            "--serve-workers must be >= 1: %d", args.serve_workers
        )
        return 2
    if args.reload_interval < 0:
        logger.error(
            "--reload-interval must be >= 0: %s", args.reload_interval
        )
        return 2
    if args.drain_timeout < 0:
        logger.error(
            "--drain-timeout must be >= 0: %s", args.drain_timeout
        )
        return 2
    if args.max_pipeline < 1:
        logger.error(
            "--max-pipeline must be >= 1: %d", args.max_pipeline
        )
        return 2
    from .serve.wire import MIN_FRAME_BYTES

    if args.max_frame_bytes < MIN_FRAME_BYTES:
        logger.error(
            "--max-frame-bytes must be >= %d: %d",
            MIN_FRAME_BYTES, args.max_frame_bytes,
        )
        return 2

    if args.build_only:
        registry = MetricsRegistry()
        routing = None
        if args.scale is not None:
            # The synthetic worlds are deterministic in (scale, seed),
            # so the routing table (hence the flattened origin table
            # baked into the index) is reproducible from the flags.
            world = build_world(
                preset_config(args.scale, seed=args.seed)
            )
            routing = world.routing
        try:
            index = ensure_serving_index(
                args.segment_dir,
                routing=routing,
                metrics=registry,
                rebuild=args.rebuild,
                lock=True,
            )
        except FileNotFoundError as error:
            logger.error("no segment store to serve: %s", error)
            return 2
        index.close()
        if args.metrics_out:
            _write_metrics(registry, args.metrics_out)
        print(f"serving index ready at {index.path}")
        return 0

    config = FleetConfig(
        directory=args.segment_dir,
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        scale=args.scale,
        seed=args.seed,
        rebuild=args.rebuild,
        reload_interval=args.reload_interval,
        drain_timeout=args.drain_timeout,
        metrics_out=args.metrics_out,
        max_pipeline=args.max_pipeline,
        max_frame_bytes=args.max_frame_bytes,
        json_only=args.json_only,
    )
    if config.workers == 1:
        return run_single(config)
    return run_supervisor(config)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'IPv6 Hitlists at Scale' "
                    "(SIGCOMM 2023)",
    )
    parser.add_argument(
        "--log-level", default="info", metavar="LEVEL",
        choices=["debug", "info", "warning", "error", "critical"],
        help="stderr logging verbosity (default: info)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_campaign_options(subparser) -> None:
        subparser.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for the NTP collection "
                 "(sharded by device; results are identical for any count)",
        )
        subparser.add_argument(
            "--checkpoint", default=None, metavar="PATH",
            help="snapshot the NTP corpus atomically to PATH after each "
                 "collected week",
        )
        subparser.add_argument(
            "--resume", action="store_true",
            help="resume the NTP collection from --checkpoint if it exists "
                 "(falls back to rotated .1/.2 generations when the newest "
                 "snapshot is corrupt)",
        )
        subparser.add_argument(
            "--segment-dir", default=None, metavar="DIR",
            help="stream the NTP corpus into sealed segment files under "
                 "DIR (manifest-tracked; memory use is bounded by "
                 "--segment-bytes however long the campaign runs); "
                 "with --resume, continues from DIR's committed manifest",
        )
        subparser.add_argument(
            "--segment-bytes", type=int, default=DEFAULT_SEGMENT_BYTES,
            metavar="N",
            help="flush budget: seal a segment once the in-memory buffer "
                 f"reaches N serialized bytes (default: "
                 f"{DEFAULT_SEGMENT_BYTES})",
        )
        subparser.add_argument(
            "--faults", default=None, metavar="SPEC",
            help="deterministic fault-injection plan for the NTP "
                 "collection, e.g. "
                 "'flap=0.2,loss=0.05,corrupt=0.01,seed=3,loss.BR=0.2'; "
                 "an empty spec injects nothing",
        )
        subparser.add_argument(
            "--max-shard-retries", type=int, default=2, metavar="N",
            help="resubmit a failed collection shard up to N times before "
                 "recomputing it inline (default: 2)",
        )
        subparser.add_argument(
            "--shard-timeout", type=float, default=None, metavar="SECONDS",
            help="wall-clock deadline for one round of collection shards; "
                 "a hung worker is killed and the shard retried "
                 "(default: no deadline)",
        )
        subparser.add_argument(
            "--profile", action="store_true",
            help="print a per-stage wall-clock timing table (collection, "
                 "comparison campaigns, corpus indexing, analysis) to "
                 "stderr",
        )
        subparser.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="write the study's telemetry snapshot to PATH when done "
                 "(JSON by default; Prometheus text exposition for .prom "
                 "or .txt paths)",
        )

    study = commands.add_parser(
        "study", help="run the full three-campaign study and save corpora"
    )
    study.add_argument("--seed", type=int, default=7)
    study.add_argument("--weeks", type=int, default=31)
    study.add_argument(
        "--scale", choices=sorted(preset_names()), default="tiny",
        help="world size preset",
    )
    study.add_argument("--output-dir", default="corpora")
    add_campaign_options(study)
    study.set_defaults(handler=_cmd_study)

    analyze = commands.add_parser(
        "analyze", help="headline analyses over a saved corpus"
    )
    analyze.add_argument(
        "--seed", type=int, default=7,
        help="accepted on every subcommand for interface uniformity; "
             "analyses of a saved corpus are deterministic regardless",
    )
    analyze.add_argument(
        "corpus",
        help="path to a .corpus.bin/.csv file or a --segment-dir directory",
    )
    analyze.add_argument(
        "--metrics-out", default=None,
        help="write the analysis telemetry (index reuse counters) to "
             "this path: JSON, or Prometheus text for .prom/.txt",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    matrix = commands.add_parser(
        "matrix",
        help="run a declarative scenario sweep (world x faults x weeks "
             "x seeds) with per-cell isolation and crash-safe resume",
    )
    matrix.add_argument(
        "spec",
        help="path to a JSON matrix spec (axes: presets, overrides, "
             "faults, weeks, workers, seeds; optional pipeline)",
    )
    matrix.add_argument(
        "--seed", type=int, default=7,
        help="accepted on every subcommand for interface uniformity; "
             "cell seeds come from the spec's seeds axis",
    )
    matrix.add_argument(
        "--dir", required=True, metavar="DIR",
        help="sweep directory: MATRIX.json plus one cells/<id>/ output "
             "directory per cell",
    )
    matrix.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep: verified completed cells "
             "are skipped, incomplete and failed cells re-run",
    )
    matrix.add_argument(
        "--matrix-workers", type=int, default=1, metavar="N",
        help="cells executed concurrently, each in its own process "
             "(default: 1)",
    )
    matrix.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per cell attempt; a hung cell is "
             "killed and retried (default: no deadline)",
    )
    matrix.add_argument(
        "--max-cell-retries", type=int, default=1, metavar="N",
        help="re-run a failed cell up to N times before recording it as "
             "terminally failed (default: 1)",
    )
    matrix.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the cross-cell comparison report to PATH instead of "
             "stdout",
    )
    matrix.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the sweep telemetry (repro_matrix_* counters) to "
             "PATH: JSON, or Prometheus text for .prom/.txt",
    )
    matrix.set_defaults(handler=_cmd_matrix)

    release = commands.add_parser(
        "release", help="write the ethics-aware /48-truncated release"
    )
    release.add_argument(
        "--seed", type=int, default=7,
        help="accepted on every subcommand for interface uniformity; "
             "the release aggregation is deterministic regardless",
    )
    release.add_argument(
        "corpus",
        help="path to a saved corpus file or a --segment-dir directory",
    )
    release.add_argument("--output", default="release_48s.csv")
    release.set_defaults(handler=_cmd_release)

    serve = commands.add_parser(
        "serve",
        help="serve a segment store's hitlist over TCP from the "
             "mmap-backed on-disk index (RSB1 binary frames, "
             "negotiated per connection; JSON-lines fallback)",
    )
    serve.add_argument(
        "segment_dir",
        help="a --segment-dir directory (or its MANIFEST.json); the "
             "SERVING.rsi index is built next to the manifest if "
             "missing, torn, or stale",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 picks a free port, announced on the "
             "'SERVE READY <host> <port>' stdout line (default: 0)",
    )
    serve.add_argument(
        "--seed", type=int, default=7,
        help="world seed used with --scale to rebuild the routing "
             "table for origin-ASN queries (default: 7)",
    )
    serve.add_argument(
        "--scale", choices=sorted(preset_names()), default=None,
        help="rebuild this preset's routing table and bake its "
             "flattened LPM origin table into the serving index "
             "(default: no origin table)",
    )
    serve.add_argument(
        "--rebuild", action="store_true",
        help="rebuild the serving index even if a current one exists",
    )
    serve.add_argument(
        "--serve-workers", type=int, default=1, metavar="N",
        help="pre-forked worker processes SO_REUSEPORT-sharing the "
             "port, each mmapping the same SERVING.rsi; the supervisor "
             "restarts crashed workers with capped backoff "
             "(default: 1 — serve in-process, no fork)",
    )
    serve.add_argument(
        "--reload-interval", type=float, default=1.0,
        metavar="SECONDS",
        help="poll MANIFEST.json every SECONDS and hot-swap the "
             "serving index when commits/compactions change it, "
             "without a restart (0 disables; default: 1.0)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on SIGTERM, let accepted in-flight requests flush their "
             "replies for up to SECONDS before closing (default: 5.0)",
    )
    serve.add_argument(
        "--max-pipeline", type=int, default=128, metavar="N",
        help="per-connection cap on pipelined in-flight requests; the "
             "server stops reading a connection at the cap until "
             "replies flush (default: 128)",
    )
    serve.add_argument(
        "--max-frame-bytes", type=int, default=8 << 20, metavar="N",
        help="per-connection bound on a request line (JSON) or frame "
             "(RSB1); an oversized request gets a typed error and the "
             "connection closes (default: 8388608 = 8 MiB)",
    )
    serve.add_argument(
        "--json-only", action="store_true",
        help="decline RSB1 binary upgrades; every connection speaks "
             "JSON lines (for old clients and wire debugging)",
    )
    serve.add_argument(
        "--build-only", action="store_true",
        help="build/refresh the serving index and exit without "
             "listening (for CI and cron)",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write serving telemetry on exit: JSON, or Prometheus "
             "text for .prom/.txt",
    )
    serve.set_defaults(handler=_cmd_serve)

    report = commands.add_parser(
        "report", help="run a study and print the full findings report"
    )
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--weeks", type=int, default=31)
    report.add_argument(
        "--scale", choices=sorted(preset_names()), default="tiny"
    )
    report.add_argument("--output", default=None)
    add_campaign_options(report)
    report.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # force=True rebinds the handler to the *current* sys.stderr on
    # every invocation (tests swap the stream between calls).
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
        force=True,
    )
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
