"""Cross-cell comparison report for a scenario-matrix sweep.

The sweep's scientific payoff is the *comparison*: how corpus size (and
therefore hitlist exposure) moves across world composition and fault
regimes.  :func:`format_matrix_report` renders a sweep manifest as:

* a status summary (every terminal state the manifest knows);
* a per-cell table in expansion order;
* per-axis comparisons — for each axis that actually varies across
  completed cells (preset, faults, weeks, workers, seed), the mean
  record count per axis value;
* failure and rejection details, so a half-red sweep still reads as a
  complete story.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..matrix.manifest import MatrixManifest, load_manifest
from .tables import format_table

__all__ = ["format_matrix_report", "matrix_report"]

#: Axes the comparison section groups completed cells by.
_COMPARED_AXES = ("preset", "faults", "weeks", "workers", "seed")


def _axis_value(params: Dict[str, object], axis: str) -> str:
    value = params.get(axis)
    if axis == "faults" and not value:
        return "none"
    return str(value)


def format_matrix_report(
    manifest: MatrixManifest, directory: Optional[Path] = None
) -> str:
    """Render one sweep manifest as a terminal report."""
    lines: List[str] = []
    title = "scenario matrix report"
    if directory is not None:
        title += f" — {directory}"
    lines.append(title)
    lines.append("=" * len(title))
    counts = manifest.counts()
    total = len(manifest.cells)
    summary = ", ".join(
        f"{name}={counts[name]}"
        for name in (
            "ok", "failed", "timeout", "rejected", "pending", "running"
        )
        if counts[name]
    )
    lines.append(f"cells: {total} ({summary or 'none'})")
    if counts["skipped_resume"]:
        lines.append(
            f"resume: {counts['skipped_resume']} completed cell(s) "
            "verified and skipped"
        )
    lines.append("")

    records = sorted(manifest.cells.values(), key=lambda r: r.cell_id)
    rows = []
    for record in records:
        rows.append(
            [
                record.cell_id,
                record.status
                + (" (resumed)" if record.skipped_resume else ""),
                record.label,
                record.records if record.records is not None else "-",
                (
                    f"{record.seconds:.2f}"
                    if record.seconds is not None
                    else "-"
                ),
                str(record.attempts),
            ]
        )
    lines.append(
        format_table(
            ["cell", "status", "scenario", "records", "seconds", "tries"],
            rows,
            title="cells",
        )
    )
    lines.append("")

    completed = [
        record
        for record in records
        if record.status == "ok" and record.records is not None
    ]
    for axis in _COMPARED_AXES:
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for record in completed:
            groups.setdefault(
                _axis_value(record.params, axis), []
            ).append(int(record.records))
        if len(groups) < 2:
            continue
        lines.append(
            format_table(
                [axis, "cells", "mean records", "min", "max"],
                [
                    [
                        value,
                        len(sizes),
                        round(sum(sizes) / len(sizes)),
                        min(sizes),
                        max(sizes),
                    ]
                    for value, sizes in groups.items()
                ],
                title=f"records by {axis}",
            )
        )
        lines.append("")

    troubled = [
        record
        for record in records
        if record.status in ("failed", "timeout")
    ]
    if troubled:
        lines.append("failures")
        lines.append("--------")
        for record in troubled:
            lines.append(
                f"  {record.cell_id} [{record.kind}] after "
                f"{record.attempts} attempt(s): {record.error}"
            )
        lines.append("")
    rejected = [record for record in records if record.status == "rejected"]
    if rejected:
        lines.append("rejected before run")
        lines.append("-------------------")
        for record in rejected:
            for reason in record.reasons:
                lines.append(f"  {record.cell_id}: {reason}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def matrix_report(directory: Union[str, Path]) -> str:
    """Load ``directory``'s manifest and render its report."""
    directory = Path(directory)
    loaded = load_manifest(directory)
    if loaded is None:
        raise FileNotFoundError(
            f"no matrix manifest under {directory}"
        )
    manifest, _, _ = loaded
    return format_matrix_report(manifest, directory=directory)
