"""Plain-text table rendering for bench output.

Benchmarks print the paper's tables as aligned ASCII; this module owns
the formatting so every bench emits a consistent style.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_count", "format_table", "format_timings"]


def format_count(value, precision: int = 1) -> str:
    """Human-oriented number formatting: 1234567 → '1,234,567'.

    Floats are rendered with ``precision`` decimals; ``None`` renders as
    a dash (used for the '-' cells in the paper's Table 1).
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.{precision}f}"
    return f"{value:,}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are passed through :func:`format_count` unless already strings.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [cell if isinstance(cell, str) else format_count(cell) for cell in row]
        )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(widths[index]) if index else cell.ljust(widths[index])
            for index, cell in enumerate(cells)
        )

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_timings(
    stage_seconds: "dict",
    title: Optional[str] = "per-stage timings",
) -> str:
    """Render a stage → seconds mapping as the ``--profile`` dump.

    Stages appear in insertion (execution) order with their share of the
    total; the total is appended as a final row.
    """
    total = sum(stage_seconds.values())
    rows: List[List] = [
        [
            stage,
            f"{seconds:10.3f}",
            f"{100 * seconds / total:5.1f}%" if total else "-",
        ]
        for stage, seconds in stage_seconds.items()
    ]
    rows.append(["total", f"{total:10.3f}", "100.0%" if total else "-"])
    return format_table(["stage", "seconds", "share"], rows, title=title)
