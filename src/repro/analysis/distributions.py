"""Empirical distribution helpers (CDF/CCDF) used by every figure.

The paper's figures are all cumulative distributions: IID entropy CDFs
(Figs. 1, 3, 4), lifetime CCDF/CDFs (Figs. 2, 6a), and a per-EUI-64
/64-count CCDF (Fig. 6b).  :class:`ECDF` provides the shared machinery:
quantiles, point evaluation, fraction-above/below, and fixed-grid
sampling for plotting.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["ECDF"]


class ECDF:
    """Empirical cumulative distribution of a sample.

    >>> dist = ECDF([1.0, 2.0, 2.0, 4.0])
    >>> dist.cdf(2.0)
    0.75
    >>> dist.quantile(0.5)
    2.0
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values: List[float] = sorted(values)
        if not self._values:
            raise ValueError("ECDF of an empty sample is undefined")

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        """Two ECDFs are equal iff their sorted samples are equal."""
        if not isinstance(other, ECDF):
            return NotImplemented
        return self._values == other._values

    @property
    def min(self) -> float:
        """Smallest sample value."""
        return self._values[0]

    @property
    def max(self) -> float:
        """Largest sample value."""
        return self._values[-1]

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self._values) / len(self._values)

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def ccdf(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.cdf(x)

    def fraction_at(self, x: float) -> float:
        """Fraction of the sample exactly equal to ``x``."""
        left = bisect.bisect_left(self._values, x)
        right = bisect.bisect_right(self._values, x)
        return (right - left) / len(self._values)

    def quantile(self, q: float) -> float:
        """The smallest value v with cdf(v) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1]: {q}")
        index = min(
            len(self._values) - 1,
            max(0, math.ceil(q * len(self._values)) - 1),
        )
        return self._values[index]

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def sample_points(
        self,
        points: int = 50,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """``points`` evenly spaced (x, cdf(x)) pairs for plotting."""
        if points < 2:
            raise ValueError("need at least 2 points")
        lo = self.min if lo is None else lo
        hi = self.max if hi is None else hi
        if hi <= lo:
            return [(lo, self.cdf(lo))] * points
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.cdf(lo + i * step)) for i in range(points)]

    def ccdf_points(
        self,
        points: int = 50,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """``points`` evenly spaced (x, ccdf(x)) pairs."""
        return [(x, 1.0 - y) for x, y in self.sample_points(points, lo, hi)]
