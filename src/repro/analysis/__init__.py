"""Shared analysis and reporting helpers.

Empirical distributions (:mod:`repro.analysis.distributions`), ASCII
tables (:mod:`repro.analysis.tables`) and terminal figure rendering
(:mod:`repro.analysis.figures`).
"""

from .distributions import ECDF
from .figures import render_ccdf_chart, render_cdf_chart, render_timeline
from .matrix_report import format_matrix_report, matrix_report
from .report import study_report
from .tables import format_count, format_table

__all__ = [
    "ECDF",
    "format_count",
    "format_matrix_report",
    "format_table",
    "matrix_report",
    "render_ccdf_chart",
    "render_cdf_chart",
    "render_timeline",
    "study_report",
]
