"""ASCII rendering of the paper's figure types.

Benches regenerate each figure as data series; these helpers draw them as
terminal charts so the shape (who is above whom, where medians fall) is
visible without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..addr.entropy import normalized_iid_entropy
from ..addr.ipv6 import iid_of
from .distributions import ECDF

__all__ = [
    "corpus_entropy_samples",
    "render_cdf_chart",
    "render_ccdf_chart",
    "render_entropy_cdf",
    "render_timeline",
]

_GLYPHS = "*o+x#@%&"


def _render_grid(
    series: Dict[str, List[Tuple[float, float]]],
    width: int,
    height: int,
    x_label: str,
    y_label: str,
    title: Optional[str],
    log_note: str = "",
) -> str:
    xs = [x for points in series.values() for x, _ in points]
    if not xs:
        raise ValueError("no data to plot")
    lo, hi = min(xs), max(xs)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in points:
            column = int((x - lo) / span * (width - 1))
            row = height - 1 - int(max(0.0, min(1.0, y)) * (height - 1))
            grid[row][column] = glyph
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = 1.0 - row_index / (height - 1)
        label = f"{y_value:4.2f} |" if row_index % 2 == 0 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{'':{max(0, width - 24)}}{hi:>12.4g}")
    lines.append(f"      x: {x_label}{log_note}   y: {y_label}")
    for index, name in enumerate(series):
        lines.append(f"      {_GLYPHS[index % len(_GLYPHS)]} {name}")
    return "\n".join(lines)


def corpus_entropy_samples(corpus) -> List[float]:
    """Per-address normalized IID entropy of a corpus (the Fig. 1 input).

    Reads the precomputed entropy column when a
    :class:`~repro.core.index.CorpusIndex` is attached to the corpus;
    otherwise recomputes entropy per address.
    """
    index = getattr(corpus, "index", None)
    if index is not None:
        return list(index.entropy_samples())
    return [
        normalized_iid_entropy(iid_of(address))
        for address in corpus.addresses()
    ]


def render_entropy_cdf(
    corpora: Sequence,
    width: int = 64,
    height: int = 16,
    points: int = 64,
) -> str:
    """Draw the paper's Fig. 1: overlaid IID-entropy CDFs per dataset."""
    return render_cdf_chart(
        {corpus.name: corpus_entropy_samples(corpus) for corpus in corpora},
        "normalized IID entropy",
        width=width,
        height=height,
        title="Figure 1: normalized IID entropy CDF",
        points=points,
    )


def render_cdf_chart(
    samples: Dict[str, Sequence[float]],
    x_label: str,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    points: int = 64,
) -> str:
    """Draw overlaid CDFs of several samples."""
    series = {}
    lo = min(min(values) for values in samples.values())
    hi = max(max(values) for values in samples.values())
    for name, values in samples.items():
        series[name] = ECDF(values).sample_points(points, lo, hi)
    return _render_grid(series, width, height, x_label, "CDF", title)


def render_ccdf_chart(
    samples: Dict[str, Sequence[float]],
    x_label: str,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    points: int = 64,
) -> str:
    """Draw overlaid CCDFs of several samples."""
    series = {}
    lo = min(min(values) for values in samples.values())
    hi = max(max(values) for values in samples.values())
    for name, values in samples.items():
        series[name] = ECDF(values).ccdf_points(points, lo, hi)
    return _render_grid(series, width, height, x_label, "CCDF", title)


def render_timeline(
    tracks: Dict[str, List[float]],
    start: float,
    end: float,
    width: int = 64,
    title: Optional[str] = None,
    time_unit: float = 86_400.0,
    unit_name: str = "days",
) -> str:
    """Draw event timelines (the paper's Fig. 7 device-sighting plots).

    ``tracks`` maps a label (e.g. an AS name or /64) to sighting times.
    """
    if end <= start:
        raise ValueError("empty time range")
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in tracks), default=0)
    for label, times in tracks.items():
        row = [" "] * width
        for when in times:
            if start <= when <= end:
                column = int((when - start) / (end - start) * (width - 1))
                row[column] = "x"
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    total = (end - start) / time_unit
    lines.append(
        f"{' ' * label_width}  0 {unit_name:^{max(0, width - 12)}} {total:.0f}"
    )
    return "\n".join(lines)
