"""Full-study report generation.

Condenses one :class:`repro.core.study.StudyResults` into a single text
report covering every headline finding of the paper, in paper order:
dataset comparison, entropy, lifetimes, addressing categories, EUI-64
prevalence, tracking classes and geolocation exposure.  Used by the
``repro report`` CLI subcommand and handy as a one-call summary in
notebooks.
"""

from __future__ import annotations

from typing import List

from ..addr.ipv6 import format_address
from ..addr.oui_db import UNLISTED, manufacturer_counts
from ..geo.ipvseeyou import geolocate_corpus
from ..net.geodb import country_histogram, top_country_share
from .distributions import ECDF
from .figures import corpus_entropy_samples
from .tables import format_table

__all__ = ["study_report"]

# repro.core modules import repro.analysis for table rendering, so the
# core analyses are imported lazily here to keep the layering acyclic.


def _median_entropy(corpus) -> float:
    return ECDF(corpus_entropy_samples(corpus)).median


def study_report(world, results, geolocation_min_pairs: int = 12) -> str:
    """Render the complete findings report for one study run.

    When the study built columnar indexes (the default), every section
    reads the shared index columns and the study's /64-memoized origin
    resolver; otherwise each analysis falls back to scanning the
    corpora with the world's raw LPM lookup.
    """
    from ..core.compare import compare_datasets, phone_provider_shares
    from ..core.lifetime import address_lifetime_summary
    from ..core.tracking import analyze_tracking

    origin = getattr(results, "origins", None) or world.ipv6_origin_asn
    sections: List[str] = []

    # 1. Dataset comparison (Table 1).
    comparison = compare_datasets(
        results.ntp, [results.hitlist, results.caida], origin
    )
    sections.append(comparison.render())
    sections.append(
        "size ratios: NTP/Hitlist %.0fx, NTP/CAIDA %.0fx"
        % (
            comparison.size_ratio("ipv6-hitlist"),
            comparison.size_ratio("caida-routed-48"),
        )
    )

    shares = phone_provider_shares(
        [results.ntp, results.hitlist], world.registry, origin
    )
    sections.append(
        "phone-provider share: NTP %.0f%% vs Hitlist %.0f%%"
        % (100 * shares["ntp-pool"], 100 * shares["ipv6-hitlist"])
    )

    ranked, share = top_country_share(
        country_histogram(results.ntp.addresses(), world.geodb), top=5
    )
    sections.append(
        "top-5 countries: %s (%.0f%% of corpus)"
        % (", ".join(c for c, _ in ranked), 100 * share)
    )

    # 2. Entropy (Figure 1).
    sections.append("")
    sections.append(
        "median IID entropy: "
        + ", ".join(
            f"{corpus.name}={_median_entropy(corpus):.2f}"
            for corpus in results.corpora()
        )
    )

    # 3. Lifetimes (Figure 2).
    lifetime = address_lifetime_summary(results.ntp)
    sections.append(
        "lifetimes: %.0f%% seen once, %.2f%% >= 1 week, %.2f%% >= 1 month"
        % (
            100 * lifetime.seen_once_fraction,
            100 * lifetime.week_or_longer_fraction,
            100 * lifetime.month_or_longer_fraction,
        )
    )

    # 4. EUI-64 and tracking (§5.1–5.2).
    tracking = analyze_tracking(results.ntp, origin, world.country_of)
    sections.append("")
    sections.append(
        "EUI-64: %d addresses (%.2f%% of corpus, vs %.1f random "
        "lookalikes expected), %d unique MACs"
        % (
            tracking.eui64_addresses,
            100 * tracking.eui64_fraction,
            tracking.expected_random,
            tracking.unique_macs,
        )
    )
    vendors = manufacturer_counts(tracking.tracks.keys(), world.oui_db)
    top_vendors = ", ".join(
        f"{vendor} ({count})" for vendor, count in vendors.most_common(5)
    )
    sections.append(f"top manufacturers: {top_vendors}")
    if tracking.multi_slash64_macs:
        rows = [
            [cls.value, tracking.classes[cls],
             f"{100 * fraction:.2f}%"]
            for cls, fraction in tracking.class_fractions().items()
        ]
        sections.append(
            format_table(
                ["tracking class", "MACs", "share"],
                rows,
                title=f"trackable MACs (>=2 /64s): "
                      f"{tracking.multi_slash64_macs} "
                      f"({100 * tracking.multi_slash64_fraction:.1f}%)",
            )
        )

    # 5. Geolocation exposure (§5.3).
    report = geolocate_corpus(
        list(results.ntp.eui64_addresses()),
        world.bssid_db,
        min_pairs=geolocation_min_pairs,
    )
    sections.append("")
    top = report.top_countries(3)
    country_text = (
        ", ".join(f"{c} {100 * s:.0f}%" for c, s in top) if top else "none"
    )
    sections.append(
        "geolocation attack: %d OUI offsets inferred, %d devices "
        "geolocated (%s)"
        % (len(report.offsets), report.located_count, country_text)
    )

    # 6. Vantage availability (collection-infrastructure health, §3).
    availability = results.campaign.vantage_availability()
    if availability:
        sections.append("")
        fractions = [timeline.fraction for _, timeline in availability]
        always_up = sum(
            1 for _, timeline in availability if timeline.ejections == 0
        )
        sections.append(
            "vantage availability: mean %.1f%% in DNS rotation, "
            "%d/%d vantages never ejected"
            % (
                100 * sum(fractions) / len(fractions),
                always_up,
                len(availability),
            )
        )
        degraded = sorted(
            (
                (vantage, timeline)
                for vantage, timeline in availability
                if timeline.ejections > 0
            ),
            key=lambda pair: pair[1].fraction,
        )
        for vantage, timeline in degraded[:5]:
            sections.append(
                "  %s (%s): %.1f%% available, %d ejection(s)"
                % (
                    format_address(vantage.address),
                    vantage.country,
                    100 * timeline.fraction,
                    timeline.ejections,
                )
            )

    # 7. Operational telemetry (collection-run health; the counters are
    # exported in full through ``--metrics-out``).
    metrics = getattr(results, "metrics", None)
    shard_failures = getattr(results.campaign, "shard_failures", [])
    sections.append("")
    sections.append("operational telemetry:")
    sections.append("  shard failures: %d" % len(shard_failures))
    if metrics is not None:
        sections.append(
            "  queries evaluated: %d"
            % int(metrics.counter_value("repro_campaign_queries_total"))
        )
        sections.append(
            "  packets dropped by faults: %d"
            % int(metrics.counter_value("repro_faults_packets_lost_total"))
        )
        sections.append(
            "  rotation ejections: %d"
            % int(
                metrics.counter_value("repro_faults_rotation_ejections_total")
            )
        )

    header = (
        f"Study report — world seed {world.config.seed}, "
        f"{len(world.devices):,} devices, "
        f"{len(results.ntp):,} passively observed addresses\n"
    )
    return header + "\n" + "\n".join(sections) + "\n"
