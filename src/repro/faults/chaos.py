"""Environment-driven process chaos for the sharded executor.

The retry/containment machinery in :mod:`repro.core.parallel` needs a
way to make real workers really die — an in-process monkeypatch does
not cross the ``ProcessPoolExecutor`` boundary.  This module reads a
small environment protocol at shard entry:

* ``REPRO_CHAOS_TOKENS`` — a directory of token files; each triggered
  failure atomically consumes one token, so the number of files placed
  there is exactly the number of failures injected;
* ``REPRO_CHAOS_SHARD`` — only shards with this index fail (optional;
  default: any shard);
* ``REPRO_CHAOS_MODE`` — ``"raise"`` (default) raises
  :class:`ChaosInjected` inside the worker, exercising the exception
  path; ``"kill"`` hard-exits the worker process, breaking the pool and
  exercising crash containment; ``"hang"`` makes the worker sleep
  (for ``REPRO_CHAOS_HANG_SECONDS``, default one hour), exercising the
  wall-clock deadline / hung-worker-kill paths.

With no environment set this is a no-op costing one ``os.environ``
lookup.  The CI chaos job and ``tests/core/test_shard_retry.py`` drive
it; the inline-degradation fallback in the parent process deliberately
bypasses it (a chaos kill must never take down the coordinating
process).
"""

from __future__ import annotations

import os
import time

__all__ = ["ChaosInjected", "maybe_fail_shard"]

#: Exit status of a chaos-killed worker (distinctive in pool tracebacks).
KILL_STATUS = 17

#: Default sleep of a hang-mode worker: long enough that any realistic
#: deadline fires first, short enough that an orphaned worker does not
#: outlive a CI job.
DEFAULT_HANG_SECONDS = 3600.0


class ChaosInjected(RuntimeError):
    """Raised inside a worker when a chaos token is consumed in raise mode."""


def maybe_fail_shard(shard_index: int) -> None:
    """Consume one chaos token and fail, if the environment says so."""
    directory = os.environ.get("REPRO_CHAOS_TOKENS")
    if not directory:
        return
    target = os.environ.get("REPRO_CHAOS_SHARD")
    if target is not None and shard_index != int(target):
        return
    try:
        tokens = sorted(os.listdir(directory))
    except FileNotFoundError:
        return
    for token in tokens:
        try:
            os.unlink(os.path.join(directory, token))
        except FileNotFoundError:
            continue  # another worker claimed it first
        mode = os.environ.get("REPRO_CHAOS_MODE", "raise")
        if mode == "kill":
            os._exit(KILL_STATUS)
        if mode == "hang":
            deadline = time.monotonic() + float(
                os.environ.get(
                    "REPRO_CHAOS_HANG_SECONDS", DEFAULT_HANG_SECONDS
                )
            )
            # Sleep in short slices so a terminate() (as opposed to a
            # hard kill) still takes effect promptly.
            while time.monotonic() < deadline:
                time.sleep(0.05)
            raise ChaosInjected(
                f"chaos token {token!r} hung shard {shard_index} until "
                "its deadline"
            )
        raise ChaosInjected(
            f"chaos token {token!r} consumed by shard {shard_index}"
        )
