"""Deterministic fault injection for the collection stack.

The paper's 7-month campaign ran on infrastructure that failed
constantly: the NTP Pool's monitoring system silently ejects members
whose score falls below the join threshold, VPSes reboot, and UDP is
lossy.  This package models those failure modes *deterministically* — a
:class:`FaultPlan` is a small frozen value, every fault decision derives
from ``split_rng``-style keyed hashing, and the same plan replays the
same faults in any process, for any shard count.

* :mod:`repro.faults.plan` — the :class:`FaultPlan` value and its CLI
  spec parser;
* :mod:`repro.faults.monitor` — the pool-monitor score model that turns
  reachability incidents into in-rotation availability timelines;
* :mod:`repro.faults.injector` — the runtime object campaigns query in
  their hot loop;
* :mod:`repro.faults.chaos` — environment-driven process-level chaos
  (worker kills / raises) for the sharded executor's retry tests.
"""

from .chaos import ChaosInjected, maybe_fail_shard
from .injector import FaultInjector
from .monitor import AvailabilityTimeline, availability_timeline, incident_windows
from .plan import FaultPlan

__all__ = [
    "AvailabilityTimeline",
    "ChaosInjected",
    "FaultInjector",
    "FaultPlan",
    "availability_timeline",
    "incident_windows",
    "maybe_fail_shard",
]
