"""The pool-monitor score model: incidents → in-rotation timelines.

The real NTP Pool probes every member on a fixed cadence and keeps a
per-member *score*: a reachable sample earns a point (capped), an
unreachable one costs several, and the member is handed out by the
pool's DNS rotation only while its score sits at or above the join
threshold.  The asymmetry matters — a one-hour outage ejects a vantage
within a few samples, but re-earning the threshold takes many reachable
samples, so the vantage keeps capturing nothing for a while *after* its
VPS recovers.  The paper's campaign operated under exactly this regime.

Everything here is derived from the fault plan's seed with keyed
hashing (:func:`repro.world.rng.split_rng`), so the timeline of any
vantage is identical in every process that computes it.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from ..world.clock import DAY
from ..world.rng import split_rng
from .plan import FaultPlan

__all__ = ["AvailabilityTimeline", "incident_windows", "availability_timeline"]


class AvailabilityTimeline:
    """In-rotation windows of one vantage over a campaign span.

    ``windows`` are the disjoint, ascending ``[start, end)`` intervals
    during which the pool's DNS would hand the vantage out; everywhere
    else in ``[start, end)`` the vantage is ejected and captures
    nothing.
    """

    __slots__ = ("start", "end", "windows", "_starts")

    def __init__(
        self,
        start: float,
        end: float,
        windows: Tuple[Tuple[float, float], ...],
    ) -> None:
        self.start = start
        self.end = end
        self.windows = tuple(
            (ws, we) for ws, we in windows if we > ws
        )
        self._starts = [ws for ws, _ in self.windows]

    def available(self, when: float) -> bool:
        """True while the vantage is in the DNS rotation at ``when``."""
        index = bisect.bisect_right(self._starts, when) - 1
        return index >= 0 and when < self.windows[index][1]

    @property
    def fraction(self) -> float:
        """Fraction of the span spent in rotation."""
        span = self.end - self.start
        if span <= 0:
            return 1.0
        return sum(we - ws for ws, we in self.windows) / span

    @property
    def ejections(self) -> int:
        """Number of distinct out-of-rotation gaps in the span."""
        count = 0
        cursor = self.start
        for window_start, window_end in self.windows:
            if window_start > cursor:
                count += 1
            cursor = window_end
        if cursor < self.end:
            count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"AvailabilityTimeline({100 * self.fraction:.1f}% of "
            f"[{self.start}, {self.end}), {self.ejections} ejections)"
        )


def incident_windows(
    plan: FaultPlan, vantage_address: int, start: float, end: float
) -> List[Tuple[float, float]]:
    """Merged unreachability incidents of one vantage over a span.

    Each campaign day independently starts an incident with probability
    ``plan.vantage_flap_rate``, at a uniform time of day, with an
    exponentially distributed duration — all drawn from an RNG keyed by
    ``(plan.seed, "incident", vantage_address, day)``, so the schedule
    never depends on which other vantages or days were evaluated.
    """
    if plan.vantage_flap_rate <= 0.0 or end <= start:
        return []
    days = int((end - start + DAY - 1) // DAY)
    raw: List[Tuple[float, float]] = []
    for day in range(days):
        rng = split_rng(plan.seed, "incident", vantage_address, day)
        if rng.random() >= plan.vantage_flap_rate:
            continue
        begin = start + day * DAY + rng.random() * DAY
        duration = rng.expovariate(1.0 / plan.outage_duration)
        if begin >= end:
            continue
        raw.append((begin, min(begin + duration, end)))
    raw.sort()
    merged: List[Tuple[float, float]] = []
    for begin, finish in raw:
        if merged and begin <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], finish))
        else:
            merged.append((begin, finish))
    return merged


def availability_timeline(
    plan: FaultPlan, vantage_address: int, start: float, end: float
) -> AvailabilityTimeline:
    """Run the score model over a span and return the rotation windows.

    The vantage starts as a healthy member (score at the cap).  The
    monitor samples reachability every ``plan.monitor_interval``
    seconds; score transitions across ``plan.join_threshold`` become
    window boundaries.  Stretches with a full score and no incident in
    sight are skipped in O(1) rather than sampled, so a mostly-healthy
    31-week timeline costs time proportional to its incidents, not its
    length.
    """
    incidents = incident_windows(plan, vantage_address, start, end)
    if not incidents:
        return AvailabilityTimeline(start, end, ((start, end),))

    interval = plan.monitor_interval
    score = plan.score_cap
    floor = -plan.score_cap
    in_rotation = True
    window_start = start
    windows: List[Tuple[float, float]] = []
    index = 0  # first incident not entirely in the past
    t = start
    while t < end:
        while index < len(incidents) and incidents[index][1] <= t:
            index += 1
        reachable = not (
            index < len(incidents) and incidents[index][0] <= t
        )
        if reachable and score >= plan.score_cap:
            # Healthy steady state: fast-forward to the last monitor
            # tick at or before the next incident begins.
            if index >= len(incidents):
                break
            ticks_until = int((incidents[index][0] - start) // interval)
            skip_to = start + ticks_until * interval
            t = skip_to if skip_to > t else t + interval
            continue
        if reachable:
            score = min(score + plan.reach_gain, plan.score_cap)
        else:
            score = max(score - plan.unreach_penalty, floor)
        now_in = score >= plan.join_threshold
        if now_in != in_rotation:
            if in_rotation:
                windows.append((window_start, t))
            else:
                window_start = t
            in_rotation = now_in
        t += interval
    if in_rotation:
        windows.append((window_start, end))
    return AvailabilityTimeline(start, end, tuple(windows))
