"""The runtime fault injector campaigns query in their hot loop.

One :class:`FaultInjector` is built per campaign (per process — it is
cheap and fully derived from the plan), precomputes every vantage's
availability timeline, and answers three per-query questions:

* :meth:`in_rotation` — would the pool's DNS still hand this vantage
  out at this instant?
* :meth:`packet_lost` — did this particular query's datagram survive
  the (per-country lossy) path to the vantage?
* :meth:`corrupts` / :meth:`corrupt_bytes` — was the datagram mangled
  in flight, and into what?

Every answer is keyed by the *identity* of the query
(``device_id, day, query_index``), never by call order, so serial,
sharded and replayed walks of the same campaign observe the same
faults — the same invariant the capture RNG already provides.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..obs import MetricsRegistry, NULL_REGISTRY
from ..world.rng import keyed_uniform, split_rng
from .monitor import AvailabilityTimeline, availability_timeline
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic fault decisions for one campaign span.

    Every injected decision is double-entried: a plain integer in
    :attr:`decisions` (always on, used by tests to cross-check exported
    telemetry) and a counter on the ``metrics`` registry (a no-op
    :data:`repro.obs.NULL_REGISTRY` unless the owning campaign wires its
    own in).
    """

    def __init__(
        self,
        plan: FaultPlan,
        vantages: Iterable,
        start: float,
        end: float,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan
        self.start = start
        self.end = end
        self._base_loss = plan.packet_loss
        self._country_loss: Dict[str, float] = dict(plan.country_loss)
        self._timelines: Dict[int, AvailabilityTimeline] = {}
        for vantage in vantages:
            self._timelines[vantage.address] = availability_timeline(
                plan, vantage.address, start, end
            )
        #: Injected-fault decision counts: ``rotation_ejections`` (a
        #: query hit an out-of-rotation vantage), ``packets_lost``,
        #: ``corruptions``, ``segment_write_failures`` (a segment seal
        #: attempt failed and was retried).
        self.decisions: Dict[str, int] = {
            "rotation_ejections": 0,
            "packets_lost": 0,
            "corruptions": 0,
            "segment_write_failures": 0,
        }
        registry = NULL_REGISTRY if metrics is None else metrics
        self._m_ejected = registry.counter(
            "repro_faults_rotation_ejections_total",
            "queries dropped because their vantage was out of rotation",
        )
        self._m_lost = registry.counter(
            "repro_faults_packets_lost_total",
            "query datagrams dropped by injected packet loss",
        )
        self._m_corrupted = registry.counter(
            "repro_faults_corruptions_total",
            "query datagrams mangled by injected corruption",
        )
        self._m_segment_write = registry.counter(
            "repro_faults_segment_write_failures_total",
            "segment seal attempts failed by injected write faults",
        )
        # The pool-monitor score model's schedule is fully deterministic,
        # so its ejection count exports as a gauge computed up front.
        registry.gauge(
            "repro_faults_monitor_ejections",
            "distinct pool-monitor ejection gaps across all vantages",
        ).set(sum(t.ejections for t in self._timelines.values()))

    # -- vantage rotation ---------------------------------------------------------

    def in_rotation(self, vantage_address: int, when: float) -> bool:
        """True while the pool DNS would still hand the vantage out.

        Pure (uncounted) — this is also the pool's DNS rotation filter,
        queried outside the capture path; the campaign's fault gate goes
        through :meth:`ejects` so only real capture drops are counted.
        """
        timeline = self._timelines.get(vantage_address)
        return timeline is None or timeline.available(when)

    def ejects(self, vantage_address: int, when: float) -> bool:
        """Counted gate form: True when the query must be dropped
        because its chosen vantage is out of the DNS rotation."""
        if self.in_rotation(vantage_address, when):
            return False
        self.decisions["rotation_ejections"] += 1
        self._m_ejected.inc()
        return True

    def availability(self) -> Dict[int, AvailabilityTimeline]:
        """Per-vantage availability timelines (for study reports)."""
        return dict(self._timelines)

    # -- packet loss --------------------------------------------------------------

    def loss_rate(self, country: str) -> float:
        """Loss probability for clients in ``country``."""
        return self._country_loss.get(country, self._base_loss)

    def packet_lost(
        self, country: str, device_id: int, day: int, query_index: int
    ) -> bool:
        """Did this query's datagram drop on the way to the vantage?"""
        rate = self._country_loss.get(country, self._base_loss)
        if rate <= 0.0:
            return False
        lost = (
            keyed_uniform(self.plan.seed, "loss", device_id, day, query_index)
            < rate
        )
        if lost:
            self.decisions["packets_lost"] += 1
            self._m_lost.inc()
        return lost

    # -- corruption ---------------------------------------------------------------

    def corrupts(self, device_id: int, day: int, query_index: int) -> bool:
        """Was this query's datagram mangled in flight?"""
        rate = self.plan.corruption_rate
        if rate <= 0.0:
            return False
        corrupted = (
            keyed_uniform(
                self.plan.seed, "corrupt", device_id, day, query_index
            )
            < rate
        )
        if corrupted:
            self.decisions["corruptions"] += 1
            self._m_corrupted.inc()
        return corrupted

    # -- segment writes -----------------------------------------------------------

    def fails_segment_write(
        self, shard_index: int, start_day: int, sequence: int, attempt: int
    ) -> bool:
        """Does this attempt to seal a segment file fail?

        Keyed by the segment's identity plus the attempt number, so a
        retry draws a fresh decision while replays of the same attempt
        stay deterministic.  The faulted write never lands on disk, so
        corpus contents are unaffected — only the durability path and
        its retry accounting are exercised.
        """
        rate = self.plan.segment_write_failure_rate
        if rate <= 0.0:
            return False
        failed = (
            keyed_uniform(
                self.plan.seed,
                "segwrite",
                shard_index,
                start_day,
                sequence,
                attempt,
            )
            < rate
        )
        if failed:
            self.decisions["segment_write_failures"] += 1
            self._m_segment_write.inc()
        return failed

    def corrupt_bytes(
        self, data: bytes, device_id: int, day: int, query_index: int
    ) -> bytes:
        """The mangled form of a datagram :meth:`corrupts` said to mangle.

        Half of corruptions truncate the datagram (always malformed for
        a 48-byte NTP header), half flip a single bit — which may still
        parse, exactly like real line noise.
        """
        rng = split_rng(
            self.plan.seed, "corrupt-bytes", device_id, day, query_index
        )
        if rng.random() < 0.5:
            return data[: rng.randrange(0, len(data))]
        bit = rng.randrange(len(data) * 8)
        mangled = bytearray(data)
        mangled[bit // 8] ^= 1 << (bit % 8)
        return bytes(mangled)
