"""The fault plan: a frozen, picklable schedule of injected failures.

A :class:`FaultPlan` is pure configuration — it carries its own seed and
the rates of each failure mode, and every concrete fault decision is
derived from keyed hashing over ``(plan.seed, kind, identity...)``.
That gives the two properties the campaign's determinism tests demand:

* the same plan replays byte-identical faults in any process and for
  any shard count (no fault decision depends on iteration order), and
* a zero-rate plan is indistinguishable from no plan at all — campaigns
  take a fast path that never touches the fault code, so corpora stay
  byte-identical to a fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["FaultPlan"]

#: Default monitoring cadence of the score model (the real pool probes
#: each member roughly every 20 minutes).
MONITOR_INTERVAL = 1200.0

#: Default score dynamics, mirroring pool.ntp.org's published behaviour:
#: a reachable sample earns +1 up to a cap of 20, an unreachable sample
#: costs 5, and a member is handed out by the DNS rotation only while
#: its score is at or above 10.
SCORE_CAP = 20.0
JOIN_THRESHOLD = 10.0
REACH_GAIN = 1.0
UNREACH_PENALTY = 5.0


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1]: {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs to schedule faults, as one value.

    Parameters
    ----------
    seed:
        Root of all fault randomness.  Independent of the campaign seed,
        so the same world can be re-run under different fault histories.
    vantage_flap_rate:
        Per-vantage, per-day probability that a reachability incident
        (VPS reboot, network blip) begins that day.
    outage_duration:
        Mean incident length in seconds (drawn exponentially).
    packet_loss:
        Base probability that a captured query's datagram is lost
        before it reaches the vantage.
    country_loss:
        Per-country overrides of ``packet_loss``, as a sorted tuple of
        ``(country, rate)`` pairs (a tuple keeps the plan hashable and
        picklable).
    corruption_rate:
        Probability that a delivered datagram is corrupted in flight
        (truncated or bit-flipped) before the vantage parses it.
    segment_write_failure_rate:
        Probability that one attempt to seal a corpus segment file
        fails (disk hiccup); the segment writer retries with a fresh
        keyed decision, so the durability path is exercised without
        ever changing what the corpus contains.
    monitor_interval / score_cap / join_threshold / reach_gain /
    unreach_penalty:
        The pool-monitor score model (see :mod:`repro.faults.monitor`).
    """

    seed: int = 0
    vantage_flap_rate: float = 0.0
    outage_duration: float = 3600.0
    packet_loss: float = 0.0
    country_loss: Tuple[Tuple[str, float], ...] = ()
    corruption_rate: float = 0.0
    segment_write_failure_rate: float = 0.0
    monitor_interval: float = MONITOR_INTERVAL
    score_cap: float = SCORE_CAP
    join_threshold: float = JOIN_THRESHOLD
    reach_gain: float = REACH_GAIN
    unreach_penalty: float = UNREACH_PENALTY

    def __post_init__(self) -> None:
        _check_rate("vantage_flap_rate", self.vantage_flap_rate)
        _check_rate("packet_loss", self.packet_loss)
        _check_rate("corruption_rate", self.corruption_rate)
        _check_rate(
            "segment_write_failure_rate", self.segment_write_failure_rate
        )
        if self.outage_duration <= 0:
            raise ValueError(
                f"outage_duration must be positive: {self.outage_duration}"
            )
        if self.monitor_interval <= 0:
            raise ValueError(
                f"monitor_interval must be positive: {self.monitor_interval}"
            )
        if self.reach_gain <= 0 or self.unreach_penalty <= 0:
            raise ValueError("score gain and penalty must be positive")
        if not self.join_threshold <= self.score_cap:
            raise ValueError(
                f"join_threshold {self.join_threshold} above score cap "
                f"{self.score_cap}: no vantage could ever join"
            )
        normalized = []
        for country, rate in self.country_loss:
            if len(country) != 2 or not country.isupper():
                raise ValueError(
                    f"country override must be ISO alpha-2: {country!r}"
                )
            _check_rate(f"country_loss[{country}]", rate)
            normalized.append((country, rate))
        # Canonical order so equal plans compare (and pickle) equal.
        object.__setattr__(
            self, "country_loss", tuple(sorted(normalized))
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero-fault plan: campaigns treat it exactly like no plan."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when no failure mode can ever fire."""
        return (
            self.vantage_flap_rate == 0.0
            and self.packet_loss == 0.0
            and self.corruption_rate == 0.0
            and self.segment_write_failure_rate == 0.0
            and all(rate == 0.0 for _, rate in self.country_loss)
        )

    def loss_for(self, country: str) -> float:
        """Packet-loss probability for clients in ``country``."""
        for override, rate in self.country_loss:
            if override == country:
                return rate
        return self.packet_loss

    # -- CLI spec ----------------------------------------------------------------

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Build a plan from a ``key=value,...`` CLI spec.

        Keys: ``seed`` (int), ``flap`` (per-day incident probability),
        ``outage`` (mean seconds), ``loss`` (base loss rate),
        ``loss.CC`` (per-country override), ``corrupt`` (corruption
        rate), ``segfail`` (segment write-failure rate), ``monitor``
        (score-sample interval seconds).  An empty or missing spec is
        the zero plan.  A key given twice is an error (never silent
        last-write-wins), and a malformed value names both the
        offending token and its 1-based position in the spec.

        >>> FaultPlan.parse("flap=0.2,loss=0.05,loss.BR=0.3,seed=9").seed
        9
        """
        if spec is None or not spec.strip():
            return cls.none()
        fields: Dict[str, object] = {}
        overrides = []
        seen: Dict[str, int] = {}
        for position, part in enumerate(spec.split(","), 1):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec item (want key=value): {part!r}"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            canonical = (
                f"loss.{key[len('loss.'):].upper()}"
                if key.startswith("loss.")
                else key
            )
            if canonical in seen:
                raise ValueError(
                    f"duplicate fault spec key {canonical!r} at item "
                    f"{position} (first given at item {seen[canonical]})"
                )
            try:
                if key == "seed":
                    fields["seed"] = int(raw)
                elif key == "flap":
                    fields["vantage_flap_rate"] = float(raw)
                elif key == "outage":
                    fields["outage_duration"] = float(raw)
                elif key == "loss":
                    fields["packet_loss"] = float(raw)
                elif key == "corrupt":
                    fields["corruption_rate"] = float(raw)
                elif key == "segfail":
                    fields["segment_write_failure_rate"] = float(raw)
                elif key == "monitor":
                    fields["monitor_interval"] = float(raw)
                elif key.startswith("loss."):
                    overrides.append((key[len("loss."):].upper(), float(raw)))
                else:
                    raise ValueError(f"unknown fault spec key: {key!r}")
            except ValueError as error:
                # Re-raise structural failures with their own context.
                if "fault spec" in str(error):
                    raise
                raise ValueError(
                    f"bad fault spec value for {key!r} at item "
                    f"{position}: {raw!r}"
                ) from error
            seen[canonical] = position
        if overrides:
            fields["country_loss"] = tuple(overrides)
        return cls(**fields)  # type: ignore[arg-type]

    def spec(self) -> str:
        """The CLI spec that parses back into this plan (non-defaults only)."""
        parts = []
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.vantage_flap_rate:
            parts.append(f"flap={self.vantage_flap_rate}")
        if self.outage_duration != 3600.0:
            parts.append(f"outage={self.outage_duration}")
        if self.packet_loss:
            parts.append(f"loss={self.packet_loss}")
        for country, rate in self.country_loss:
            parts.append(f"loss.{country}={rate}")
        if self.corruption_rate:
            parts.append(f"corrupt={self.corruption_rate}")
        if self.segment_write_failure_rate:
            parts.append(f"segfail={self.segment_write_failure_rate}")
        if self.monitor_interval != MONITOR_INTERVAL:
            parts.append(f"monitor={self.monitor_interval}")
        return ",".join(parts)
