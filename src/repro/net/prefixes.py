"""Binary prefix trie with longest-prefix matching.

The numbering substrate everything else stands on: routing tables
(:mod:`repro.net.routing`), geolocation (:mod:`repro.net.geodb`) and alias
lists all need "which announced prefix covers this address?" answered
quickly.  The trie is generic over the address width, so one implementation
serves both IPv6 (width 128) and IPv4 (width 32 — needed for the paper's
IPv4-embedded-address validation, §4.3).

A linear-scan fallback with the same interface
(:class:`LinearPrefixTable`) exists for the LPM ablation bench
(DESIGN.md §6).
"""

from __future__ import annotations

import ipaddress
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = [
    "Prefix",
    "parse_prefix",
    "parse_ipv4_prefix",
    "PrefixTrie",
    "LinearPrefixTable",
]

V = TypeVar("V")


class Prefix:
    """An immutable ``network/length`` pair with containment tests.

    ``network`` must have all host bits clear; the constructor enforces
    this so two equal prefixes are always structurally identical.
    """

    __slots__ = ("network", "length", "width")

    def __init__(self, network: int, length: int, width: int = 128) -> None:
        if width not in (32, 128):
            raise ValueError(f"unsupported address width: {width}")
        if not 0 <= length <= width:
            raise ValueError(f"prefix length out of range: {length}")
        host_bits = width - length
        if network & ((1 << host_bits) - 1):
            raise ValueError(
                f"host bits set in network {network:#x}/{length}"
            )
        if not 0 <= network < (1 << width):
            raise ValueError(f"network out of range: {network:#x}")
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name, value):
        raise AttributeError("Prefix is immutable")

    def contains(self, address: int) -> bool:
        """True when ``address`` lies inside this prefix."""
        shift = self.width - self.length
        return (address >> shift) == (self.network >> shift)

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this."""
        return other.length >= self.length and self.contains(other.network)

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Enumerate the constituent prefixes of the given longer length.

        This is the CAIDA routed-/48 "split each /32-or-shorter prefix
        into /48s" operation.  Raises for ``length`` shorter than ours.
        """
        if length < self.length:
            raise ValueError(
                f"cannot split /{self.length} into shorter /{length}"
            )
        if length > self.width:
            raise ValueError(f"length exceeds width: {length}")
        step = 1 << (self.width - length)
        count = 1 << (length - self.length)
        for index in range(count):
            yield Prefix(self.network + index * step, length, self.width)

    @property
    def first_address(self) -> int:
        """Numerically lowest address inside the prefix."""
        return self.network

    @property
    def last_address(self) -> int:
        """Numerically highest address inside the prefix."""
        return self.network | ((1 << (self.width - self.length)) - 1)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self.network == other.network
            and self.length == other.length
            and self.width == other.width
        )

    def __lt__(self, other) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length, self.width))

    def __str__(self) -> str:
        if self.width == 128:
            return f"{ipaddress.IPv6Address(self.network)}/{self.length}"
        return f"{ipaddress.IPv4Address(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"


def parse_prefix(text: str) -> Prefix:
    """Parse ``2001:db8::/32`` into an IPv6 :class:`Prefix`."""
    network = ipaddress.IPv6Network(text, strict=True)
    return Prefix(int(network.network_address), network.prefixlen, 128)


def parse_ipv4_prefix(text: str) -> Prefix:
    """Parse ``192.0.2.0/24`` into an IPv4 :class:`Prefix`."""
    network = ipaddress.IPv4Network(text, strict=True)
    return Prefix(int(network.network_address), network.prefixlen, 32)


class _TrieNode:
    __slots__ = ("children", "value", "occupied")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.value = None
        self.occupied = False


class PrefixTrie(Generic[V]):
    """Binary trie mapping prefixes to values with longest-prefix match.

    >>> trie = PrefixTrie()
    >>> trie.insert(parse_prefix("2001:db8::/32"), "doc")
    >>> trie.longest_match(int(ipaddress.IPv6Address("2001:db8::1")))
    (Prefix('2001:db8::/32'), 'doc')
    """

    def __init__(self, width: int = 128) -> None:
        if width not in (32, 128):
            raise ValueError(f"unsupported address width: {width}")
        self._width = width
        self._root = _TrieNode()
        self._size = 0

    @property
    def width(self) -> int:
        """Address width in bits (32 or 128)."""
        return self._width

    def _walk_to(self, prefix: Prefix, create: bool) -> Optional[_TrieNode]:
        if prefix.width != self._width:
            raise ValueError(
                f"prefix width {prefix.width} != trie width {self._width}"
            )
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (self._width - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node

    def insert(self, prefix: Prefix, value: V, replace: bool = True) -> None:
        """Map ``prefix`` to ``value``.

        With ``replace=False`` an already-occupied prefix raises
        ``KeyError`` instead of being overwritten.
        """
        node = self._walk_to(prefix, create=True)
        assert node is not None
        if node.occupied and not replace:
            raise KeyError(f"prefix already present: {prefix}")
        if not node.occupied:
            self._size += 1
        node.occupied = True
        node.value = value

    def exact(self, prefix: Prefix) -> V:
        """Value stored at exactly ``prefix``; raises ``KeyError`` if absent."""
        node = self._walk_to(prefix, create=False)
        if node is None or not node.occupied:
            raise KeyError(f"prefix not present: {prefix}")
        return node.value

    def remove(self, prefix: Prefix) -> V:
        """Remove and return the value at exactly ``prefix``.

        Interior nodes are left in place (removal is rare in our
        workloads); raises ``KeyError`` when the prefix is absent.
        """
        node = self._walk_to(prefix, create=False)
        if node is None or not node.occupied:
            raise KeyError(f"prefix not present: {prefix}")
        value = node.value
        node.occupied = False
        node.value = None
        self._size -= 1
        return value

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Most-specific covering prefix and its value, or ``None``."""
        if not 0 <= address < (1 << self._width):
            raise ValueError(f"address out of range: {address:#x}")
        node = self._root
        best: Optional[Tuple[int, V]] = None
        if node.occupied:
            best = (0, node.value)
        for depth in range(self._width):
            bit = (address >> (self._width - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.occupied:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, value = best
        shift = self._width - length
        network = (address >> shift) << shift
        return Prefix(network, length, self._width), value

    def lookup(self, address: int) -> Optional[V]:
        """Value of the most-specific covering prefix, or ``None``."""
        match = self.longest_match(address)
        return None if match is None else match[1]

    def covering(self, address: int) -> Iterator[Tuple[Prefix, V]]:
        """All stored prefixes covering ``address``, shortest first."""
        if not 0 <= address < (1 << self._width):
            raise ValueError(f"address out of range: {address:#x}")
        node = self._root
        if node.occupied:
            yield Prefix(0, 0, self._width), node.value
        network = 0
        for depth in range(self._width):
            bit = (address >> (self._width - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return
            network = (network << 1) | bit
            if node.occupied:
                length = depth + 1
                yield (
                    Prefix(network << (self._width - length), length, self._width),
                    node.value,
                )

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All stored ``(prefix, value)`` pairs, in address order."""
        stack = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.occupied:
                yield (
                    Prefix(network << (self._width - depth), depth, self._width),
                    node.value,
                )
            # Push right before left so left pops first (address order).
            right = node.children[1]
            if right is not None:
                stack.append((right, (network << 1) | 1, depth + 1))
            left = node.children[0]
            if left is not None:
                stack.append((left, network << 1, depth + 1))

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._walk_to(prefix, create=False)
        return node is not None and node.occupied


class LinearPrefixTable(Generic[V]):
    """Linear-scan prefix table with the same lookup interface.

    Exists purely as the baseline for the LPM ablation bench; correct but
    O(n) per lookup.
    """

    def __init__(self, width: int = 128) -> None:
        self._width = width
        self._entries: List[Tuple[Prefix, V]] = []

    def insert(self, prefix: Prefix, value: V, replace: bool = True) -> None:
        """Append or replace an entry for ``prefix``."""
        if prefix.width != self._width:
            raise ValueError("width mismatch")
        for index, (existing, _) in enumerate(self._entries):
            if existing == prefix:
                if not replace:
                    raise KeyError(f"prefix already present: {prefix}")
                self._entries[index] = (prefix, value)
                return
        self._entries.append((prefix, value))

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Scan all entries, keep the longest that covers ``address``."""
        best: Optional[Tuple[Prefix, V]] = None
        for prefix, value in self._entries:
            if prefix.contains(address):
                if best is None or prefix.length > best[0].length:
                    best = (prefix, value)
        return best

    def lookup(self, address: int) -> Optional[V]:
        """Value of the most-specific covering prefix, or ``None``."""
        match = self.longest_match(address)
        return None if match is None else match[1]

    def __len__(self) -> int:
        return len(self._entries)
