"""Autonomous System records and ASdb-style categorization.

The paper classifies the ASes its addresses originate from using ASdb
(Ziv et al., IMC 2021): a two-level taxonomy of business categories.  The
headline finding (§4.1) is that 14% of the NTP corpus originates from the
"Phone Provider" ISP subtype versus only 2% of the IPv6 Hitlist — i.e. the
passive corpus is much richer in mobile clients.

This module defines the category taxonomy subset the analyses need, the
per-AS record, and a registry with the aggregation queries used by the
Table 1 narrative (AS counts, per-category address tallies).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "ASCategory",
    "ISPSubtype",
    "ASRecord",
    "ASRegistry",
]


class ASCategory(Enum):
    """ASdb layer-1 business categories (subset used by the paper)."""

    COMPUTER_IT = "Computer and Information Technology"
    ISP = "Internet Service Provider (ISP)"
    CONTENT = "Media, Publishing, and Broadcasting"
    EDUCATION = "Education and Research"
    FINANCE = "Finance and Insurance"
    GOVERNMENT = "Government and Public Administration"
    OTHER = "Other"


class ISPSubtype(Enum):
    """ASdb layer-2 subtypes for the ISP category."""

    FIXED_LINE = "Fixed Line ISP"
    PHONE_PROVIDER = "Phone Provider"
    SATELLITE = "Satellite ISP"
    HOSTING = "Hosting and Cloud Provider"
    NONE = "None"


@dataclass(frozen=True)
class ASRecord:
    """One Autonomous System: number, name, home country, business type."""

    asn: int
    name: str
    country: str
    category: ASCategory = ASCategory.ISP
    subtype: ISPSubtype = ISPSubtype.NONE

    def __post_init__(self) -> None:
        if not 0 < self.asn < (1 << 32):
            raise ValueError(f"ASN out of range: {self.asn}")
        if len(self.country) != 2 or not self.country.isupper():
            raise ValueError(
                f"country must be an ISO-3166-1 alpha-2 code: {self.country!r}"
            )

    @property
    def is_phone_provider(self) -> bool:
        """True for the mobile-carrier subtype the paper highlights."""
        return (
            self.category is ASCategory.ISP
            and self.subtype is ISPSubtype.PHONE_PROVIDER
        )


class ASRegistry:
    """Registry of :class:`ASRecord` with the paper's aggregate queries."""

    def __init__(self) -> None:
        self._records: Dict[int, ASRecord] = {}

    def register(self, record: ASRecord) -> None:
        """Add a record; re-registering an ASN is an error."""
        if record.asn in self._records:
            raise ValueError(f"AS{record.asn} already registered")
        self._records[record.asn] = record

    def lookup(self, asn: int) -> Optional[ASRecord]:
        """The record for ``asn``, or ``None``."""
        return self._records.get(asn)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __iter__(self) -> Iterator[ASRecord]:
        return iter(self._records.values())

    def category_of(self, asn: int) -> Optional[ASCategory]:
        """Business category of ``asn``, or ``None`` when unknown."""
        record = self._records.get(asn)
        return None if record is None else record.category

    def category_counts(self, asns: Iterable[int]) -> Counter:
        """Tally occurrences per category over a stream of ASNs.

        Unknown ASNs count under ``None``.  Feed one ASN per *address* to
        reproduce the paper's per-category address fractions.
        """
        counts: Counter = Counter()
        for asn in asns:
            counts[self.category_of(asn)] += 1
        return counts

    def phone_provider_fraction(self, asns: Iterable[int]) -> float:
        """Fraction of a stream of per-address ASNs in Phone Provider ASes.

        The paper reports 14% for the NTP corpus vs 2% for the Hitlist.
        Raises ``ValueError`` on an empty stream.
        """
        total = 0
        phone = 0
        for asn in asns:
            total += 1
            record = self._records.get(asn)
            if record is not None and record.is_phone_provider:
                phone += 1
        if total == 0:
            raise ValueError("cannot compute a fraction of zero addresses")
        return phone / total

    def countries(self) -> Tuple[str, ...]:
        """Distinct home countries across all registered ASes, sorted."""
        return tuple(sorted({record.country for record in self._records.values()}))
