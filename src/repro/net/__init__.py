"""Internet numbering substrate.

Prefix tries and longest-prefix matching (:mod:`repro.net.prefixes`),
AS records with ASdb-style categories (:mod:`repro.net.asn`), routed
prefix tables (:mod:`repro.net.routing`), country-level geolocation
(:mod:`repro.net.geodb`) and the AS-level topology with router-interface
addressing that active tracing discovers (:mod:`repro.net.topology`).
"""

from .asn import ASCategory, ASRecord, ASRegistry, ISPSubtype
from .geodb import GeoDatabase, country_histogram, top_country_share
from .prefixes import (
    LinearPrefixTable,
    Prefix,
    PrefixTrie,
    parse_ipv4_prefix,
    parse_prefix,
)
from .routing import RoutedPrefix, RoutingTable
from .topology import (
    ASTopology,
    RouterAddressPlan,
    preferential_attachment_topology,
)

__all__ = [
    "ASCategory",
    "ASRecord",
    "ASRegistry",
    "ASTopology",
    "GeoDatabase",
    "ISPSubtype",
    "LinearPrefixTable",
    "Prefix",
    "PrefixTrie",
    "RoutedPrefix",
    "RouterAddressPlan",
    "RoutingTable",
    "country_histogram",
    "parse_ipv4_prefix",
    "parse_prefix",
    "preferential_attachment_topology",
    "top_country_share",
]
