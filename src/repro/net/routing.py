"""Routed-prefix tables: address → origin AS.

Two tables back every origin lookup in the reproduction: an IPv6 table
(which announced prefix covers this address, and which AS originates it)
and an IPv4 table (needed only to validate IPv4-embedded IIDs, §4.3).
Both are thin, typed layers over :class:`repro.net.prefixes.PrefixTrie`.

The IPv6 table also exposes the routed-prefix enumeration the CAIDA
routed-/48 campaign starts from.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .prefixes import Prefix, PrefixTrie

__all__ = ["RoutingTable", "RoutedPrefix"]


class RoutedPrefix:
    """One announcement: a prefix and the AS that originates it."""

    __slots__ = ("prefix", "asn")

    def __init__(self, prefix: Prefix, asn: int) -> None:
        if not 0 < asn < (1 << 32):
            raise ValueError(f"ASN out of range: {asn}")
        self.prefix = prefix
        self.asn = asn

    def __eq__(self, other) -> bool:
        if not isinstance(other, RoutedPrefix):
            return NotImplemented
        return self.prefix == other.prefix and self.asn == other.asn

    def __hash__(self) -> int:
        return hash((self.prefix, self.asn))

    def __repr__(self) -> str:
        return f"RoutedPrefix({self.prefix}, AS{self.asn})"


class RoutingTable:
    """Longest-prefix-match table from addresses to origin ASNs.

    >>> table = RoutingTable()
    >>> from repro.net.prefixes import parse_prefix
    >>> table.announce(parse_prefix("2001:db8::/32"), 64496)
    >>> table.origin_asn(int(ipaddress.IPv6Address("2001:db8::1")))
    64496
    """

    def __init__(self, width: int = 128) -> None:
        self._trie: PrefixTrie[int] = PrefixTrie(width)
        # Keyed by prefix so re-announcement is O(1) instead of a full
        # rebuild of the announcement list; insertion order is the
        # announcement order the routed-/48 enumeration relies on.
        self._announcements: Dict[Prefix, RoutedPrefix] = {}

    @property
    def width(self) -> int:
        """Address width (128 for IPv6, 32 for IPv4)."""
        return self._trie.width

    def announce(self, prefix: Prefix, asn: int) -> None:
        """Install an origin announcement for ``prefix``.

        More- and less-specific announcements may coexist; lookups return
        the most specific.  Re-announcing the exact prefix from a
        different AS replaces the previous origin (as a newer BGP update
        would).
        """
        routed = RoutedPrefix(prefix, asn)  # validates the ASN range
        self._trie.insert(prefix, asn)
        # A re-announcement moves the prefix to the end of the
        # announcement order, as the previous list-rebuild did.
        if prefix in self._announcements:
            del self._announcements[prefix]
        self._announcements[prefix] = routed

    def origin_asn(self, address: int) -> Optional[int]:
        """Origin AS of the most specific covering prefix, or ``None``."""
        return self._trie.lookup(address)

    def covering_prefix(self, address: int) -> Optional[Prefix]:
        """The most specific announced prefix covering ``address``."""
        match = self._trie.longest_match(address)
        return None if match is None else match[0]

    def is_routed(self, address: int) -> bool:
        """True when some announcement covers ``address``."""
        return self._trie.lookup(address) is not None

    def routed_prefixes(self) -> Iterator[RoutedPrefix]:
        """All announcements in announcement order.

        This is the seed list for the CAIDA routed-/48 splitting step.
        """
        return iter(list(self._announcements.values()))

    def prefixes_of(self, asn: int) -> List[Prefix]:
        """All prefixes currently originated by ``asn``."""
        return [
            routed.prefix
            for routed in self._announcements.values()
            if routed.asn == asn
        ]

    def items(self) -> Iterator[Tuple[Prefix, int]]:
        """All ``(prefix, asn)`` pairs in address order."""
        return self._trie.items()

    def __len__(self) -> int:
        return len(self._trie)
