"""AS-level topology with router-interface addressing.

Active topology discovery (Yarrp, the CAIDA campaign, the Hitlist's
traceroute component) observes *router interface addresses* along
AS-level forwarding paths.  This module models:

* :class:`ASTopology` — an undirected AS graph with deterministic
  shortest-path forwarding (BFS with sorted-neighbor tie-breaking, parent
  maps cached per source, since measurement campaigns trace from a small
  set of vantage ASes to many targets);
* :class:`RouterAddressPlan` — the infrastructure addressing plan: each
  AS owns an infrastructure /48 from which one /64 per inter-AS link is
  carved, with operator-style low-byte IIDs (``::1``) — which is why
  traceroute-derived datasets skew so heavily toward low-entropy
  addresses (paper Fig. 1, CAIDA curve);
* :func:`preferential_attachment_topology` — a deterministic scale-free
  graph generator for the world model.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .prefixes import Prefix

__all__ = [
    "ASTopology",
    "RouterAddressPlan",
    "preferential_attachment_topology",
]


class ASTopology:
    """Undirected AS-level graph with deterministic shortest paths."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, List[int]] = {}
        self._parent_cache: Dict[int, Dict[int, Optional[int]]] = {}

    def add_as(self, asn: int) -> None:
        """Add an AS with no links (idempotent)."""
        if asn not in self._adjacency:
            self._adjacency[asn] = []
            self._parent_cache.clear()

    def add_link(self, a: int, b: int) -> None:
        """Add an undirected link between two ASes (idempotent)."""
        if a == b:
            raise ValueError(f"self-link on AS{a}")
        self.add_as(a)
        self.add_as(b)
        if b not in self._adjacency[a]:
            self._adjacency[a].append(b)
            self._adjacency[a].sort()
            self._adjacency[b].append(a)
            self._adjacency[b].sort()
            self._parent_cache.clear()

    def neighbors(self, asn: int) -> Tuple[int, ...]:
        """Sorted neighbor ASNs of ``asn``."""
        return tuple(self._adjacency.get(asn, ()))

    def ases(self) -> Tuple[int, ...]:
        """All ASNs in insertion order."""
        return tuple(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, asn: int) -> bool:
        return asn in self._adjacency

    def _parents_from(self, source: int) -> Dict[int, Optional[int]]:
        cached = self._parent_cache.get(source)
        if cached is not None:
            return cached
        if source not in self._adjacency:
            raise KeyError(f"unknown AS{source}")
        parents: Dict[int, Optional[int]] = {source: None}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for asn in frontier:
                for neighbor in self._adjacency[asn]:
                    if neighbor not in parents:
                        parents[neighbor] = asn
                        next_frontier.append(neighbor)
            frontier = next_frontier
        self._parent_cache[source] = parents
        return parents

    def path(self, source: int, destination: int) -> Optional[List[int]]:
        """Shortest AS path from ``source`` to ``destination``, inclusive.

        Deterministic: neighbor lists are kept sorted so BFS tie-breaking
        is stable.  Returns ``None`` when the ASes are disconnected.
        """
        if destination not in self._adjacency:
            raise KeyError(f"unknown AS{destination}")
        parents = self._parents_from(source)
        if destination not in parents:
            return None
        path = [destination]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def distance(self, source: int, destination: int) -> Optional[int]:
        """Hop count between two ASes, or ``None`` when disconnected."""
        path = self.path(source, destination)
        return None if path is None else len(path) - 1

    def is_connected(self) -> bool:
        """True when every AS is reachable from the first-added AS."""
        if not self._adjacency:
            return True
        source = next(iter(self._adjacency))
        return len(self._parents_from(source)) == len(self._adjacency)


class RouterAddressPlan:
    """Deterministic router-interface addressing over an AS topology.

    Each AS contributes an *infrastructure /48*; link ``k`` (in sorted
    neighbor order) of that AS gets the ``k``-th /64 of the /48, and the
    router interface facing the neighbor takes the operator-memorable IID
    ``::1`` — the "Low Byte" pattern that dominates traceroute-derived
    hitlists (paper §4.3).
    """

    def __init__(
        self, topology: ASTopology, infra_prefixes: Dict[int, Prefix]
    ) -> None:
        for asn, prefix in infra_prefixes.items():
            if prefix.length > 48:
                raise ValueError(
                    f"infrastructure prefix of AS{asn} longer than /48: {prefix}"
                )
        self._topology = topology
        self._infra = infra_prefixes

    def interface_address(self, asn: int, neighbor: int) -> Optional[int]:
        """Address of ``asn``'s router interface facing ``neighbor``.

        ``None`` when the AS has no infrastructure prefix (stub networks
        whose border router is numbered by their provider).
        """
        prefix = self._infra.get(asn)
        if prefix is None:
            return None
        neighbors = self._topology.neighbors(asn)
        try:
            link_index = neighbors.index(neighbor)
        except ValueError:
            raise KeyError(f"AS{asn} has no link to AS{neighbor}") from None
        # k-th /64 of the infrastructure /48, IID ::1.
        return prefix.network | (link_index << 64) | 1

    def hop_addresses(self, path: Sequence[int]) -> List[Optional[int]]:
        """Router addresses revealed by tracing along an AS path.

        Hop ``i`` (for ``i >= 1``) is the ingress interface of AS
        ``path[i]``, i.e. the interface facing ``path[i-1]`` — matching
        which source address a real router would use in its ICMPv6
        Time-Exceeded reply.  The first AS (the vantage itself) emits no
        hop.  Entries are ``None`` for ASes without infrastructure space.
        """
        addresses: List[Optional[int]] = []
        for previous, current in zip(path, path[1:]):
            addresses.append(self.interface_address(current, previous))
        return addresses

    def all_interface_addresses(self) -> Dict[int, List[int]]:
        """Every planned interface address, grouped by owning AS."""
        result: Dict[int, List[int]] = {}
        for asn in self._topology.ases():
            addresses = []
            for neighbor in self._topology.neighbors(asn):
                address = self.interface_address(asn, neighbor)
                if address is not None:
                    addresses.append(address)
            if addresses:
                result[asn] = addresses
        return result


def preferential_attachment_topology(
    asns: Sequence[int], rng: random.Random, links_per_as: int = 2
) -> ASTopology:
    """Grow a scale-free AS graph by preferential attachment.

    The first ``links_per_as + 1`` ASes form a clique; each subsequent AS
    attaches to ``links_per_as`` distinct existing ASes chosen with
    probability proportional to their current degree.  Deterministic for
    a given ``rng`` state and input order.  The result is connected,
    which BFS-based tracing relies on.
    """
    if links_per_as < 1:
        raise ValueError("links_per_as must be >= 1")
    if len(set(asns)) != len(asns):
        raise ValueError("duplicate ASNs")
    topology = ASTopology()
    if not asns:
        return topology
    seed_count = min(len(asns), links_per_as + 1)
    for asn in asns[:seed_count]:
        topology.add_as(asn)
    for i in range(seed_count):
        for j in range(i + 1, seed_count):
            topology.add_link(asns[i], asns[j])
    # Degree-weighted endpoint pool (classic Barabási–Albert trick).
    endpoint_pool: List[int] = []
    for asn in asns[:seed_count]:
        endpoint_pool.extend([asn] * max(1, len(topology.neighbors(asn))))
    for asn in asns[seed_count:]:
        targets: set = set()
        while len(targets) < min(links_per_as, len(topology)):
            targets.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for target in sorted(targets):
            topology.add_link(asn, target)
            endpoint_pool.append(target)
            endpoint_pool.append(asn)
    return topology
