"""Prefix-based IP geolocation (MaxMind GeoLite2 stand-in).

The paper geolocates NTP client addresses with MaxMind's GeoLite2 City
database but, wary of fine-grained IP geolocation accuracy in IPv6, only
uses the *country* field in aggregate (§3).  We therefore model the
database as a longest-prefix-match table from prefixes to ISO-3166-1
alpha-2 country codes, which is exactly the granularity the analyses
consume.

The country histogram helper reproduces the §3 narrative numbers (top-5
countries contribute 76% of the corpus).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Tuple

from .prefixes import Prefix, PrefixTrie

__all__ = ["GeoDatabase", "country_histogram", "top_country_share"]


class GeoDatabase:
    """Longest-prefix-match geolocation database.

    >>> db = GeoDatabase()
    >>> from repro.net.prefixes import parse_prefix
    >>> db.add(parse_prefix("2001:db8::/32"), "DE")
    >>> db.country(int(ipaddress.IPv6Address("2001:db8::1")))
    'DE'
    """

    def __init__(self, width: int = 128) -> None:
        self._trie: PrefixTrie[str] = PrefixTrie(width)

    def add(self, prefix: Prefix, country: str) -> None:
        """Map a prefix to a two-letter country code."""
        if len(country) != 2 or not country.isupper():
            raise ValueError(
                f"country must be an ISO-3166-1 alpha-2 code: {country!r}"
            )
        self._trie.insert(prefix, country)

    def country(self, address: int) -> Optional[str]:
        """Country of the most specific covering prefix, or ``None``."""
        return self._trie.lookup(address)

    def __len__(self) -> int:
        return len(self._trie)


def country_histogram(
    addresses: Iterable[int], database: GeoDatabase
) -> Counter:
    """Tally addresses per country; unlocatable addresses count under None."""
    counts: Counter = Counter()
    for address in addresses:
        counts[database.country(address)] += 1
    return counts


def top_country_share(
    histogram: Counter, top: int = 5
) -> Tuple[List[Tuple[str, int]], float]:
    """Top countries and their combined share of located addresses.

    Returns ``(ranked, share)`` where ``ranked`` is the top-``top`` list of
    ``(country, count)`` over *located* addresses (``None`` excluded) and
    ``share`` is their combined fraction.  The paper reports the top five
    countries (IN, CN, US, BR, ID) jointly holding 76% of its corpus.
    """
    located = {
        country: count
        for country, count in histogram.items()
        if country is not None
    }
    total = sum(located.values())
    if total == 0:
        raise ValueError("no locatable addresses in histogram")
    ranked = Counter(located).most_common(top)
    share = sum(count for _, count in ranked) / total
    return ranked, share
