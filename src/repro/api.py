"""The stable, minimal facade over the study pipeline.

Everything a typical consumer needs lives behind four names::

    from repro.api import Study, open_corpus, release

    results = Study(seed=7).run()
    print(len(results.ntp), "passively observed addresses")

    corpus = open_corpus("campaign.bin")       # file or segment directory
    artifact = release(corpus)                 # ethics-aware /48 release

The facade is deliberately small and keyword-validated: it wraps
:class:`repro.core.StudyConfig` / :func:`repro.core.run_study` /
:func:`repro.core.load_corpus` / :func:`repro.core.build_release`
without exposing their full surface, so downstream scripts keep working
as the internals evolve (the consolidation of execution options into
:class:`repro.core.ExecutionOptions` is invisible here).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Tuple, Union

from .core import (
    AddressCorpus,
    CachedOrigins,
    ExecutionOptions,
    ReleaseArtifact,
    SegmentedCorpusReader,
    StudyConfig,
    StudyResults,
    build_release,
    load_corpus,
    run_study,
    verify_release_safety,
)
from .core.segments import MANIFEST_NAME
from .world import CAMPAIGN_EPOCH, WorldConfig, build_world
from .world.world import World

__all__ = ["Study", "connect", "open_corpus", "release", "sweep"]


class Study:
    """One full study — world, campaigns, analyses — as a single object.

    All parameters are keyword-only and validated up front::

        Study(seed=7).run()                          # defaults throughout
        Study(seed=7, weeks=12,
              execution=ExecutionOptions(workers=4,
                                         segment_dir="segments")).run()

    ``world`` (a prebuilt :class:`~repro.world.world.World`) and
    ``world_config`` (a :class:`~repro.world.WorldConfig` to build one
    from) are mutually exclusive; with neither, a default world is
    built from ``seed``, so equal seeds reproduce equal studies.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        weeks: int = 31,
        start: float = CAMPAIGN_EPOCH,
        world: Optional[World] = None,
        world_config: Optional[WorldConfig] = None,
        execution: Optional[ExecutionOptions] = None,
    ) -> None:
        if world is not None and world_config is not None:
            raise TypeError(
                "pass either world= or world_config=, not both"
            )
        if world is not None and not isinstance(world, World):
            raise TypeError(
                f"world must be a World, not {type(world).__name__}"
            )
        if world_config is not None and not isinstance(
            world_config, WorldConfig
        ):
            raise TypeError(
                f"world_config must be a WorldConfig, "
                f"not {type(world_config).__name__}"
            )
        if execution is not None and not isinstance(
            execution, ExecutionOptions
        ):
            raise TypeError(
                f"execution must be ExecutionOptions, "
                f"not {type(execution).__name__}"
            )
        self.seed = seed
        self.weeks = weeks
        self.start = start
        self._world = world
        self._world_config = world_config
        self.execution = execution
        # StudyConfig validates weeks/execution consistency eagerly, so
        # a bad Study fails at construction, not minutes into run().
        self._config = StudyConfig(
            start=start, weeks=weeks, seed=seed, execution=execution
        )

    @property
    def config(self) -> StudyConfig:
        """The underlying :class:`StudyConfig` (read-only view)."""
        return self._config

    def world(self) -> World:
        """The study's world, building (and caching) it on first use."""
        if self._world is None:
            config = self._world_config or WorldConfig(seed=self.seed)
            self._world = build_world(config)
        return self._world

    def run(self) -> StudyResults:
        """Run all campaigns and analyses; returns :class:`StudyResults`."""
        return run_study(self.world(), self._config)

    def __repr__(self) -> str:
        return (
            f"Study(seed={self.seed}, weeks={self.weeks}, "
            f"execution={self.execution!r})"
        )


def open_corpus(
    path: Union[str, Path],
    *,
    indexed: bool = False,
    metrics=None,
) -> AddressCorpus:
    """Load a corpus from a file *or* a segment directory.

    Accepts every on-disk corpus shape the pipeline produces: a text or
    binary corpus file (suffix-detected, as :func:`repro.core.load_corpus`),
    a segment directory, or that directory's ``MANIFEST.json`` — segment
    stores are folded to one in-memory corpus, bit-identical to the
    campaign that wrote them.  For memory-bounded streaming over a large
    store, use :class:`repro.core.SegmentedCorpusReader` directly.

    With ``indexed=True`` the corpus comes back with a columnar
    :class:`~repro.core.CorpusIndex` attached.  For a segment
    directory this is the incremental path: the index is folded from
    the seal-time partial indexes and the corpus reconstructed from its
    columns, re-reading **zero** sealed segment files when the partials
    are intact (``metrics``, an optional
    :class:`~repro.obs.MetricsRegistry`, counts the reuse on
    ``repro_index_segments_reused_total``).
    """
    path = Path(path)
    if path.name == MANIFEST_NAME:
        path = path.parent
    if path.is_dir():
        reader = SegmentedCorpusReader.open(path, metrics=metrics)
        if indexed:
            return reader.load_indexed()
        return reader.load()
    corpus = load_corpus(path)
    if indexed:
        corpus.build_index(metrics=metrics)
    return corpus


def sweep(
    spec,
    directory: Union[str, Path],
    *,
    resume: bool = False,
    matrix_workers: int = 1,
    cell_timeout: Optional[float] = None,
    max_cell_retries: int = 1,
    metrics=None,
):
    """Run (or resume) a declarative scenario sweep.

    ``spec`` is a :class:`~repro.matrix.MatrixSpec`, a plain dict in
    the same shape (axes ``presets``/``overrides``/``faults``/
    ``weeks``/``workers``/``seeds``), or a path to a JSON spec file.
    Cells run isolated in their own processes under ``directory``;
    infeasible cells are rejected before any compute, failed or hung
    cells are retried then recorded without sinking the sweep, and the
    atomically-maintained ``MATRIX.json`` makes ``resume=True``
    re-run only what a previous (possibly crashed) sweep left
    incomplete.  Returns :class:`~repro.matrix.MatrixResults`.
    """
    from .matrix import MatrixSpec, run_matrix

    if isinstance(spec, dict):
        spec = MatrixSpec.from_json(spec)
    elif isinstance(spec, (str, Path)):
        spec = MatrixSpec.from_file(spec)
    elif not isinstance(spec, MatrixSpec):
        raise TypeError(
            f"spec must be a MatrixSpec, dict or path, "
            f"not {type(spec).__name__}"
        )
    return run_matrix(
        spec,
        directory,
        resume=resume,
        matrix_workers=matrix_workers,
        cell_timeout=cell_timeout,
        max_cell_retries=max_cell_retries,
        metrics=metrics,
    )


#: ``host:port`` (or ``[v6-literal]:port``) — the remote connect shape.
_HOST_PORT = re.compile(
    r"^(?P<host>\[[0-9A-Fa-f:.]+\]|[^/\\\[\]:]+):(?P<port>\d{1,5})$"
)


def _parse_repro_url(
    target: str, protocol: Optional[str]
) -> Tuple[str, int, Optional[str]]:
    """Split ``repro://host:port[?protocol=...]`` into connect args."""
    from urllib.parse import parse_qs, urlsplit

    parts = urlsplit(target)
    if parts.path or parts.fragment or parts.username or parts.password:
        raise ValueError(f"malformed repro:// URL: {target!r}")
    host, port = parts.hostname, parts.port
    if not host or port is None:
        raise ValueError(
            f"repro:// URL must name host and port: {target!r}"
        )
    query = parse_qs(parts.query, keep_blank_values=True)
    unknown = sorted(set(query) - {"protocol"})
    if unknown:
        raise ValueError(
            f"unknown repro:// URL parameter(s): {', '.join(unknown)}"
        )
    url_protocol = query.get("protocol", [None])[-1]
    if url_protocol is not None:
        if protocol is not None and protocol != url_protocol:
            raise ValueError(
                f"protocol={protocol!r} conflicts with the URL's "
                f"?protocol={url_protocol}"
            )
        protocol = url_protocol
    return host, port, protocol


async def connect(
    target: Union[str, Path],
    *,
    routing=None,
    metrics=None,
    rebuild: bool = False,
    coalesce: bool = True,
    reload_interval: Optional[float] = None,
    protocol: Optional[str] = None,
    max_frame_bytes: Optional[int] = None,
):
    """Connect to a hitlist service; returns an async query client.

    ``target`` is either a segment directory (or its ``MANIFEST.json``
    or ``SERVING.rsi``) — served **in-process**, opening the mmap-backed
    serving index via
    :func:`~repro.serve.ensure_serving_index` (built or rebuilt on
    demand, with an LPM origin table when ``routing`` is given) — or a
    running ``repro serve`` instance, named as ``host:port`` or a
    ``repro://host:port`` URL.  Both clients expose the same awaitable
    surface (``record``/``origin``/
    ``lifetime``/``entropy``/``features``/``contains``/``in_slash48``/
    ``in_slash64``, each with a ``_batch`` variant, plus ``stats``)::

        client = await connect("segments/")
        asn = await client.origin(address)

        client = await connect("127.0.0.1:8464")
        lifetimes = await client.lifetime_batch(addresses)

        client = await connect("repro://127.0.0.1:8464?protocol=json")

    Local serving never reads sealed ``.seg`` payloads — queries are
    answered entirely from ``SERVING.rsi`` and the manifest.

    Remote targets negotiate the wire protocol per connection.
    ``protocol`` (kwarg, or the URL's ``?protocol=``) is ``"binary"``
    (the default: request the RSB1 framed protocol, falling back to
    JSON lines when the server declines) or ``"json"`` (skip
    negotiation entirely); the granted protocol is readable as
    ``client.protocol``.  ``max_frame_bytes`` bounds how large a frame
    or reply line the client will send or accept.  Both knobs are
    remote-only — local targets reject them.

    ``reload_interval`` (local targets only, seconds) keeps the client
    live: a watcher polls the store's ``MANIFEST.json`` fingerprint and
    hot-swaps the serving index when commits or compactions change it
    — the same machinery ``repro serve --reload-interval`` uses.  The
    watcher dies with :meth:`LocalHitlistClient.aclose`.
    """
    import asyncio

    from .serve import (
        CoalescingEngine,
        DEFAULT_ORIGIN_CACHE_SLASH64S,
        IndexReloader,
        LocalHitlistClient,
        RemoteHitlistClient,
        ensure_serving_index,
    )
    from .serve.wire import PROTOCOL_BINARY

    if isinstance(target, str):
        host = port = None
        if target.startswith("repro://"):
            host, port, protocol = _parse_repro_url(target, protocol)
        else:
            match = _HOST_PORT.match(target)
            if match is not None and not Path(target).exists():
                host = match.group("host").strip("[]")
                port = int(match.group("port"))
        if host is not None:
            kwargs = {"protocol": protocol or PROTOCOL_BINARY}
            if max_frame_bytes is not None:
                kwargs["max_frame_bytes"] = max_frame_bytes
            return await RemoteHitlistClient.connect(
                host, port, **kwargs
            )
    if protocol is not None or max_frame_bytes is not None:
        raise ValueError(
            "protocol= and max_frame_bytes= only apply to remote "
            "host:port / repro:// targets, not local segment "
            f"directories: {str(target)!r}"
        )
    index = ensure_serving_index(
        target, routing=routing, metrics=metrics, rebuild=rebuild
    )
    origin_resolver = None
    if routing is not None and not index.has_origin_table:
        # Unreachable via ensure (it rebuilds with a table), but keeps
        # the engine honest if handed a prebuilt table-less index.
        origin_resolver = CachedOrigins.from_routing_table(
            routing, max_slash64s=DEFAULT_ORIGIN_CACHE_SLASH64S
        )  # pragma: no cover
    engine = CoalescingEngine(
        index,
        metrics=metrics,
        origin_resolver=origin_resolver,
        coalesce=coalesce,
    )
    watcher = None
    if reload_interval is not None and reload_interval > 0:
        reloader = IndexReloader(
            engine,
            target,
            routing=routing,
            metrics=metrics,
            interval=reload_interval,
        )
        watcher = asyncio.ensure_future(reloader.run())
    return LocalHitlistClient(engine, watcher=watcher)


def release(
    corpus: Union[AddressCorpus, str, Path], *, verify: bool = True
) -> ReleaseArtifact:
    """Build the ethics-aware /48 release of a corpus (or corpus path).

    With ``verify=True`` (the default) the artifact is audited for
    identifier leakage and a :class:`ValueError` names every violation —
    a release that returns is safe to publish.
    """
    if not isinstance(corpus, AddressCorpus):
        corpus = open_corpus(corpus)
    artifact = build_release(corpus)
    if verify:
        violations = verify_release_safety(artifact)
        if violations:
            raise ValueError(
                "release failed its safety audit: " + "; ".join(violations)
            )
    return artifact
