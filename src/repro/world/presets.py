"""World scale presets.

Tests, examples, benches and the CLI all need worlds at a few standard
sizes; these presets centralize the numbers so "a small world" means the
same thing everywhere.

=========  ========  ==========  ========  =========
preset     ASes      networks    devices   build+study time
=========  ========  ==========  ========  =========
tiny       ~16       ~150        ~350      seconds
small      ~32       ~650        ~1.5k     tens of seconds
medium     ~46       ~2.2k       ~4.8k     1–2 minutes
large      ~66       ~5.5k       ~12k      several minutes
=========  ========  ==========  ========  =========
"""

from __future__ import annotations

from typing import Dict, Tuple

from .population import WorldConfig

__all__ = ["PRESETS", "preset_config", "preset_names"]

#: (fixed ASes, cellular ASes, hosting ASes, home networks,
#:  cellular subscribers, hosting networks)
PRESETS: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "tiny": (8, 4, 4, 80, 40, 10),
    "small": (20, 6, 6, 400, 200, 30),
    "medium": (30, 8, 8, 1500, 600, 60),
    "large": (45, 10, 10, 4000, 1500, 120),
}


def preset_names() -> Tuple[str, ...]:
    """Available preset names, smallest first."""
    return tuple(PRESETS)


def preset_config(name: str, seed: int = 7, **overrides) -> WorldConfig:
    """A :class:`WorldConfig` for a named preset.

    Extra keyword arguments override any :class:`WorldConfig` field
    (e.g. ``outage_as_count=2``).
    """
    try:
        fixed, cellular, hosting, homes, subscribers, farms = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    fields = dict(
        seed=seed,
        n_fixed_ases=fixed,
        n_cellular_ases=cellular,
        n_hosting_ases=hosting,
        n_home_networks=homes,
        n_cellular_subscribers=subscribers,
        n_hosting_networks=farms,
    )
    fields.update(overrides)
    return WorldConfig(**fields)
