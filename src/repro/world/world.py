"""The assembled world: state, address resolution, and the probe oracle.

:class:`World` is the single object experiments interact with.  It owns
the AS profiles, networks, devices and databases the builder produced and
answers the two questions every measurement campaign asks:

* *"Where is device D and what address does it hold at time T?"* —
  :meth:`World.device_address`;
* *"Does address A respond to a probe at time T, and who answers?"* —
  :meth:`World.probe`, the oracle behind ZMap6/Yarrp/backscanning.

Probe semantics (paper §4.2): router interfaces respond; aliased provider
space responds to *everything*; customer devices respond when they
currently hold the probed address and either are infrastructure (CPE,
servers) or sit in a non-firewalled network.  A device that rotated away
from an address between observation and probe no longer answers — the
churn effect the paper cites for backscan misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..addr.oui_db import OUIDatabase
from ..geo.bssid_db import BSSIDDatabase
from ..net.asn import ASRegistry
from ..net.geodb import GeoDatabase
from ..net.routing import RoutingTable
from ..net.topology import ASTopology, RouterAddressPlan
from .ases import ASProfile
from .devices import Device
from .networks import CustomerNetwork

__all__ = ["ResponderKind", "ProbeResponse", "VantagePoint", "World"]


class ResponderKind(Enum):
    """What kind of entity answered a probe."""

    DEVICE = "device"
    ROUTER = "router"
    ALIAS = "alias"


@dataclass(frozen=True)
class ProbeResponse:
    """A positive probe result."""

    kind: ResponderKind
    asn: int
    device: Optional[Device] = None


@dataclass(frozen=True)
class VantagePoint:
    """One of the campaign's NTP server VPSes."""

    address: int
    country: str
    asn: int


class World:
    """The fully wired simulated IPv6 Internet."""

    def __init__(
        self,
        config,
        registry: ASRegistry,
        profiles: Dict[int, ASProfile],
        routing: RoutingTable,
        routing4: RoutingTable,
        geodb: GeoDatabase,
        topology: ASTopology,
        router_plan: RouterAddressPlan,
        oui_db: OUIDatabase,
        bssid_db: BSSIDDatabase,
    ) -> None:
        self.config = config
        self.registry = registry
        self.profiles = profiles
        self.routing = routing
        self.routing4 = routing4
        self.geodb = geodb
        self.topology = topology
        self.router_plan = router_plan
        self.oui_db = oui_db
        self.bssid_db = bssid_db
        self.networks: Dict[int, CustomerNetwork] = {}
        self.devices: Dict[int, Device] = {}
        self.vantages: List[VantagePoint] = []
        self.reused_macs: Set[int] = set()
        #: Injected whole-AS outage windows: asn -> [(start, end), ...].
        self.outages: Dict[int, List[Tuple[float, float]]] = {}
        self._next_network_id = 1
        self._by_slot: Dict[int, Dict[Tuple[int, bool], CustomerNetwork]] = {}
        self._router_addresses: Optional[Set[int]] = None
        self._pool_clients: Optional[List[Device]] = None

    # -- construction helpers (used by the builder) ---------------------------

    def add_network(
        self,
        profile: ASProfile,
        customer_index: int,
        rotating: bool,
        firewalled: bool,
    ) -> CustomerNetwork:
        """Create and register a customer network."""
        slot_map = self._by_slot.setdefault(profile.asn, {})
        key = (customer_index, rotating)
        if key in slot_map:
            raise ValueError(
                f"customer slot {key} of AS{profile.asn} already allocated"
            )
        network = CustomerNetwork(
            network_id=self._next_network_id,
            profile=profile,
            customer_index=customer_index,
            rotating=rotating,
            firewalled=firewalled,
        )
        self._next_network_id += 1
        self.networks[network.network_id] = network
        slot_map[key] = network
        return network

    def add_device(self, device: Device) -> None:
        """Register a device (networks hold the membership)."""
        if device.device_id in self.devices:
            raise ValueError(f"device {device.device_id} already registered")
        self.devices[device.device_id] = device
        self._pool_clients = None

    def used_customer_indices(self, asn: int) -> Set[Tuple[int, bool]]:
        """Allocated ``(customer_index, rotating)`` slots of an AS."""
        return set(self._by_slot.get(asn, ()))

    # -- address resolution ----------------------------------------------------

    def device_network(self, device: Device, when: float) -> CustomerNetwork:
        """The network a device is attached to at ``when``."""
        network_id = device.current_network_id(when)
        if network_id is None:
            raise ValueError(f"device {device.device_id} has no home network")
        return self.networks[network_id]

    def device_address(self, device: Device, when: float) -> int:
        """The device's full 128-bit address at ``when``."""
        network = self.device_network(device, when)
        return network.device_address(device, when)

    def ipv6_origin_asn(self, address: int) -> Optional[int]:
        """Origin AS of an IPv6 address."""
        return self.routing.origin_asn(address)

    def ipv4_origin_asn(self, address: int) -> Optional[int]:
        """Origin AS of an IPv4 address (for embedded-IPv4 validation)."""
        return self.routing4.origin_asn(address)

    def country_of(self, address: int) -> Optional[str]:
        """Geolocated country of an address."""
        return self.geodb.country(address)

    # -- the probe oracle --------------------------------------------------------

    @property
    def router_addresses(self) -> Set[int]:
        """All planned router interface addresses (lazily computed)."""
        if self._router_addresses is None:
            self._router_addresses = {
                address
                for addresses in self.router_plan.all_interface_addresses().values()
                for address in addresses
            }
        return self._router_addresses

    def in_outage(self, asn: Optional[int], when: float) -> bool:
        """True when the AS is inside an injected outage window."""
        if asn is None:
            return False
        for start, end in self.outages.get(asn, ()):
            if start <= when < end:
                return True
        return False

    def probe(self, address: int, when: float) -> Optional[ProbeResponse]:
        """ICMPv6-probe an address; returns the responder, or ``None``."""
        asn = self.routing.origin_asn(address)
        if asn is None:
            return None
        profile = self.profiles.get(asn)
        if profile is None:
            return None
        if self.in_outage(asn, when):
            return None
        if (
            profile.infra_prefix is not None
            and profile.infra_prefix.contains(address)
        ):
            if address in self.router_addresses:
                return ProbeResponse(kind=ResponderKind.ROUTER, asn=asn)
            return None
        if not profile.customer_block.contains(address):
            return None
        if profile.aliased:
            return ProbeResponse(kind=ResponderKind.ALIAS, asn=asn)
        located = profile.delegation.locate(address, when)
        if located is None:
            return None
        network = self._by_slot.get(asn, {}).get(located)
        if network is None:
            return None
        device = network.holder_of(address, when)
        if device is None:
            return None
        if device.device_type.is_infrastructure or not network.firewalled:
            return ProbeResponse(
                kind=ResponderKind.DEVICE, asn=asn, device=device
            )
        return None

    def is_responsive(self, address: int, when: float) -> bool:
        """Convenience wrapper over :meth:`probe`."""
        return self.probe(address, when) is not None

    # -- population views ---------------------------------------------------------

    def pool_client_devices(self) -> List[Device]:
        """Devices whose NTP configuration reaches pool vantages (cached)."""
        if self._pool_clients is None:
            self._pool_clients = [
                device
                for device in self.devices.values()
                if device.uses_pool and device.queries_per_day > 0
            ]
        return self._pool_clients

    def iter_devices(self) -> Iterator[Device]:
        """All devices in id order."""
        return iter(self.devices.values())

    def network_of_id(self, network_id: int) -> CustomerNetwork:
        """Network lookup by id."""
        return self.networks[network_id]

    def stats(self) -> Dict[str, int]:
        """Coarse inventory counters, for reports and sanity checks."""
        return {
            "ases": len(self.profiles),
            "networks": len(self.networks),
            "devices": len(self.devices),
            "pool_clients": len(self.pool_client_devices()),
            "vantages": len(self.vantages),
            "router_interfaces": len(self.router_addresses),
            "wardriving_bssids": len(self.bssid_db),
        }
