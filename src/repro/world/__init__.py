"""Generative model of the IPv6 Internet.

Deterministic, seed-driven world generation: addressing strategies
(:mod:`repro.world.strategies`), devices (:mod:`repro.world.devices`),
customer networks with delegated-prefix rotation
(:mod:`repro.world.networks`, :mod:`repro.world.ases`), mobility
(:mod:`repro.world.mobility`), population assembly
(:mod:`repro.world.population`) and the :class:`repro.world.world.World`
facade with its probe oracle.
"""

from .ases import ASProfile, PrefixDelegation
from .clock import (
    CAMPAIGN_EPOCH,
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    SimClock,
    day_index,
    iter_ticks,
    week_index,
)
from .devices import Device, DeviceType
from .mobility import CommuterPlan, MobilityPlan, ProviderChangePlan, StaticPlan
from .networks import CustomerNetwork
from .population import (
    PAPER_VANTAGE_PLAN,
    WorldBuilder,
    WorldConfig,
    build_world,
)
from .presets import PRESETS, preset_config, preset_names
from .rng import derive_seed, keyed_randbits, keyed_uniform, split_rng
from .strategies import (
    AddressingStrategy,
    Dhcpv6SequentialStrategy,
    Eui64Strategy,
    IPv4EmbeddedStrategy,
    LowByteStrategy,
    LowTwoBytesStrategy,
    PrivacyExtensionsStrategy,
    RandomLow4Strategy,
    StableRandomStrategy,
    StrategyKind,
)
from .world import ProbeResponse, ResponderKind, VantagePoint, World

__all__ = [
    "ASProfile",
    "AddressingStrategy",
    "CAMPAIGN_EPOCH",
    "CommuterPlan",
    "CustomerNetwork",
    "DAY",
    "Device",
    "DeviceType",
    "Dhcpv6SequentialStrategy",
    "Eui64Strategy",
    "HOUR",
    "IPv4EmbeddedStrategy",
    "LowByteStrategy",
    "LowTwoBytesStrategy",
    "MINUTE",
    "MobilityPlan",
    "PAPER_VANTAGE_PLAN",
    "PRESETS",
    "preset_config",
    "preset_names",
    "PrefixDelegation",
    "PrivacyExtensionsStrategy",
    "ProbeResponse",
    "ProviderChangePlan",
    "RandomLow4Strategy",
    "ResponderKind",
    "SimClock",
    "StableRandomStrategy",
    "StaticPlan",
    "StrategyKind",
    "VantagePoint",
    "WEEK",
    "World",
    "WorldBuilder",
    "WorldConfig",
    "build_world",
    "day_index",
    "derive_seed",
    "iter_ticks",
    "keyed_randbits",
    "keyed_uniform",
    "split_rng",
    "week_index",
]
