"""Deterministic stream-split randomness.

A simulated Internet needs *lots* of independent random decisions — per
AS, per network, per device, per day — that must be (a) reproducible from
a single seed and (b) independent of iteration order, so that asking
"what is device 17's IID on day 93?" gives the same answer whether or not
days 0–92 were ever evaluated.  Sequential ``random.Random`` calls cannot
provide (b); keyed hashing can.

:func:`derive_seed` hashes a root seed with a key path into a 64-bit
seed; :func:`split_rng` wraps it in a fresh ``random.Random``.  The same
mechanism provides order-independent uniform floats and permutation-like
index mixing used by the prefix-rotation scheme.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["derive_seed", "split_rng", "keyed_uniform", "keyed_randbits"]

_Key = Union[str, int, bytes]


_INT128_MIN = -(1 << 127)
_INT128_MAX = (1 << 127) - 1


def _encode_seed(value: int) -> bytes:
    """Fixed 16-byte encoding, extended for out-of-range magnitudes.

    ``random.Random`` accepts arbitrarily large seeds, so we must too;
    the common path stays byte-identical to the original 16-byte form
    so calibrated worlds are stable across versions.
    """
    if _INT128_MIN <= value <= _INT128_MAX:
        return value.to_bytes(16, "big", signed=True)
    wide = value.to_bytes(
        (value.bit_length() + 8) // 8, "big", signed=True
    )
    return b"\x00wide\x00" + len(wide).to_bytes(8, "big") + wide


def _encode_key(key: _Key) -> bytes:
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, int):
        return b"i" + _encode_seed(key)
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def derive_seed(root_seed: int, *keys: _Key) -> int:
    """Derive a 64-bit seed from a root seed and a key path.

    >>> derive_seed(1, "device", 17) != derive_seed(1, "device", 18)
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(_encode_seed(root_seed))
    for key in keys:
        part = _encode_key(key)
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return int.from_bytes(digest.digest(), "big")


def split_rng(root_seed: int, *keys: _Key) -> random.Random:
    """A fresh ``random.Random`` seeded from the key path."""
    return random.Random(derive_seed(root_seed, *keys))


def keyed_uniform(root_seed: int, *keys: _Key) -> float:
    """An order-independent uniform float in ``[0, 1)`` for the key path."""
    return derive_seed(root_seed, *keys) / (1 << 64)


def keyed_randbits(root_seed: int, bits: int, *keys: _Key) -> int:
    """Order-independent uniform integer of up to 128 bits for a key path.

    For ``bits <= 64`` a single derivation suffices; wider values chain a
    second derivation, which is plenty for 128-bit IID/prefix material.
    """
    if not 0 < bits <= 128:
        raise ValueError(f"bits must be in (0, 128]: {bits}")
    value = derive_seed(root_seed, *keys)
    if bits > 64:
        value = (value << 64) | derive_seed(root_seed, "hi", *keys)
    return value >> (64 - bits if bits <= 64 else 128 - bits)
