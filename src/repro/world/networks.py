"""Customer networks: one delegated prefix, a handful of devices.

A :class:`CustomerNetwork` is what an ISP delegates a prefix to — a home,
a small office, or a single cellular subscriber session.  It knows its
AS's delegation authority (so it can compute its current prefix at any
time, surviving rotation) and its member devices (so the probe oracle
can ask "who holds this address right now?").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .ases import ASProfile
from .devices import Device

__all__ = ["CustomerNetwork"]


class CustomerNetwork:
    """One delegated-prefix customer of an AS.

    Parameters
    ----------
    network_id:
        Globally unique id; mobility plans reference networks by id.
    profile:
        The owning AS's profile (provides the delegation authority).
    customer_index / rotating:
        This customer's slot in the AS delegation scheme.
    firewalled:
        When True, the CPE drops unsolicited inbound probes to *client*
        devices.  Infrastructure devices (the CPE itself, servers)
        respond regardless — matching the paper's observation that CPE
        and low-entropy hosts dominate backscan responders.
    """

    def __init__(
        self,
        network_id: int,
        profile: ASProfile,
        customer_index: int,
        rotating: bool,
        firewalled: bool = False,
    ) -> None:
        self.network_id = network_id
        self.profile = profile
        self.customer_index = customer_index
        self.rotating = rotating
        self.firewalled = firewalled
        self.devices: List[Device] = []

    @property
    def asn(self) -> int:
        """The owning AS number."""
        return self.profile.asn

    @property
    def country(self) -> str:
        """The owning AS's country."""
        return self.profile.country

    def attach(self, device: Device, home: bool = True) -> None:
        """Add a device to this network's member list.

        With ``home=True`` the device's home network pointer is set; pass
        ``home=False`` when registering a visiting-possible device (e.g.
        a commuter's cellular session network lists the phone without
        being its home).
        """
        self.devices.append(device)
        if home:
            device.home_network_id = self.network_id

    def delegated_base(self, when: float) -> int:
        """Base address of the currently delegated prefix."""
        return self.profile.delegation.delegated_base(
            self.customer_index, self.rotating, when
        )

    def prefix64_for(self, device: Device, when: float) -> int:
        """The /64 a member device sits in at ``when``.

        ``device.subnet_index`` selects a subnet of the delegated prefix,
        wrapped into the delegation's subnet space — a phone that lives
        in subnet 2 of its /56 home simply lands in the only /64 of its
        cellular session when it roams there.
        """
        base = self.delegated_base(when)
        subnet_bits = 64 - self.profile.delegation.delegated_length
        subnet = device.subnet_index & ((1 << subnet_bits) - 1)
        return base | (subnet << 64)

    def device_address(self, device: Device, when: float) -> int:
        """A member device's full address at ``when``."""
        return device.address_at(when, self.prefix64_for(device, when))

    def present_devices(self, when: float) -> Iterable[Device]:
        """Members actually attached here at ``when`` (mobility-aware)."""
        for device in self.devices:
            if device.current_network_id(when) == self.network_id:
                yield device

    def holder_of(self, address: int, when: float) -> Optional[Device]:
        """The present member holding ``address`` at ``when``, if any."""
        for device in self.present_devices(when):
            if self.device_address(device, when) == address:
                return device
        return None

    def __repr__(self) -> str:
        return (
            f"CustomerNetwork(id={self.network_id}, AS{self.asn}, "
            f"{'rotating' if self.rotating else 'static'}, "
            f"{len(self.devices)} devices)"
        )
