"""IID assignment strategies.

Every device in the simulated world owns one addressing strategy — the
knob that ultimately produces the paper's entire §4.3/§5 phenomenology:

* privacy extensions (RFC 4941) → high-entropy, short-lived addresses;
* stable-random (RFC 7217) → high-entropy but per-prefix-stable;
* EUI-64 SLAAC → medium-entropy, MAC-leaking, cross-network trackable;
* operator low-byte / low-2-bytes → memorable infrastructure addresses;
* DHCPv6 sequential pools → low-entropy client addresses;
* IPv4-embedded → dual-stack operator practice;
* "random low4" → the Reliance-Jio-style pattern (only the lower four
  IID bytes randomized) the paper spots in Figure 4.

Strategies are *pure*: the IID for (time, prefix) is a deterministic
function of the device's identity and the root seed, independent of
evaluation order — which is what lets the probe oracle answer "who holds
this address right now?" without replaying history.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum

from ..addr.eui64 import mac_to_iid
from ..addr.mac import MAX_MAC
from .rng import keyed_randbits

__all__ = [
    "StrategyKind",
    "AddressingStrategy",
    "LowByteStrategy",
    "LowTwoBytesStrategy",
    "Dhcpv6SequentialStrategy",
    "Eui64Strategy",
    "PrivacyExtensionsStrategy",
    "StableRandomStrategy",
    "RandomLow4Strategy",
    "IPv4EmbeddedStrategy",
]


class StrategyKind(Enum):
    """Tags for the implemented strategies (used in profiles/reports)."""

    LOW_BYTE = "low_byte"
    LOW_2_BYTES = "low_2_bytes"
    DHCPV6_SEQUENTIAL = "dhcpv6_sequential"
    EUI64 = "eui64"
    PRIVACY = "privacy_extensions"
    STABLE_RANDOM = "stable_random"
    RANDOM_LOW4 = "random_low4"
    IPV4_EMBEDDED = "ipv4_embedded"


class AddressingStrategy(ABC):
    """One device's IID assignment behaviour."""

    kind: StrategyKind

    @abstractmethod
    def iid_at(self, when: float, prefix64: int) -> int:
        """The 64-bit IID this device uses at ``when`` inside ``prefix64``."""

    @property
    def rotates_over_time(self) -> bool:
        """True when the IID changes as time passes (same prefix)."""
        return False

    @property
    def depends_on_prefix(self) -> bool:
        """True when moving to a new prefix changes the IID."""
        return False


class LowByteStrategy(AddressingStrategy):
    """Operator-style ``::1`` addressing (paper's "Low Byte" category)."""

    kind = StrategyKind.LOW_BYTE

    def __init__(self, host_number: int) -> None:
        if not 1 <= host_number <= 0xFF:
            raise ValueError(f"host number must fit one byte: {host_number}")
        self._host_number = host_number

    def iid_at(self, when: float, prefix64: int) -> int:
        return self._host_number


class LowTwoBytesStrategy(AddressingStrategy):
    """Two-low-byte addressing like ``::101`` ("Low 2 Bytes" category)."""

    kind = StrategyKind.LOW_2_BYTES

    def __init__(self, host_number: int) -> None:
        if not 0x100 <= host_number <= 0xFFFF:
            raise ValueError(
                f"host number must need exactly two bytes: {host_number}"
            )
        self._host_number = host_number

    def iid_at(self, when: float, prefix64: int) -> int:
        return self._host_number


class Dhcpv6SequentialStrategy(AddressingStrategy):
    """A DHCPv6 server handing out a sequential pool (low entropy).

    Real deployments commonly configure pools like ``::1:0`` upward; the
    resulting IIDs have a handful of meaningful low bytes.
    """

    kind = StrategyKind.DHCPV6_SEQUENTIAL

    POOL_BASE = 0x0001_0000

    def __init__(self, lease_index: int) -> None:
        if not 0 <= lease_index < (1 << 24):
            raise ValueError(f"lease index out of range: {lease_index}")
        self._lease_index = lease_index

    def iid_at(self, when: float, prefix64: int) -> int:
        return self.POOL_BASE + self._lease_index


class Eui64Strategy(AddressingStrategy):
    """Modified-EUI-64 SLAAC: the IID embeds the device MAC.

    Stable across both time and prefixes — the property §5 weaponizes.
    """

    kind = StrategyKind.EUI64

    def __init__(self, mac: int) -> None:
        if not 0 <= mac <= MAX_MAC:
            raise ValueError(f"MAC out of range: {mac}")
        self._iid = mac_to_iid(mac)
        self.mac = mac

    def iid_at(self, when: float, prefix64: int) -> int:
        return self._iid


class PrivacyExtensionsStrategy(AddressingStrategy):
    """RFC 4941 temporary addresses: fresh random IID per interval."""

    kind = StrategyKind.PRIVACY

    def __init__(
        self, root_seed: int, device_key: int, rotation_interval: float
    ) -> None:
        if rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        self._root_seed = root_seed
        self._device_key = device_key
        self._interval = rotation_interval

    @property
    def rotates_over_time(self) -> bool:
        return True

    def iid_at(self, when: float, prefix64: int) -> int:
        epoch = int(when // self._interval)
        return keyed_randbits(
            self._root_seed, 64, "privacy", self._device_key, epoch
        )


class StableRandomStrategy(AddressingStrategy):
    """RFC 7217 opaque stable IIDs: random per (device, prefix), stable."""

    kind = StrategyKind.STABLE_RANDOM

    def __init__(self, root_seed: int, device_key: int) -> None:
        self._root_seed = root_seed
        self._device_key = device_key

    @property
    def depends_on_prefix(self) -> bool:
        return True

    def iid_at(self, when: float, prefix64: int) -> int:
        return keyed_randbits(
            self._root_seed, 64, "stable", self._device_key, prefix64
        )


class RandomLow4Strategy(AddressingStrategy):
    """Randomize only the low four IID bytes (Reliance-Jio-style).

    The paper observes this pattern as a second, lower-entropy mode in
    Figure 4(a): the upper four IID bytes stay zero.
    """

    kind = StrategyKind.RANDOM_LOW4

    def __init__(
        self, root_seed: int, device_key: int, rotation_interval: float
    ) -> None:
        if rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        self._root_seed = root_seed
        self._device_key = device_key
        self._interval = rotation_interval

    @property
    def rotates_over_time(self) -> bool:
        return True

    def iid_at(self, when: float, prefix64: int) -> int:
        epoch = int(when // self._interval)
        return keyed_randbits(
            self._root_seed, 32, "low4", self._device_key, epoch
        )


class IPv4EmbeddedStrategy(AddressingStrategy):
    """Embed the interface's IPv4 address in the IID (paper §4.3).

    Two of the three encodings the classifier recognizes can be produced;
    ``decimal_groups`` spells each octet in decimal in its own group,
    ``hex32`` places the address verbatim in the low 32 bits.
    """

    kind = StrategyKind.IPV4_EMBEDDED

    def __init__(self, ipv4: int, encoding: str = "hex32") -> None:
        if not 0 <= ipv4 <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {ipv4}")
        if encoding not in ("hex32", "decimal_groups"):
            raise ValueError(f"unsupported encoding: {encoding!r}")
        self.ipv4 = ipv4
        self._encoding = encoding
        self._iid = self._encode(ipv4, encoding)

    @staticmethod
    def _encode(ipv4: int, encoding: str) -> int:
        if encoding == "hex32":
            return ipv4
        iid = 0
        for shift in (24, 16, 8, 0):
            octet = (ipv4 >> shift) & 0xFF
            group = int(str(octet), 16)  # decimal digits read as hex
            iid = (iid << 16) | group
        return iid

    def iid_at(self, when: float, prefix64: int) -> int:
        return self._iid
