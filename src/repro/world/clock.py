"""Simulation time.

The world runs on Unix-style seconds.  The paper's campaign spans
25 January – 31 August 2022 (31 weeks); the default epoch below is the
campaign start, so "day 0" of a simulation aligns with the paper's first
collection day.  :class:`SimClock` is a simple monotonic clock the
campaign driver advances tick by tick.
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "CAMPAIGN_EPOCH",
    "SimClock",
    "iter_ticks",
    "day_index",
    "week_index",
]

MINUTE = 60.0
HOUR = 3600.0
DAY = 86_400.0
WEEK = 7 * DAY

#: Unix time of 25 January 2022 00:00 UTC — the paper's collection start.
CAMPAIGN_EPOCH = 1_643_068_800.0


class SimClock:
    """A monotonic simulation clock.

    >>> clock = SimClock()
    >>> clock.advance(DAY)
    >>> clock.elapsed == DAY
    True
    """

    def __init__(self, start: float = CAMPAIGN_EPOCH) -> None:
        self._start = start
        self._now = start

    @property
    def now(self) -> float:
        """Current simulation time (Unix seconds)."""
        return self._now

    @property
    def start(self) -> float:
        """Simulation start time."""
        return self._start

    @property
    def elapsed(self) -> float:
        """Seconds since the simulation started."""
        return self._now - self._start

    def advance(self, seconds: float) -> None:
        """Move time forward; moving backwards is an error."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards: {seconds!r}")
        self._now += seconds

    def advance_to(self, when: float) -> None:
        """Jump to an absolute time at or after the current time."""
        if when < self._now:
            raise ValueError(
                f"cannot move time backwards: {when!r} < {self._now!r}"
            )
        self._now = when


def iter_ticks(
    start: float, end: float, tick: float
) -> Iterator[Tuple[float, float]]:
    """Yield half-open ``(tick_start, tick_end)`` windows covering a span.

    The final window is truncated at ``end``.  ``tick`` must be positive
    and the span non-empty.
    """
    if tick <= 0:
        raise ValueError(f"tick must be positive: {tick!r}")
    if end <= start:
        raise ValueError(f"empty span: [{start!r}, {end!r})")
    current = start
    while current < end:
        upper = min(current + tick, end)
        yield current, upper
        current = upper


def day_index(when: float, epoch: float = CAMPAIGN_EPOCH) -> int:
    """Whole days since the campaign epoch (may be negative before it)."""
    return int((when - epoch) // DAY)


def week_index(when: float, epoch: float = CAMPAIGN_EPOCH) -> int:
    """Whole weeks since the campaign epoch."""
    return int((when - epoch) // WEEK)
