"""World generation: ASes, networks, devices, and their wiring.

:class:`WorldBuilder` turns a :class:`WorldConfig` into a fully wired
:class:`repro.world.world.World`:

* an AS population — fixed-line ISPs, cellular carriers (phone-provider
  subtype), and hosting/cloud ASes — with Zipf-skewed sizes, country
  assignment mirroring the paper's top-5 (IN, CN, US, BR, ID ≈ 76% of
  addresses), per-AS rotation policy and addressing-strategy mixes;
* the numbering plane: customer blocks, infrastructure /48s, IPv4
  blocks, routing tables, a geolocation DB, and a scale-free AS graph
  with a router addressing plan;
* customer networks and devices, including the special populations the
  §5.2 tracking analysis needs (provider changers, EUI-64 commuters,
  manufacturer MAC reuse);
* the wardriving BSSID database the §5.3 geolocation attack queries;
* the 27-vantage / 20-country NTP deployment plan of the paper.

Everything is derived deterministically from ``config.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..addr.mac import with_nic
from ..addr.oui_db import (
    DEFAULT_UNLISTED_OUIS,
    OUIDatabase,
    default_oui_database,
)
from ..geo.bssid_db import BSSIDDatabase, GeoPoint
from ..net.asn import ASCategory, ASRecord, ASRegistry, ISPSubtype
from ..net.geodb import GeoDatabase
from ..net.prefixes import Prefix
from ..net.routing import RoutingTable
from ..net.topology import RouterAddressPlan, preferential_attachment_topology
from ..ntp.client import OperatingSystem, TimeSource
from .ases import ASProfile, PrefixDelegation
from .clock import CAMPAIGN_EPOCH, DAY, HOUR, WEEK
from .devices import Device, DeviceType
from .mobility import CommuterPlan, ProviderChangePlan
from .rng import split_rng
from .strategies import (
    Dhcpv6SequentialStrategy,
    Eui64Strategy,
    IPv4EmbeddedStrategy,
    LowByteStrategy,
    LowTwoBytesStrategy,
    PrivacyExtensionsStrategy,
    RandomLow4Strategy,
    StableRandomStrategy,
    StrategyKind,
)
from .world import VantagePoint, World

__all__ = ["WorldConfig", "WorldBuilder", "build_world"]

#: The paper's vantage deployment: 27 servers across 20 countries (§3).
PAPER_VANTAGE_PLAN: Tuple[Tuple[str, int], ...] = (
    ("US", 6), ("JP", 2), ("DE", 2),
    ("AU", 1), ("BH", 1), ("BR", 1), ("BG", 1), ("HK", 1), ("IN", 1),
    ("ID", 1), ("MX", 1), ("NL", 1), ("PL", 1), ("SG", 1), ("ZA", 1),
    ("KR", 1), ("ES", 1), ("SE", 1), ("TW", 1), ("GB", 1),
)

#: Client-country weights mirroring the paper's corpus geography.
COUNTRY_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("IN", 0.24), ("CN", 0.20), ("US", 0.15), ("BR", 0.09), ("ID", 0.08),
    ("DE", 0.05), ("JP", 0.04), ("GB", 0.03), ("FR", 0.02), ("MX", 0.02),
    ("KR", 0.02), ("PL", 0.01), ("NL", 0.01), ("ES", 0.01), ("SE", 0.01),
    ("AU", 0.01), ("ZA", 0.005), ("SG", 0.005), ("TW", 0.005), ("TH", 0.005),
)

#: Rough country centroids for wardriving coordinates.
COUNTRY_CENTROIDS: Dict[str, Tuple[float, float]] = {
    "IN": (21.0, 78.0), "CN": (35.0, 103.0), "US": (39.8, -98.6),
    "BR": (-14.2, -51.9), "ID": (-2.5, 118.0), "DE": (51.2, 10.4),
    "JP": (36.2, 138.3), "GB": (54.0, -2.5), "FR": (46.2, 2.2),
    "MX": (23.6, -102.6), "KR": (36.5, 127.9), "PL": (52.0, 19.4),
    "NL": (52.2, 5.3), "ES": (40.3, -3.7), "SE": (62.0, 15.0),
    "AU": (-25.3, 133.8), "ZA": (-29.0, 24.0), "SG": (1.35, 103.8),
    "TW": (23.7, 121.0), "TH": (15.1, 101.0), "BH": (26.0, 50.5),
    "BG": (42.7, 25.5), "HK": (22.35, 114.1), "LU": (49.8, 6.1),
}

# Named heavy hitters mirroring the paper's Figure 4 top-5 ASes.
_NAMED_ASES: Tuple[Tuple[str, str, bool, str], ...] = (
    # (name, country, cellular, strategy-mix key)
    ("Reliance Jio", "IN", True, "jio"),
    ("ChinaNet", "CN", False, "default"),
    ("China Mobile", "CN", True, "cellular"),
    ("T-Mobile US", "US", True, "cellular"),
    ("Telkomsel", "ID", True, "telkomsel"),
    # A large German fixed-line ISP guarantees the AVM Fritz!Box CPE
    # population the §5.3 geolocation result depends on.
    ("Deutsche Telekom", "DE", False, "default"),
)

# Client-device strategy mixes by profile key.
_STRATEGY_MIXES: Dict[str, Tuple[Tuple[StrategyKind, float], ...]] = {
    "default": (
        (StrategyKind.PRIVACY, 0.72),
        (StrategyKind.STABLE_RANDOM, 0.10),
        (StrategyKind.EUI64, 0.10),
        (StrategyKind.DHCPV6_SEQUENTIAL, 0.05),
        (StrategyKind.LOW_BYTE, 0.02),
        (StrategyKind.LOW_2_BYTES, 0.01),
    ),
    "cellular": (
        (StrategyKind.PRIVACY, 0.90),
        (StrategyKind.RANDOM_LOW4, 0.07),
        (StrategyKind.EUI64, 0.03),
    ),
    "jio": (
        (StrategyKind.PRIVACY, 0.60),
        (StrategyKind.RANDOM_LOW4, 0.35),
        (StrategyKind.EUI64, 0.03),
        (StrategyKind.DHCPV6_SEQUENTIAL, 0.02),
    ),
    "telkomsel": (
        (StrategyKind.PRIVACY, 0.45),
        (StrategyKind.DHCPV6_SEQUENTIAL, 0.30),
        (StrategyKind.RANDOM_LOW4, 0.20),
        (StrategyKind.EUI64, 0.05),
    ),
    "hosting": (
        (StrategyKind.LOW_BYTE, 0.35),
        (StrategyKind.LOW_2_BYTES, 0.15),
        (StrategyKind.IPV4_EMBEDDED, 0.25),
        (StrategyKind.STABLE_RANDOM, 0.15),
        (StrategyKind.EUI64, 0.10),
    ),
}

# IoT / smart-home devices skew to EUI-64 regardless of AS (Table 2).
_IOT_MIX: Tuple[Tuple[StrategyKind, float], ...] = (
    (StrategyKind.EUI64, 0.40),
    (StrategyKind.PRIVACY, 0.40),
    (StrategyKind.DHCPV6_SEQUENTIAL, 0.15),
    (StrategyKind.STABLE_RANDOM, 0.05),
)

# Vendor pools (OUI database vendor name, or None for unlisted space).
_VENDOR_POOLS: Dict[DeviceType, Tuple[Tuple[Optional[str], float], ...]] = {
    DeviceType.SMARTPHONE: (
        ("Samsung Electronics Co.,Ltd", 2.5),
        ("vivo Mobile Communication Co., Ltd.", 1.5),
        ("Huawei Technologies", 1.0),
        ("Xiaomi Communications Co Ltd", 0.8),
        (None, 4.0),
    ),
    DeviceType.LAPTOP: (
        ("Intel Corporate", 2.0),
        ("Apple, Inc.", 1.0),
        (None, 1.0),
    ),
    DeviceType.DESKTOP: (
        ("Intel Corporate", 2.0),
        (None, 1.0),
    ),
    DeviceType.SERVER: (
        ("Amazon Technologies Inc.", 3.0),
        ("Intel Corporate", 1.0),
        (None, 2.0),
    ),
    DeviceType.CPE_ROUTER: (
        ("AVM GmbH", 1.0),        # re-weighted to dominate in DE
        ("TP-Link Technologies Co.,Ltd.", 1.0),
        ("Huawei Technologies", 0.8),
        (None, 1.2),
    ),
    DeviceType.IOT: (
        ("Sonos, Inc.", 1.0),
        ("Espressif Inc.", 0.8),
        ("Sunnovo International Limited", 0.8),
        ("Hui Zhou Gaoshengda Technology Co.,LTD", 0.8),
        ("Amazon Technologies Inc.", 1.5),
        (None, 8.0),
    ),
    DeviceType.SMART_HOME: (
        ("Sonos, Inc.", 1.2),
        ("Samsung Electronics Co.,Ltd", 0.8),
        ("Amazon Technologies Inc.", 1.0),
        (None, 5.0),
    ),
    DeviceType.SET_TOP_BOX: (
        ("Shenzhen Chuangwei-RGB Electronics", 1.0),
        ("Skyworth Digital Technology (Shenzhen) Co.,Ltd", 1.0),
        (None, 3.0),
    ),
}

# Home-network client device type mix (the CPE router is always added).
_HOME_DEVICE_MIX: Tuple[Tuple[DeviceType, float], ...] = (
    (DeviceType.SMARTPHONE, 0.30),
    (DeviceType.LAPTOP, 0.18),
    (DeviceType.DESKTOP, 0.10),
    (DeviceType.IOT, 0.22),
    (DeviceType.SMART_HOME, 0.13),
    (DeviceType.SET_TOP_BOX, 0.07),
)

_SMARTPHONE_OS: Tuple[Tuple[OperatingSystem, float], ...] = (
    (OperatingSystem.ANDROID_MODERN, 0.45),
    (OperatingSystem.ANDROID_LEGACY, 0.30),
    (OperatingSystem.IOS, 0.25),
)

_LAPTOP_OS: Tuple[Tuple[OperatingSystem, float], ...] = (
    (OperatingSystem.WINDOWS, 0.45),
    (OperatingSystem.MACOS, 0.20),
    (OperatingSystem.LINUX_UBUNTU, 0.20),
    (OperatingSystem.LINUX_DEBIAN, 0.15),
)

_DESKTOP_OS: Tuple[Tuple[OperatingSystem, float], ...] = (
    (OperatingSystem.WINDOWS, 0.55),
    (OperatingSystem.LINUX_UBUNTU, 0.25),
    (OperatingSystem.LINUX_CENTOS, 0.10),
    (OperatingSystem.MACOS, 0.10),
)

_OS_BY_TYPE: Dict[DeviceType, Tuple[Tuple[OperatingSystem, float], ...]] = {
    DeviceType.SMARTPHONE: _SMARTPHONE_OS,
    DeviceType.LAPTOP: _LAPTOP_OS,
    DeviceType.DESKTOP: _DESKTOP_OS,
    DeviceType.SERVER: (
        (OperatingSystem.LINUX_UBUNTU, 0.4),
        (OperatingSystem.LINUX_CENTOS, 0.3),
        (OperatingSystem.LINUX_DEBIAN, 0.3),
    ),
    DeviceType.CPE_ROUTER: ((OperatingSystem.EMBEDDED_OPENWRT, 1.0),),
    DeviceType.IOT: ((OperatingSystem.IOT_GENERIC, 1.0),),
    DeviceType.SMART_HOME: ((OperatingSystem.IOT_GENERIC, 1.0),),
    DeviceType.SET_TOP_BOX: ((OperatingSystem.IOT_GENERIC, 1.0),),
}

_QUERY_RATES: Dict[DeviceType, float] = {
    DeviceType.SMARTPHONE: 3.0,
    DeviceType.LAPTOP: 3.0,
    DeviceType.DESKTOP: 4.0,
    DeviceType.SERVER: 8.0,
    DeviceType.CPE_ROUTER: 5.0,
    DeviceType.IOT: 2.0,
    DeviceType.SMART_HOME: 2.0,
    DeviceType.SET_TOP_BOX: 1.0,
}

#: Static slots reserved per hosting AS for vantage VPS addresses.
_VANTAGE_SLOTS = 8


@dataclass
class WorldConfig:
    """Scale and behaviour knobs for world generation.

    The defaults produce a "small" world suitable for tests and quick
    examples; benches scale ``n_home_networks`` / ``n_cellular_subscribers``
    up.
    """

    seed: int = 1
    # Population scale
    n_fixed_ases: int = 20
    n_cellular_ases: int = 6
    n_hosting_ases: int = 6
    n_home_networks: int = 400
    n_cellular_subscribers: int = 300
    n_hosting_networks: int = 30
    mean_client_devices: float = 2.2
    delegated_length: int = 56
    #: Fixed-line ISPs delegate different sizes (RIPE-690: /56 common,
    #: some /60, stingy ones a single /64); weights sample per AS.
    fixed_delegation_weights: Tuple[Tuple[int, float], ...] = (
        (56, 0.60), (60, 0.25), (64, 0.15),
    )
    #: Cellular sessions always get a single /64 (3GPP behaviour).
    cellular_delegated_length: int = 64
    # Rotation policy (fractions over fixed-line ASes)
    slow_rotating_fraction: float = 0.10
    fast_rotating_fraction: float = 0.05
    #: Probability a CPE router's NTP points at its ISP's own servers
    #: (via DHCPv6 option 56) instead of the pool.
    cpe_isp_ntp_probability: float = 0.75
    #: Probability a server syncs to its cloud provider's time service
    #: (e.g. Amazon Time Sync) instead of the pool.
    server_cloud_ntp_probability: float = 0.70
    slow_rotation_interval: float = 45 * DAY
    fast_rotation_interval: float = 3 * DAY
    cellular_rotation_interval: float = 18 * HOUR
    # Firewalling and aliasing
    firewall_probability: float = 0.30
    #: Cellular carriers commonly filter unsolicited inbound traffic to
    #: handsets; combined with address churn this is why high-entropy
    #: clients dominate the paper's backscan misses (Fig. 3).
    cellular_firewall_probability: float = 0.45
    aliased_fixed_as_count: int = 2
    aliased_hosting_as_count: int = 1
    # Tracking special populations
    provider_change_fraction: float = 0.012
    commuter_fraction: float = 0.25
    commuter_eui64_fraction: float = 0.06
    reused_mac_count: int = 3
    reused_mac_instances: int = 10
    # Privacy-extension rotation interval (per RFC 4941 default: 1 day)
    privacy_rotation_interval: float = DAY
    # Wardriving coverage probability by country (default applies elsewhere)
    wardriving_coverage: Dict[str, float] = field(
        default_factory=lambda: {"DE": 0.85, "NL": 0.6, "GB": 0.55,
                                 "FR": 0.5, "LU": 0.6, "PL": 0.5,
                                 "SE": 0.5, "ES": 0.45, "US": 0.25,
                                 "MX": 0.30, "IN": 0.15}
    )
    default_wardriving_coverage: float = 0.08
    background_bssids_per_oui: int = 40
    # Outage injection (off by default): whole-AS connectivity losses,
    # the ground truth for the outage-detection application benchmark.
    outage_as_count: int = 0
    outage_min_days: int = 2
    outage_max_days: int = 8
    # NTP pool composition
    vantage_plan: Tuple[Tuple[str, int], ...] = PAPER_VANTAGE_PLAN
    background_pool_per_country: int = 3
    background_pool_extra_world: int = 20
    campaign_start: float = CAMPAIGN_EPOCH
    campaign_weeks: int = 31

    def __post_init__(self) -> None:
        if self.n_fixed_ases < 5:
            raise ValueError("need at least 5 fixed-line ASes")
        if self.n_cellular_ases < 4:
            raise ValueError(
                "need at least 4 cellular ASes (the named heavy hitters)"
            )
        if self.n_hosting_ases < 1:
            raise ValueError("need at least one hosting AS")
        if not 48 <= self.delegated_length <= 64:
            raise ValueError("delegated length must be in [48, 64]")
        if self.slow_rotating_fraction + self.fast_rotating_fraction > 1.0:
            raise ValueError("rotating fractions exceed 1.0")


def _weighted_choice(rng, pairs: Sequence[Tuple[object, float]]):
    total = sum(weight for _, weight in pairs)
    mark = rng.uniform(0.0, total)
    accumulated = 0.0
    for value, weight in pairs:
        accumulated += weight
        if mark <= accumulated:
            return value
    return pairs[-1][0]


def _zipf_split(total: int, buckets: int, rng, exponent: float = 1.0) -> List[int]:
    """Split ``total`` items over ``buckets`` with Zipf-skewed sizes."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    weights = [1.0 / (rank**exponent) for rank in range(1, buckets + 1)]
    scale = total / sum(weights)
    counts = [int(weight * scale) for weight in weights]
    deficit = total - sum(counts)
    index = 0
    while deficit > 0:
        counts[index % buckets] += 1
        deficit -= 1
        index += 1
    return counts


class WorldBuilder:
    """Assembles a :class:`World` from a :class:`WorldConfig`."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self._seed = config.seed
        self._next_device_id = 1
        self._next_network_id = 1
        # Intended (pre-slack) customer counts per ASN; delegations carry
        # extra free slots so movers/commuters can be given fresh prefixes.
        self._intended_counts: Dict[int, int] = {}

    # -- public entry point -------------------------------------------------

    def build(self) -> World:
        """Generate the complete world."""
        config = self.config
        oui_db = default_oui_database()
        registry = ASRegistry()
        routing = RoutingTable(width=128)
        routing4 = RoutingTable(width=32)
        geodb = GeoDatabase()
        bssid_db = BSSIDDatabase()

        profiles = self._build_ases(registry, routing, routing4, geodb)
        topology = self._build_topology(profiles)
        infra = {
            profile.asn: profile.infra_prefix
            for profile in profiles.values()
            if profile.infra_prefix is not None
        }
        router_plan = RouterAddressPlan(topology, infra)

        world = World(
            config=config,
            registry=registry,
            profiles=profiles,
            routing=routing,
            routing4=routing4,
            geodb=geodb,
            topology=topology,
            router_plan=router_plan,
            oui_db=oui_db,
            bssid_db=bssid_db,
        )

        self._build_home_networks(world)
        self._build_cellular_subscribers(world)
        self._build_hosting_networks(world)
        self._assign_special_populations(world)
        self._build_wardriving(world)
        self._place_vantages(world)
        self._schedule_outages(world)
        return world

    # -- AS layer -----------------------------------------------------------

    def _as_base_prefixes(self, index: int) -> Tuple[Prefix, Prefix]:
        """Customer /40 and infrastructure /48 for the ``index``-th AS."""
        customer = Prefix((0x2A << 120) | (index << 88), 40)
        infra = Prefix((0x2B << 120) | (index << 80), 48)
        return customer, infra

    def _make_profile(
        self,
        index: int,
        name: str,
        country: str,
        category: ASCategory,
        subtype: ISPSubtype,
        rotation_interval: Optional[float],
        rotating_count: int,
        static_count: int,
        mix_key: str,
        cellular: bool,
        aliased: bool,
        registry: ASRegistry,
        routing: RoutingTable,
        routing4: RoutingTable,
        geodb: GeoDatabase,
        delegated_length: Optional[int] = None,
    ) -> ASProfile:
        asn = 64500 + index
        record = ASRecord(
            asn=asn, name=name, country=country, category=category,
            subtype=subtype,
        )
        registry.register(record)
        customer, infra = self._as_base_prefixes(index)
        delegation = PrefixDelegation(
            customer_block=customer,
            delegated_length=(
                self.config.delegated_length
                if delegated_length is None
                else delegated_length
            ),
            rotating_count=rotating_count,
            static_count=static_count,
            rotation_interval=rotation_interval,
            root_seed=self._seed,
            asn=asn,
        )
        profile = ASProfile(
            record=record,
            customer_block=customer,
            delegation=delegation,
            infra_prefix=infra,
            aliased=aliased,
            firewall_probability=self.config.firewall_probability,
            cellular=cellular,
            strategy_weights=dict(_STRATEGY_MIXES[mix_key]),
        )
        routing.announce(customer, asn)
        routing.announce(infra, asn)
        # One IPv4 /16 per AS in 100.64.0.0/10-adjacent space for the
        # IPv4-embedded validation path.
        v4 = Prefix((100 << 24) | ((index + 1) << 16), 16, 32)
        routing4.announce(v4, asn)
        geodb.add(customer, country)
        geodb.add(infra, country)
        return profile

    def _build_ases(
        self, registry, routing, routing4, geodb
    ) -> Dict[int, ASProfile]:
        config = self.config
        rng = split_rng(self._seed, "ases")
        profiles: Dict[int, ASProfile] = {}
        index = 0

        # Network counts per AS (Zipf-skewed), computed up front so the
        # delegation authorities know their rotating/static splits.
        home_counts = _zipf_split(
            config.n_home_networks, config.n_fixed_ases, rng
        )
        cellular_counts = _zipf_split(
            config.n_cellular_subscribers, config.n_cellular_ases, rng
        )
        hosting_counts = _zipf_split(
            config.n_hosting_networks, config.n_hosting_ases, rng
        )

        # Rotation tier per fixed-line AS, placed deterministically on
        # the Zipf rank order: the largest ISPs stay static, mid-sized
        # ones rotate slowly (weeks — the §5.2 "mostly static" one-or-two
        # renumberings), and a few small ISPs rotate fast (days — the
        # "likely prefix reassignment" class).  Rank placement, not
        # shuffle, so the rotating *device* share tracks the configured
        # fractions across seeds.
        slow_count = round(config.slow_rotating_fraction * config.n_fixed_ases)
        fast_count = round(config.fast_rotating_fraction * config.n_fixed_ases)
        tiers = ["static"] * config.n_fixed_ases
        slow_start = min(5, max(1, config.n_fixed_ases - slow_count - fast_count))
        for offset in range(slow_count):
            tiers[min(slow_start + offset, config.n_fixed_ases - 1)] = "slow"
        for offset in range(fast_count):
            tiers[config.n_fixed_ases - 1 - offset] = "fast"

        # Aliased providers are drawn from the mid-sized Zipf ranks: big
        # enough that their clients actually reach vantages (the §4.2
        # clients-inside-aliased-/64s effect needs sightings), but not
        # the heavy hitters whose aliasing would swamp every analysis.
        alias_pool = range(
            1, max(2, min(config.n_fixed_ases, 1 + 4 * max(
                1, config.aliased_fixed_as_count
            )))
        )
        aliased_fixed = set(
            rng.sample(list(alias_pool),
                       min(config.aliased_fixed_as_count, len(alias_pool)))
        )

        named = list(_NAMED_ASES)
        fixed_slot = 0
        cellular_slot = 0
        self._fixed_asns: List[int] = []
        self._cellular_asns: List[int] = []
        self._hosting_asns: List[int] = []

        # Named heavy hitters first: they take the largest Zipf buckets.
        for name, country, cellular, mix_key in named:
            if cellular:
                count = cellular_counts[cellular_slot]
                profile = self._make_profile(
                    index, name, country, ASCategory.ISP,
                    ISPSubtype.PHONE_PROVIDER,
                    config.cellular_rotation_interval,
                    rotating_count=count + self._slack(count), static_count=0,
                    mix_key=mix_key, cellular=True, aliased=False,
                    registry=registry, routing=routing, routing4=routing4,
                    geodb=geodb,
                    delegated_length=config.cellular_delegated_length,
                )
                profile.firewall_probability = (
                    config.cellular_firewall_probability
                )
                self._cellular_asns.append(profile.asn)
                cellular_slot += 1
            else:
                count = home_counts[fixed_slot]
                tier = tiers[fixed_slot]
                interval, rotating, static = self._fixed_tier(tier, count)
                profile = self._make_profile(
                    index, name, country, ASCategory.ISP,
                    ISPSubtype.FIXED_LINE, interval, rotating, static,
                    mix_key=mix_key, cellular=False,
                    aliased=fixed_slot in aliased_fixed,
                    registry=registry, routing=routing, routing4=routing4,
                    geodb=geodb,
                    delegated_length=_weighted_choice(
                        rng, config.fixed_delegation_weights
                    ),
                )
                self._fixed_asns.append(profile.asn)
                fixed_slot += 1
            self._intended_counts[profile.asn] = count
            profiles[profile.asn] = profile
            index += 1

        # Remaining fixed-line ASes.
        while fixed_slot < config.n_fixed_ases:
            country = _weighted_choice(rng, COUNTRY_WEIGHTS)
            count = home_counts[fixed_slot]
            tier = tiers[fixed_slot]
            interval, rotating, static = self._fixed_tier(tier, count)
            profile = self._make_profile(
                index, f"FixedNet-{fixed_slot}", country, ASCategory.ISP,
                ISPSubtype.FIXED_LINE, interval, rotating, static,
                mix_key="default", cellular=False,
                aliased=fixed_slot in aliased_fixed,
                registry=registry, routing=routing, routing4=routing4,
                geodb=geodb,
                delegated_length=_weighted_choice(
                    rng, config.fixed_delegation_weights
                ),
            )
            profiles[profile.asn] = profile
            self._intended_counts[profile.asn] = count
            self._fixed_asns.append(profile.asn)
            fixed_slot += 1
            index += 1

        # Remaining cellular ASes.
        while cellular_slot < config.n_cellular_ases:
            country = _weighted_choice(rng, COUNTRY_WEIGHTS)
            count = cellular_counts[cellular_slot]
            profile = self._make_profile(
                index, f"MobileNet-{cellular_slot}", country, ASCategory.ISP,
                ISPSubtype.PHONE_PROVIDER, config.cellular_rotation_interval,
                rotating_count=count + self._slack(count), static_count=0,
                mix_key="cellular", cellular=True, aliased=False,
                registry=registry, routing=routing, routing4=routing4,
                geodb=geodb,
                delegated_length=config.cellular_delegated_length,
            )
            profile.firewall_probability = config.cellular_firewall_probability
            profiles[profile.asn] = profile
            self._intended_counts[profile.asn] = count
            self._cellular_asns.append(profile.asn)
            cellular_slot += 1
            index += 1

        # Hosting / cloud ASes host the vantage VPSes and server farms.
        aliased_hosting = set(
            rng.sample(range(config.n_hosting_ases),
                       min(config.aliased_hosting_as_count,
                           config.n_hosting_ases))
        )
        vantage_countries = [country for country, _ in self.config.vantage_plan]
        for hosting_slot in range(config.n_hosting_ases):
            # Spread hosting ASes over vantage countries so every vantage
            # has a plausible home.
            country = vantage_countries[hosting_slot % len(vantage_countries)]
            count = hosting_counts[hosting_slot]
            profile = self._make_profile(
                index, f"CloudHost-{hosting_slot}", country,
                ASCategory.COMPUTER_IT, ISPSubtype.HOSTING,
                rotation_interval=None, rotating_count=0,
                static_count=count + _VANTAGE_SLOTS,
                mix_key="hosting", cellular=False,
                aliased=hosting_slot in aliased_hosting,
                registry=registry, routing=routing, routing4=routing4,
                geodb=geodb,
            )
            # Server farms do not firewall.
            profile.firewall_probability = 0.0
            profiles[profile.asn] = profile
            self._intended_counts[profile.asn] = count
            self._hosting_asns.append(profile.asn)
            index += 1

        return profiles

    @staticmethod
    def _slack(count: int) -> int:
        """Free delegation slots kept beyond the intended customers."""
        return max(6, count // 3)

    def _fixed_tier(self, tier: str, count: int):
        padded = count + self._slack(count)
        if tier == "fast":
            return self.config.fast_rotation_interval, padded, 0
        if tier == "slow":
            return self.config.slow_rotation_interval, padded, 0
        return None, 0, padded

    def _build_topology(self, profiles: Dict[int, ASProfile]):
        rng = split_rng(self._seed, "topology")
        asns = sorted(profiles)
        return preferential_attachment_topology(asns, rng, links_per_as=2)

    # -- networks and devices -----------------------------------------------

    def _new_network_id(self) -> int:
        network_id = self._next_network_id
        self._next_network_id += 1
        return network_id

    def _new_device_id(self) -> int:
        device_id = self._next_device_id
        self._next_device_id += 1
        return device_id

    def _build_home_networks(self, world: World) -> None:
        config = self.config
        for asn in self._fixed_asns:
            profile = world.profiles[asn]
            count = self._intended_counts[asn]
            rotating = profile.delegation.rotating_count > 0
            rng = split_rng(self._seed, "homes", asn)
            for customer_index in range(count):
                network = world.add_network(
                    profile, customer_index, rotating,
                    firewalled=rng.random() < profile.firewall_probability,
                )
                self._populate_home(world, network, rng)

    def _populate_home(self, world: World, network, rng) -> None:
        config = self.config
        # The CPE router is always present and always uses the pool.
        cpe = self._make_device(
            world, network, DeviceType.CPE_ROUTER, rng
        )
        network.attach(cpe)
        # Client devices, spread over the home's first few subnets when
        # the delegation is larger than a single /64.
        subnet_bits = 64 - network.profile.delegation.delegated_length
        subnet_span = min(4, 1 << subnet_bits)
        extra = 1 + int(rng.expovariate(1.0 / max(0.1, config.mean_client_devices - 1)))
        for _ in range(min(extra, 8)):
            device_type = _weighted_choice(rng, _HOME_DEVICE_MIX)
            device = self._make_device(world, network, device_type, rng)
            if subnet_span > 1:
                device.subnet_index = rng.randrange(subnet_span)
            network.attach(device)

    def _build_cellular_subscribers(self, world: World) -> None:
        for asn in self._cellular_asns:
            profile = world.profiles[asn]
            rng = split_rng(self._seed, "cellular", asn)
            for customer_index in range(self._intended_counts[asn]):
                network = world.add_network(
                    profile, customer_index, rotating=True,
                    firewalled=rng.random() < profile.firewall_probability,
                )
                device = self._make_device(
                    world, network, DeviceType.SMARTPHONE, rng
                )
                network.attach(device)

    def _build_hosting_networks(self, world: World) -> None:
        for asn in self._hosting_asns:
            profile = world.profiles[asn]
            rng = split_rng(self._seed, "hosting", asn)
            # The top _VANTAGE_SLOTS static slots stay free for vantages.
            for customer_index in range(self._intended_counts[asn]):
                network = world.add_network(
                    profile, customer_index, rotating=False, firewalled=False
                )
                if rng.random() < 0.35:
                    # Rack-style farm: sequentially numbered servers
                    # (::1, ::2, …) — the dense regularity that makes
                    # low-byte target generation pay off.
                    for slot in range(6 + rng.randrange(10)):
                        device = self._make_device(
                            world, network, DeviceType.SERVER, rng
                        )
                        device.strategy = LowByteStrategy(slot + 1)
                        network.attach(device)
                else:
                    for _ in range(2 + rng.randrange(4)):
                        device = self._make_device(
                            world, network, DeviceType.SERVER, rng
                        )
                        network.attach(device)

    def _make_device(
        self, world: World, network, device_type: DeviceType, rng
    ) -> Device:
        device_id = self._new_device_id()
        profile = network.profile
        os_family = _weighted_choice(rng, _OS_BY_TYPE[device_type])
        strategy_kind = self._pick_strategy_kind(device_type, profile, rng)
        mac = self._pick_mac(world, device_type, profile, rng, device_id)
        strategy = self._instantiate_strategy(
            strategy_kind, device_id, mac, profile, rng
        )
        dhcp_time_source = None
        if (
            device_type is DeviceType.CPE_ROUTER
            and rng.random() < self.config.cpe_isp_ntp_probability
        ):
            dhcp_time_source = TimeSource.DHCP_PROVIDED
        elif (
            device_type is DeviceType.SERVER
            and rng.random() < self.config.server_cloud_ntp_probability
        ):
            dhcp_time_source = TimeSource.TIME_GOOGLE
        device = Device(
            device_id=device_id,
            device_type=device_type,
            os_family=os_family,
            strategy=strategy,
            root_seed=self._seed,
            queries_per_day=_QUERY_RATES[device_type],
            subnet_index=0,
            mac=mac,
            dhcp_time_source=dhcp_time_source,
        )
        world.add_device(device)
        return device

    def _pick_strategy_kind(
        self, device_type: DeviceType, profile: ASProfile, rng
    ) -> StrategyKind:
        if device_type is DeviceType.CPE_ROUTER:
            # CPE WAN addressing: EUI-64 is common (AVM et al.,
            # dominating in Germany), most of the rest self-assign
            # stable-random IIDs, and a minority are operator low-byte.
            mark = rng.random()
            if profile.country == "DE":
                if mark < 0.65:
                    return StrategyKind.EUI64
                return (
                    StrategyKind.STABLE_RANDOM
                    if mark < 0.90
                    else StrategyKind.LOW_BYTE
                )
            if mark < 0.35:
                return StrategyKind.EUI64
            return (
                StrategyKind.STABLE_RANDOM
                if mark < 0.75
                else StrategyKind.LOW_BYTE
            )
        if device_type in (DeviceType.IOT, DeviceType.SMART_HOME,
                           DeviceType.SET_TOP_BOX):
            return _weighted_choice(rng, _IOT_MIX)
        if device_type is DeviceType.SERVER:
            return _weighted_choice(
                rng, tuple(_STRATEGY_MIXES["hosting"])
            )
        return _weighted_choice(rng, tuple(profile.strategy_weights.items()))

    def _pick_mac(
        self, world: World, device_type: DeviceType, profile: ASProfile,
        rng, device_id: int
    ) -> int:
        pool = _VENDOR_POOLS[device_type]
        if device_type is DeviceType.CPE_ROUTER and profile.country == "DE":
            # Fritz!Box dominance in Germany (§5.3).
            pool = (("AVM GmbH", 6.0),) + tuple(pool[1:])
        vendor = _weighted_choice(rng, pool)
        if vendor is None:
            oui = DEFAULT_UNLISTED_OUIS[
                rng.randrange(len(DEFAULT_UNLISTED_OUIS))
            ]
        else:
            ouis = world.oui_db.ouis_of(vendor)
            oui = ouis[rng.randrange(len(ouis))]
        nic = split_rng(self._seed, "mac", device_id).getrandbits(24)
        return with_nic(oui, nic)

    def _instantiate_strategy(
        self, kind: StrategyKind, device_id: int, mac: int,
        profile: ASProfile, rng
    ):
        config = self.config
        if kind is StrategyKind.LOW_BYTE:
            # Operator-chosen IIDs concentrate heavily on ::1/::2/::3
            # (Rohrer et al. 2016) — the regularity low-byte target
            # generation exploits.
            mark = rng.random()
            if mark < 0.35:
                host = 1
            elif mark < 0.47:
                host = 2
            elif mark < 0.53:
                host = 3
            else:
                host = 1 + rng.randrange(0xFF)
            return LowByteStrategy(host)
        if kind is StrategyKind.LOW_2_BYTES:
            return LowTwoBytesStrategy(0x100 + rng.randrange(0xFF00))
        if kind is StrategyKind.DHCPV6_SEQUENTIAL:
            return Dhcpv6SequentialStrategy(rng.randrange(1 << 12))
        if kind is StrategyKind.EUI64:
            return Eui64Strategy(mac)
        if kind is StrategyKind.STABLE_RANDOM:
            return StableRandomStrategy(self._seed, device_id)
        if kind is StrategyKind.RANDOM_LOW4:
            return RandomLow4Strategy(
                self._seed, device_id, config.privacy_rotation_interval
            )
        if kind is StrategyKind.IPV4_EMBEDDED:
            # The AS's IPv4 /16 carries the embedded address.
            index = profile.asn - 64500
            ipv4 = (100 << 24) | ((index + 1) << 16) | rng.getrandbits(16)
            encoding = "hex32" if rng.random() < 0.5 else "decimal_groups"
            return IPv4EmbeddedStrategy(ipv4, encoding)
        return PrivacyExtensionsStrategy(
            self._seed, device_id, config.privacy_rotation_interval
        )

    # -- special populations -------------------------------------------------

    def _assign_special_populations(self, world: World) -> None:
        self._assign_provider_changes(world)
        self._assign_commuters(world)
        self._assign_mac_reuse(world)

    def _eligible_home_devices(self, world: World) -> List[Device]:
        devices = []
        for network in world.networks.values():
            if network.profile.cellular or network.profile.asn in self._hosting_asns:
                continue
            devices.extend(network.devices)
        return devices

    def _assign_provider_changes(self, world: World) -> None:
        """Move a small fraction of static-home devices to a new AS mid-study.

        Models a household switching ISPs: a twin network is created in a
        different fixed-line AS of the same country (falling back to any
        other fixed-line AS when the country has only one).
        """
        config = self.config
        rng = split_rng(self._seed, "provider-change")
        campaign_end = config.campaign_start + config.campaign_weeks * WEEK
        candidates = [
            device
            for device in self._eligible_home_devices(world)
            if device.strategy.kind is StrategyKind.EUI64
            and not world.networks[device.home_network_id].rotating
        ]
        count = round(len(candidates) * config.provider_change_fraction)
        for device in rng.sample(candidates, min(count, len(candidates))):
            home = world.networks[device.home_network_id]
            new_profile = self._other_fixed_profile(world, home.profile, rng)
            if new_profile is None:
                continue
            twin = self._spare_network(world, new_profile, rng)
            if twin is None:
                continue
            twin.attach(device, home=False)
            switch_time = rng.uniform(
                config.campaign_start + 2 * WEEK, campaign_end - 2 * WEEK
            )
            device.mobility_plan = ProviderChangePlan(
                home.network_id, twin.network_id, switch_time
            )

    def _other_fixed_profile(self, world: World, profile: ASProfile, rng):
        others = [
            world.profiles[asn]
            for asn in self._fixed_asns
            if asn != profile.asn
        ]
        # ISP switches happen within a country (the paper's "changing
        # providers" exemplars move between e.g. two Brazilian ISPs); a
        # cross-country move would look like MAC reuse to the tracker.
        pool = [p for p in others if p.country == profile.country]
        # Prefer a non-rotating destination: a household that changes ISP
        # should show few /64 transitions, not inherit a fast-rotation
        # signature.
        static_pool = [p for p in pool if p.delegation.rotating_count == 0]
        pool = static_pool or pool
        if not pool:
            return None
        return pool[rng.randrange(len(pool))]

    def _spare_network(self, world: World, profile: ASProfile, rng):
        """Allocate a fresh customer slot in ``profile`` for a mover."""
        delegation = profile.delegation
        used = world.used_customer_indices(profile.asn)
        if delegation.rotating_count > 0:
            capacity = delegation.rotating_count
            rotating = True
        else:
            capacity = delegation.static_count
            rotating = False
        free = [index for index in range(capacity) if (index, rotating) not in used]
        if not free:
            return None
        customer_index = free[rng.randrange(len(free))]
        return world.add_network(
            profile, customer_index, rotating,
            firewalled=rng.random() < profile.firewall_probability,
        )

    def _assign_commuters(self, world: World) -> None:
        """Give smartphones in home networks a cellular alter ego."""
        config = self.config
        rng = split_rng(self._seed, "commuters")
        phones = [
            device
            for device in self._eligible_home_devices(world)
            if device.device_type is DeviceType.SMARTPHONE
            and device.mobility_plan is None
        ]
        count = round(len(phones) * config.commuter_fraction)
        for device in rng.sample(phones, min(count, len(phones))):
            home = world.networks[device.home_network_id]
            cellular_profile = self._cellular_profile_for(world, home, rng)
            if cellular_profile is None:
                # Commuting is within-country; a phone whose country has
                # no modelled carrier stays home-only.
                continue
            session = self._spare_network(world, cellular_profile, rng)
            if session is None:
                continue
            session.attach(device, home=False)
            device.mobility_plan = CommuterPlan(
                home.network_id, session.network_id,
                self._seed, device.device_id,
            )
            # A few commuter phones are EUI-64 addressed — the §5.2
            # "likely user movement" class.  Only pool-using phones are
            # converted: a non-pool EUI-64 commuter would be invisible to
            # every vantage and contribute nothing but dead weight.
            if device.uses_pool and rng.random() < config.commuter_eui64_fraction:
                device.strategy = Eui64Strategy(device.mac)

    def _cellular_profile_for(self, world: World, home, rng):
        same_country = [
            world.profiles[asn]
            for asn in self._cellular_asns
            if world.profiles[asn].country == home.country
        ]
        if not same_country:
            return None
        return same_country[rng.randrange(len(same_country))]

    def _assign_mac_reuse(self, world: World) -> None:
        """Clone a handful of MACs across EUI-64 devices worldwide (§5.2)."""
        config = self.config
        if config.reused_mac_count == 0:
            return
        rng = split_rng(self._seed, "mac-reuse")
        eui64_devices = [
            device
            for device in self._eligible_home_devices(world)
            if device.strategy.kind is StrategyKind.EUI64
            and device.device_type in (DeviceType.IOT, DeviceType.SMART_HOME,
                                       DeviceType.SET_TOP_BOX)
            and device.mobility_plan is None
        ]
        rng.shuffle(eui64_devices)
        cursor = 0
        for reuse_index in range(config.reused_mac_count):
            oui = DEFAULT_UNLISTED_OUIS[reuse_index % len(DEFAULT_UNLISTED_OUIS)]
            shared_mac = with_nic(oui, 0x100 + reuse_index)
            group = eui64_devices[cursor:cursor + config.reused_mac_instances]
            cursor += config.reused_mac_instances
            if len(group) < 2:
                # A "reused" MAC on fewer than two devices is just a MAC;
                # small worlds may run out of eligible devices.
                continue
            for device in group:
                device.mac = shared_mac
                device.strategy = Eui64Strategy(shared_mac)
            world.reused_macs.add(shared_mac)

    # -- wardriving DB --------------------------------------------------------

    def _build_wardriving(self, world: World) -> None:
        """Populate the BSSID database from CPE/AP devices plus noise."""
        config = self.config
        rng = split_rng(self._seed, "wardriving")
        seen_ouis = set()
        for network in world.networks.values():
            for device in network.devices:
                is_ap = device.device_type is DeviceType.CPE_ROUTER or (
                    device.device_type is DeviceType.SMART_HOME
                    and rng.random() < 0.3
                )
                if not is_ap or device.mac is None:
                    continue
                oui = device.mac >> 24
                offset = _vendor_offset(oui)
                bssid = with_nic(oui & 0xFFFFFF,
                                 ((device.mac & 0xFFFFFF) + offset) % (1 << 24))
                device.wifi_bssid = bssid
                seen_ouis.add(oui & 0xFFFFFF)
                coverage = config.wardriving_coverage.get(
                    network.country, config.default_wardriving_coverage
                )
                if rng.random() < coverage:
                    world.bssid_db.add(
                        bssid, _network_location(network.country, rng)
                    )
        # Background APs: same OUIs, unrelated BSSIDs — inference noise.
        for oui in sorted(seen_ouis):
            for _ in range(config.background_bssids_per_oui):
                bssid = with_nic(oui, rng.getrandbits(24))
                country = _weighted_choice(rng, COUNTRY_WEIGHTS)
                world.bssid_db.add(bssid, _network_location(country, rng))

    # -- vantage placement ----------------------------------------------------

    def _place_vantages(self, world: World) -> None:
        """Create the 27 vantage VPSes in hosting ASes (§3)."""
        rng = split_rng(self._seed, "vantages")
        hosting_by_country: Dict[str, List[ASProfile]] = {}
        for asn in self._hosting_asns:
            profile = world.profiles[asn]
            hosting_by_country.setdefault(profile.country, []).append(profile)
        all_hosting = [world.profiles[asn] for asn in self._hosting_asns]
        vantage_index = 0
        slots_used: Dict[int, int] = {}
        for country, count in self.config.vantage_plan:
            for _ in range(count):
                pool = hosting_by_country.get(country, all_hosting)
                # Least-loaded placement keeps every AS within its
                # reserved slots even when few hosting ASes exist.
                profile = min(
                    pool, key=lambda p: (slots_used.get(p.asn, 0), p.asn)
                )
                # Vantage VPS addresses live in the reserved static slots
                # at the top of the hosting AS's delegation space.
                used = slots_used.get(profile.asn, 0)
                if used >= _VANTAGE_SLOTS:
                    raise ValueError(
                        f"AS{profile.asn} exceeded its {_VANTAGE_SLOTS} "
                        "reserved vantage slots; add hosting ASes"
                    )
                slots_used[profile.asn] = used + 1
                slot = profile.delegation.static_count - 1 - used
                base = profile.delegation.delegated_base(slot, False, 0.0)
                address = base | (0x100 + vantage_index)
                world.vantages.append(
                    VantagePoint(
                        address=address, country=country, asn=profile.asn
                    )
                )
                vantage_index += 1


    # -- outage injection ------------------------------------------------------

    def _schedule_outages(self, world: World) -> None:
        """Inject whole-AS outage windows (ground truth for detection).

        Mid-sized fixed-line ASes go dark for a few days each: their
        devices stop emitting NTP queries and their space stops
        answering probes for the window.
        """
        config = self.config
        if config.outage_as_count == 0:
            return
        if config.outage_min_days < 1 or (
            config.outage_max_days < config.outage_min_days
        ):
            raise ValueError("bad outage duration bounds")
        rng = split_rng(self._seed, "outages")
        # Mid-ranked ASes: big enough to detect, not the heavy hitters.
        candidates = self._fixed_asns[2:] or self._fixed_asns
        chosen = rng.sample(
            candidates, min(config.outage_as_count, len(candidates))
        )
        campaign_days = config.campaign_weeks * 7
        for asn in chosen:
            duration = rng.randint(
                config.outage_min_days, config.outage_max_days
            )
            latest_start = max(1, campaign_days - duration - 7)
            start_day = rng.randint(7, latest_start)
            start = config.campaign_start + start_day * DAY
            world.outages.setdefault(asn, []).append(
                (start, start + duration * DAY)
            )


def _vendor_offset(oui: int) -> int:
    """The per-OUI wired→wireless MAC offset a vendor uses (1..4)."""
    return 1 + (oui % 4)


def _network_location(country: str, rng) -> GeoPoint:
    centroid = COUNTRY_CENTROIDS.get(country, (0.0, 0.0))
    return GeoPoint(
        latitude=max(-90.0, min(90.0, centroid[0] + rng.uniform(-2.0, 2.0))),
        longitude=max(-180.0, min(180.0, centroid[1] + rng.uniform(-2.0, 2.0))),
        country=country,
    )


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Convenience: build a world from ``config`` (or the defaults)."""
    return WorldBuilder(config or WorldConfig()).build()
