"""Device model.

A device is the unit that sends NTP queries and answers (or ignores)
probes.  Each device owns a type (phone, laptop, CPE router, IoT, …), an
OS family (which selects its NTP time source, §2.3), an addressing
strategy (which shapes the IIDs it exposes, §4.3), optionally a MAC
address — and, for CPE routers, a WiFi BSSID sitting at a small vendor
offset from the wired MAC (the §5.3 geolocation linkage).

NTP query times are deterministic per (device, day): the number of
queries is Poisson-like around the device's configured rate and the
offsets are uniform in the day, both derived by keyed hashing so any
day can be evaluated independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..ntp.client import OperatingSystem, TimeSource, time_source_for
from .clock import DAY
from .mobility import MobilityPlan
from .rng import split_rng
from .strategies import AddressingStrategy

__all__ = ["DeviceType", "Device"]


class DeviceType(Enum):
    """Coarse device classes with distinct measurement behaviour."""

    SMARTPHONE = "smartphone"
    LAPTOP = "laptop"
    DESKTOP = "desktop"
    SERVER = "server"
    CPE_ROUTER = "cpe_router"
    IOT = "iot"
    SMART_HOME = "smart_home"
    SET_TOP_BOX = "set_top_box"

    @property
    def is_infrastructure(self) -> bool:
        """Servers and CPE: stable, probe-responsive address holders."""
        return self in (DeviceType.SERVER, DeviceType.CPE_ROUTER)

    @property
    def is_mobile(self) -> bool:
        """Devices that physically move between networks."""
        return self is DeviceType.SMARTPHONE


@dataclass
class Device:
    """One simulated end device.

    ``device_id`` doubles as the key for all per-device randomness, so a
    device's behaviour is fully determined by (root seed, device_id).
    """

    device_id: int
    device_type: DeviceType
    os_family: OperatingSystem
    strategy: AddressingStrategy
    root_seed: int
    queries_per_day: float = 4.0
    subnet_index: int = 0
    mac: Optional[int] = None
    wifi_bssid: Optional[int] = None
    dhcp_time_source: Optional[TimeSource] = None
    home_network_id: Optional[int] = None
    mobility_plan: Optional["MobilityPlan"] = None
    time_source: TimeSource = field(init=False)

    def __post_init__(self) -> None:
        if self.queries_per_day < 0:
            raise ValueError("queries_per_day must be non-negative")
        if self.subnet_index < 0:
            raise ValueError("subnet_index must be non-negative")
        self.time_source = time_source_for(self.os_family, self.dhcp_time_source)

    def current_network_id(self, when: float) -> Optional[int]:
        """The network the device is attached to at ``when``.

        Falls back to the home network when no mobility plan is set.
        """
        if self.mobility_plan is not None:
            return self.mobility_plan.network_id_at(when)
        return self.home_network_id

    @property
    def uses_pool(self) -> bool:
        """True when this device's NTP queries can reach pool vantages."""
        return self.time_source.is_pool_zone

    def iid_at(self, when: float, prefix64: int) -> int:
        """The IID this device exposes at ``when`` inside ``prefix64``."""
        return self.strategy.iid_at(when, prefix64)

    def address_at(self, when: float, prefix64: int) -> int:
        """Full 128-bit address at ``when`` given its current /64."""
        return prefix64 | self.iid_at(when, prefix64)

    def query_count_on(self, day: int) -> int:
        """Number of NTP queries this device issues on campaign day ``day``.

        Poisson-distributed around ``queries_per_day``, deterministic per
        (root seed, device, day).
        """
        if self.queries_per_day == 0:
            return 0
        rng = split_rng(self.root_seed, "qcount", self.device_id, day)
        return _poisson(rng, self.queries_per_day)

    def query_offsets_on(self, day: int) -> List[float]:
        """Second offsets (sorted, within the day) of the day's queries."""
        count = self.query_count_on(day)
        if count == 0:
            return []
        rng = split_rng(self.root_seed, "qtimes", self.device_id, day)
        return sorted(rng.uniform(0.0, DAY) for _ in range(count))


def _poisson(rng, mean: float) -> int:
    """Knuth's Poisson sampler; adequate for the small means used here."""
    if mean <= 0:
        return 0
    # For large means fall back to a normal approximation to avoid the
    # O(mean) loop (rare in practice: devices query a few times a day).
    if mean > 50:
        value = int(round(rng.gauss(mean, mean**0.5)))
        return max(0, value)
    import math

    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
