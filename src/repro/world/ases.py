"""Per-AS addressing authority: delegation, rotation, aliasing.

Each AS in the world owns a *customer block* (e.g. a /40) carved into
fixed-size delegated prefixes (/56 by default, per RIPE-690), an optional
*infrastructure /48* for router interfaces, and policy knobs:

* **Prefix rotation** — many ISPs renumber customers periodically
  (daily/weekly), the root cause of the paper's "likely prefix
  reassignment" tracking class (§5.2).  Rotation is modelled as a
  time-indexed bijection of rotating customers onto delegation slots:
  ``slot = (customer + epoch * stride) mod R`` with ``R`` a power of two
  and ``stride`` odd, so it is invertible — the probe oracle can map any
  address back to the customer holding it at any instant without
  replaying history.
* **Aliasing** — some providers front their space with middleboxes that
  answer probes to *every* address (§4.2).  An aliased AS responds to
  anything in its customer block, which is how NTP clients can live
  inside aliased /64s.
* **Firewalling** — per-network CPE filtering probability, driving
  backscan responsiveness (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..net.asn import ASRecord
from ..net.prefixes import Prefix
from .rng import derive_seed

__all__ = ["PrefixDelegation", "ASProfile"]


class PrefixDelegation:
    """Invertible time-varying mapping of customers to delegation slots.

    The customer block is split into ``capacity`` prefixes of
    ``delegated_length``.  The lower half of the slot space serves
    rotating customers (bijectively re-shuffled every ``rotation_interval``
    seconds); the upper half serves static customers, one fixed slot each.
    """

    def __init__(
        self,
        customer_block: Prefix,
        delegated_length: int,
        rotating_count: int,
        static_count: int,
        rotation_interval: Optional[float],
        root_seed: int,
        asn: int,
    ) -> None:
        if delegated_length <= customer_block.length:
            raise ValueError(
                "delegated length must exceed the customer block length"
            )
        if delegated_length > 64:
            raise ValueError("delegated prefixes must be /64 or shorter")
        capacity = 1 << (delegated_length - customer_block.length)
        rotating_capacity = capacity // 2
        static_capacity = capacity - rotating_capacity
        if rotating_count > rotating_capacity:
            raise ValueError(
                f"too many rotating customers: {rotating_count} > "
                f"{rotating_capacity}"
            )
        if static_count > static_capacity:
            raise ValueError(
                f"too many static customers: {static_count} > {static_capacity}"
            )
        if rotating_count > 0 and rotation_interval is None:
            raise ValueError("rotating customers need a rotation interval")
        if rotation_interval is not None and rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        self.customer_block = customer_block
        self.delegated_length = delegated_length
        self.rotating_count = rotating_count
        self.static_count = static_count
        self.rotation_interval = rotation_interval
        self._rotating_capacity = rotating_capacity
        self._slot_width = 128 - delegated_length
        # Odd stride -> bijection modulo the power-of-two capacity.
        self._stride = (
            derive_seed(root_seed, "stride", asn) % max(1, rotating_capacity)
        ) | 1

    def _epoch(self, when: float) -> int:
        if self.rotation_interval is None:
            return 0
        return int(when // self.rotation_interval)

    def _slot_of(self, customer_index: int, rotating: bool, when: float) -> int:
        if rotating:
            if not 0 <= customer_index < self.rotating_count:
                raise ValueError(f"bad rotating customer: {customer_index}")
            epoch = self._epoch(when)
            return (
                customer_index + epoch * self._stride
            ) % self._rotating_capacity
        if not 0 <= customer_index < self.static_count:
            raise ValueError(f"bad static customer: {customer_index}")
        return self._rotating_capacity + customer_index

    def delegated_base(
        self, customer_index: int, rotating: bool, when: float
    ) -> int:
        """The delegated prefix's base address for a customer at ``when``."""
        slot = self._slot_of(customer_index, rotating, when)
        return self.customer_block.network | (slot << self._slot_width)

    def delegated_prefix(
        self, customer_index: int, rotating: bool, when: float
    ) -> Prefix:
        """The delegated prefix as a :class:`Prefix`."""
        return Prefix(
            self.delegated_base(customer_index, rotating, when),
            self.delegated_length,
        )

    def locate(self, address: int, when: float) -> Optional[Tuple[int, bool]]:
        """Invert: which ``(customer_index, rotating)`` holds ``address``?

        Returns ``None`` for addresses in unallocated slots.  Raises for
        addresses outside the customer block entirely.
        """
        if not self.customer_block.contains(address):
            raise ValueError(f"address outside customer block: {address:#x}")
        slot = (
            (address - self.customer_block.network) >> self._slot_width
        )
        if slot >= self._rotating_capacity:
            index = slot - self._rotating_capacity
            if index < self.static_count:
                return index, False
            return None
        if self.rotating_count == 0:
            return None
        epoch = self._epoch(when)
        index = (slot - epoch * self._stride) % self._rotating_capacity
        if index < self.rotating_count:
            return index, True
        return None


@dataclass
class ASProfile:
    """Everything the world knows about one AS.

    ``strategy_weights`` describes the client addressing mix of the AS
    (used at population time); the per-AS phenomenology of Figure 4
    emerges from giving different ASes different mixes.
    """

    record: ASRecord
    customer_block: Prefix
    delegation: PrefixDelegation
    infra_prefix: Optional[Prefix] = None
    aliased: bool = False
    firewall_probability: float = 0.25
    cellular: bool = False
    strategy_weights: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.firewall_probability <= 1.0:
            raise ValueError("firewall probability must lie in [0, 1]")
        if self.infra_prefix is not None and self.infra_prefix.length > 48:
            raise ValueError("infrastructure prefix must be /48 or shorter")

    @property
    def asn(self) -> int:
        """The AS number."""
        return self.record.asn

    @property
    def country(self) -> str:
        """The AS's home country."""
        return self.record.country

    def owns(self, address: int) -> bool:
        """True when ``address`` falls in this AS's customer or infra space."""
        if self.customer_block.contains(address):
            return True
        return self.infra_prefix is not None and self.infra_prefix.contains(
            address
        )
