"""Device mobility between networks.

Three movement behaviours generate the paper's §5.2 tracking classes:

* :class:`StaticPlan` — the device never leaves its home network
  ("mostly static hosts", 86% in the paper);
* :class:`ProviderChangePlan` — a one-time switch to a network in a
  different AS ("changing providers", 5%);
* :class:`CommuterPlan` — a phone-like oscillation between a home WiFi
  network and a per-device cellular network in another AS ("likely user
  movement", 0.44%).

Plans are deterministic functions of time so presence can be evaluated
for any instant independently.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .clock import HOUR
from .rng import keyed_uniform

__all__ = ["MobilityPlan", "StaticPlan", "ProviderChangePlan", "CommuterPlan"]


class MobilityPlan(ABC):
    """Where a device is attached, as a function of time."""

    @abstractmethod
    def network_id_at(self, when: float) -> int:
        """The network the device is attached to at ``when``."""

    def networks(self) -> tuple:
        """All network ids this plan can ever return."""
        raise NotImplementedError


class StaticPlan(MobilityPlan):
    """Permanently attached to one network."""

    def __init__(self, network_id: int) -> None:
        self._network_id = network_id

    def network_id_at(self, when: float) -> int:
        return self._network_id

    def networks(self) -> tuple:
        return (self._network_id,)


class ProviderChangePlan(MobilityPlan):
    """A one-time move (e.g. an ISP switch) at ``switch_time``."""

    def __init__(self, before_id: int, after_id: int, switch_time: float) -> None:
        if before_id == after_id:
            raise ValueError("provider change must change networks")
        self._before_id = before_id
        self._after_id = after_id
        self._switch_time = switch_time

    @property
    def switch_time(self) -> float:
        """Instant of the switch."""
        return self._switch_time

    def network_id_at(self, when: float) -> int:
        return self._after_id if when >= self._switch_time else self._before_id

    def networks(self) -> tuple:
        return (self._before_id, self._after_id)


class CommuterPlan(MobilityPlan):
    """Oscillation between a home network and a cellular network.

    Time is divided into fixed blocks (default 6 h); in each block the
    device is away (on cellular) with probability ``away_probability``,
    decided by keyed hashing so the answer for any block is stable.
    """

    def __init__(
        self,
        home_id: int,
        cellular_id: int,
        root_seed: int,
        device_key: int,
        away_probability: float = 0.4,
        block_seconds: float = 6 * HOUR,
    ) -> None:
        if home_id == cellular_id:
            raise ValueError("home and cellular networks must differ")
        if not 0.0 <= away_probability <= 1.0:
            raise ValueError("away probability must lie in [0, 1]")
        if block_seconds <= 0:
            raise ValueError("block size must be positive")
        self._home_id = home_id
        self._cellular_id = cellular_id
        self._root_seed = root_seed
        self._device_key = device_key
        self._away_probability = away_probability
        self._block_seconds = block_seconds

    def network_id_at(self, when: float) -> int:
        block = int(when // self._block_seconds)
        away = (
            keyed_uniform(self._root_seed, "commute", self._device_key, block)
            < self._away_probability
        )
        return self._cellular_id if away else self._home_id

    def networks(self) -> tuple:
        return (self._home_id, self._cellular_id)
