"""The metrics registry: counters, gauges, histograms and spans.

Prometheus-shaped but dependency-free.  A registry owns metric
*families* (one per name); a family owns one instrument per label set.
Everything is plain Python arithmetic — no I/O, no randomness, no
global state — so instrumented hot loops stay deterministic and cheap.

Three export surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict, the
  form carried inside campaign checkpoints and written by the CLI's
  ``--metrics-out`` (following the ``benchmarks/jsonout.py`` flat-JSON
  conventions);
* :meth:`MetricsRegistry.merge_snapshot` — the inverse: fold a snapshot
  back in, summing counters/histograms/spans, so resumed campaigns and
  worker processes report *cumulative* telemetry;
* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format, for scraping or eyeballing.

Histogram bucket boundaries are **fixed at creation** (defaults below)
— never derived from observed data — so two runs of the same workload
always land observations in structurally identical buckets and
snapshots merge without resampling.
"""

from __future__ import annotations

import json
import re
import time
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanStats",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
]

#: Deterministic duration boundaries (seconds): micro-benchmarks through
#: multi-minute campaign windows.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Deterministic magnitude boundaries (counts/sizes): decades from 1 to 10M.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_LabelItems = Tuple[Tuple[str, str], ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"bad metric name: {name!r}")
    return name


def _label_items(labels: Optional[Mapping[str, str]]) -> _LabelItems:
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name: {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _render_labels(items: _LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in items
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _series_key(name: str, items: _LabelItems) -> str:
    """The snapshot key of one instrument: ``name`` or ``name{k="v"}``."""
    return name + _render_labels(items)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount!r}")
        self.value += amount


class Gauge:
    """A value that goes up and down (current pool size, score, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram over fixed boundaries.

    ``counts[i]`` is the number of observations ``<= boundaries[i]``
    exclusive of earlier buckets (i.e. per-bucket, not cumulative —
    rendering cumulates); the final slot counts the ``+Inf`` overflow.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: Tuple[float, ...]) -> None:
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        ordered = tuple(float(b) for b in boundaries)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"bucket boundaries must strictly increase: {boundaries!r}"
            )
        self.boundaries = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, boundary in enumerate(self.boundaries):
            if value <= boundary:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class SpanStats:
    """Accumulated timings of one span name."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds


class _Family:
    """One metric name: its kind, help text and per-label instruments."""

    __slots__ = ("name", "kind", "help", "boundaries", "instruments")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        boundaries: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.boundaries = boundaries
        self.instruments: Dict[_LabelItems, object] = {}


class _SpanHandle:
    """Context manager recording one span duration on exit."""

    __slots__ = ("_registry", "_name", "_clock", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str, clock) -> None:
        self._registry = registry
        self._name = name
        self._clock = clock
        self._t0 = None

    def __enter__(self) -> "_SpanHandle":
        self._t0 = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.record_span(self._name, self._clock() - self._t0)


class MetricsRegistry:
    """A namespace of metric families plus span timings.

    ``clock`` is the default span clock — any zero-argument callable
    returning monotonically non-decreasing seconds.  Pass a
    ``SimClock``-backed lambda where simulation time is the meaningful
    axis; the default is :func:`time.perf_counter` (wall clock).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._families: Dict[str, _Family] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._clock = clock

    # -- instrument access ---------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        boundaries: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(_check_name(name), kind, help_text, boundaries)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if kind == "histogram" and family.boundaries != boundaries:
            raise ValueError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create the counter ``name`` (for one label set)."""
        family = self._family(name, "counter", help_text)
        items = _label_items(labels)
        instrument = family.instruments.get(items)
        if instrument is None:
            instrument = Counter()
            family.instruments[items] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` (for one label set)."""
        family = self._family(name, "gauge", help_text)
        items = _label_items(labels)
        instrument = family.instruments.get(items)
        if instrument is None:
            instrument = Gauge()
            family.instruments[items] = instrument
        return instrument  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_SIZE_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create the histogram ``name`` with fixed ``buckets``."""
        boundaries = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help_text, boundaries)
        items = _label_items(labels)
        instrument = family.instruments.get(items)
        if instrument is None:
            instrument = Histogram(boundaries)
            family.instruments[items] = instrument
        return instrument  # type: ignore[return-value]

    # -- spans ---------------------------------------------------------------

    def span(
        self, name: str, clock: Optional[Callable[[], float]] = None
    ) -> _SpanHandle:
        """Time a ``with`` block under ``name`` (accumulating stats)."""
        _check_name(name.replace("-", "_"))
        return _SpanHandle(self, name, clock or self._clock)

    def record_span(self, name: str, seconds: float) -> None:
        """Record one span duration directly (spans accumulate)."""
        stats = self._spans.get(name)
        if stats is None:
            stats = SpanStats()
            self._spans[name] = stats
        stats.record(seconds)

    def span_seconds(self) -> Dict[str, float]:
        """Total recorded seconds per span name, in first-seen order."""
        return {name: stats.total for name, stats in self._spans.items()}

    # -- export / import -----------------------------------------------------

    def _series(self) -> Iterator[Tuple[_Family, _LabelItems, object]]:
        for family in self._families.values():
            for items, instrument in family.instruments.items():
                yield family, items, instrument

    def counter_value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Current value of a counter series (0 when never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0
        instrument = family.instruments.get(_label_items(labels))
        return 0 if instrument is None else instrument.value

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every series and span."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for family, items, instrument in self._series():
            key = _series_key(family.name, items)
            if family.kind == "counter":
                counters[key] = instrument.value
            elif family.kind == "gauge":
                gauges[key] = instrument.value
            else:
                histograms[key] = {
                    "buckets": list(instrument.boundaries),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
        spans = {
            name: {"count": s.count, "total": s.total, "max": s.max}
            for name, s in self._spans.items()
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold a prior :meth:`snapshot` in, summing cumulative series.

        Counters, histogram buckets and span stats add; gauges take the
        snapshot's value only when the series does not exist here yet
        (a gauge is a *current* reading — the live one wins).  Series
        names carry their rendered labels, so a merged registry reports
        exactly the union of both runs.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._restored_counter(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, items = _parse_series_key(key)
            family = self._family(name, "gauge", "")
            if items not in family.instruments:
                gauge = Gauge()
                gauge.set(value)
                family.instruments[items] = gauge
        for key, dump in snapshot.get("histograms", {}).items():
            name, items = _parse_series_key(key)
            boundaries = tuple(float(b) for b in dump["buckets"])
            histogram = self.histogram(
                name, buckets=boundaries, labels=dict(items)
            )
            if len(dump["counts"]) != len(histogram.counts):
                raise ValueError(
                    f"histogram {key!r} snapshot has "
                    f"{len(dump['counts'])} buckets, registry has "
                    f"{len(histogram.counts)}"
                )
            for index, count in enumerate(dump["counts"]):
                histogram.counts[index] += count
            histogram.sum += dump["sum"]
            histogram.count += dump["count"]
        for name, dump in snapshot.get("spans", {}).items():
            stats = self._spans.get(name)
            if stats is None:
                stats = SpanStats()
                self._spans[name] = stats
            stats.count += dump["count"]
            stats.total += dump["total"]
            if dump["max"] > stats.max:
                stats.max = dump["max"]

    def _restored_counter(self, key: str) -> Counter:
        name, items = _parse_series_key(key)
        return self.counter(name, labels=dict(items))

    def to_json(self, **extra: object) -> str:
        """The snapshot as a JSON document (sorted keys, trailing newline).

        Follows the ``benchmarks/jsonout.py`` conventions: a flat
        top-level with the producing interpreter's version plus the
        snapshot sections; ``extra`` keys land at the top level.
        """
        import platform

        document: Dict[str, object] = {
            "format": "repro-metrics-v1",
            "python": platform.python_version(),
        }
        document.update(extra)
        document.update(self.snapshot())
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (spans as summaries)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for items in sorted(family.instruments):
                instrument = family.instruments[items]
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_render_labels(items)} {instrument.value}"
                    )
                    continue
                cumulative = 0
                for boundary, count in zip(
                    instrument.boundaries, instrument.counts
                ):
                    cumulative += count
                    bucket_items = items + (("le", repr(boundary)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_items)} "
                        f"{cumulative}"
                    )
                inf_items = items + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_render_labels(inf_items)} "
                    f"{instrument.count}"
                )
                labels = _render_labels(items)
                lines.append(f"{name}_sum{labels} {instrument.sum}")
                lines.append(f"{name}_count{labels} {instrument.count}")
        for span_name in sorted(self._spans):
            stats = self._spans[span_name]
            metric = "repro_span_" + span_name.replace("-", "_") + "_seconds"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_sum {stats.total}")
            lines.append(f"{metric}_count {stats.count}")
        return "\n".join(lines) + "\n"


def _parse_series_key(key: str) -> Tuple[str, _LabelItems]:
    """Invert :func:`_series_key` for snapshot import."""
    brace = key.find("{")
    if brace < 0:
        return key, ()
    name = key[:brace]
    body = key[brace + 1 : key.rindex("}")]
    items = []
    for part in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', body):
        label, value = part
        value = (
            value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
        items.append((label, value))
    return name, tuple(items)


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0
    boundaries: Tuple[float, ...] = ()
    counts: List[int] = []

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullMetricsRegistry(MetricsRegistry):
    """A registry that records nothing — the "metrics off" position.

    Instrumented code paths need no conditionals: they talk to this
    exactly as to a live registry.  The determinism test pins that a
    campaign wired to a live registry produces a corpus bit-identical
    to one wired here.
    """

    def counter(self, name, help_text="", labels=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", labels=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, help_text="", buckets=DEFAULT_SIZE_BUCKETS,
                  labels=None):
        return _NULL_INSTRUMENT

    def span(self, name, clock=None):
        return _NULL_SPAN

    def record_span(self, name, seconds):
        pass

    def merge_snapshot(self, snapshot):
        pass


#: Shared no-op registry for "metrics off".
NULL_REGISTRY = NullMetricsRegistry()
