"""Unified observability: metrics registry + lightweight span tracing.

The paper's seven-month campaign lived on operational visibility —
pool-monitor scores, per-vantage capture rates, weekly snapshot sizes.
:mod:`repro.obs` is the substrate the reproduction reports the same
signals through: a dependency-free registry of counters, gauges and
histograms (fixed deterministic bucket boundaries), plus span timing
driven by any monotonic clock (``time.perf_counter`` by default, a
:class:`repro.world.clock.SimClock` where simulation time is the truth).

The invariant everything else leans on: **recording telemetry never
perturbs keyed-RNG determinism**.  Metrics draw no randomness and feed
none back, so a campaign run with a live registry produces a corpus
bit-identical to one run with :data:`NULL_REGISTRY` (test-pinned, like
``FaultPlan.none()``).
"""

from .registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_REGISTRY,
    SpanStats,
)

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "SpanStats",
]
