"""Hitlist-as-a-service: the read-only serving layer over segment stores.

Four pieces (DESIGN.md §14–15):

* :mod:`repro.serve.format` — the ``RSI1`` on-disk serving index:
  columnar, CRC-sealed, derived from seal-time ``.idx`` partials and
  opened zero-copy via mmap.
* :mod:`repro.serve.engine` — the asyncio
  :class:`~repro.serve.engine.CoalescingEngine`, batching concurrent
  lookups into single vectorized kernel calls.
* :mod:`repro.serve.wire` — the shared query-op registry and the
  ``RSB1`` binary wire codec (length-prefixed, CRC-sealed frames with
  columnar payloads), negotiated per connection with a JSON-lines
  fallback.
* :mod:`repro.serve.service` — the TCP
  :class:`~repro.serve.service.HitlistServer` and the local/remote
  client pair behind :func:`repro.api.connect`.

Typical use::

    from repro.serve import ensure_serving_index, CoalescingEngine

    index = ensure_serving_index("segments/", routing=world.routing)
    engine = CoalescingEngine(index)
    asn = await engine.query("origin", address)

or, end to end, ``repro serve segments/`` and
``await repro.api.connect("host:port")``.
"""

from .engine import (
    CoalescingEngine,
    DEFAULT_ORIGIN_CACHE_SLASH64S,
    QUERY_OPS,
)
from .fleet import (
    FleetConfig,
    IndexReloader,
    reuseport_socket,
    run_single,
    run_supervisor,
)
from .format import (
    ColumnarResults,
    SERVING_INDEX_NAME,
    SERVING_LOCK_NAME,
    ServingIndex,
    ServingIndexError,
    build_serving_index,
    ensure_serving_index,
    flatten_origin_table,
    manifest_digest,
    manifest_fingerprint,
    serving_build_lock,
)
from .service import (
    DEFAULT_MAX_PIPELINE,
    HitlistServer,
    LocalHitlistClient,
    READY_PREFIX,
    RemoteHitlistClient,
)
from .wire import (
    AddressBlock,
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorruptError,
    FrameTooLargeError,
    PROTOCOL_BINARY,
    PROTOCOL_JSON,
    QUERY_OP_TABLE,
    QueryOp,
    WIRE_VERSION,
    WireError,
    WireProtocolError,
    resolve_op,
)

__all__ = [
    "AddressBlock",
    "CoalescingEngine",
    "ColumnarResults",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_MAX_PIPELINE",
    "DEFAULT_ORIGIN_CACHE_SLASH64S",
    "FleetConfig",
    "FrameCorruptError",
    "FrameTooLargeError",
    "HitlistServer",
    "IndexReloader",
    "LocalHitlistClient",
    "PROTOCOL_BINARY",
    "PROTOCOL_JSON",
    "QUERY_OPS",
    "QUERY_OP_TABLE",
    "QueryOp",
    "READY_PREFIX",
    "RemoteHitlistClient",
    "WIRE_VERSION",
    "WireError",
    "WireProtocolError",
    "SERVING_INDEX_NAME",
    "SERVING_LOCK_NAME",
    "ServingIndex",
    "ServingIndexError",
    "build_serving_index",
    "ensure_serving_index",
    "flatten_origin_table",
    "manifest_digest",
    "manifest_fingerprint",
    "reuseport_socket",
    "resolve_op",
    "run_single",
    "run_supervisor",
    "serving_build_lock",
]
