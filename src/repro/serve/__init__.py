"""Hitlist-as-a-service: the read-only serving layer over segment stores.

Three pieces (DESIGN.md §14):

* :mod:`repro.serve.format` — the ``RSI1`` on-disk serving index:
  columnar, CRC-sealed, derived from seal-time ``.idx`` partials and
  opened zero-copy via mmap.
* :mod:`repro.serve.engine` — the asyncio
  :class:`~repro.serve.engine.CoalescingEngine`, batching concurrent
  lookups into single vectorized kernel calls.
* :mod:`repro.serve.service` — the JSON-lines TCP
  :class:`~repro.serve.service.HitlistServer` and the local/remote
  client pair behind :func:`repro.api.connect`.

Typical use::

    from repro.serve import ensure_serving_index, CoalescingEngine

    index = ensure_serving_index("segments/", routing=world.routing)
    engine = CoalescingEngine(index)
    asn = await engine.query("origin", address)

or, end to end, ``repro serve segments/`` and
``await repro.api.connect("host:port")``.
"""

from .engine import (
    CoalescingEngine,
    DEFAULT_ORIGIN_CACHE_SLASH64S,
    QUERY_OPS,
)
from .fleet import (
    FleetConfig,
    IndexReloader,
    reuseport_socket,
    run_single,
    run_supervisor,
)
from .format import (
    SERVING_INDEX_NAME,
    SERVING_LOCK_NAME,
    ServingIndex,
    ServingIndexError,
    build_serving_index,
    ensure_serving_index,
    flatten_origin_table,
    manifest_digest,
    manifest_fingerprint,
    serving_build_lock,
)
from .service import (
    DEFAULT_MAX_PIPELINE,
    HitlistServer,
    LocalHitlistClient,
    READY_PREFIX,
    RemoteHitlistClient,
)

__all__ = [
    "CoalescingEngine",
    "DEFAULT_MAX_PIPELINE",
    "DEFAULT_ORIGIN_CACHE_SLASH64S",
    "FleetConfig",
    "HitlistServer",
    "IndexReloader",
    "LocalHitlistClient",
    "QUERY_OPS",
    "READY_PREFIX",
    "RemoteHitlistClient",
    "SERVING_INDEX_NAME",
    "SERVING_LOCK_NAME",
    "ServingIndex",
    "ServingIndexError",
    "build_serving_index",
    "ensure_serving_index",
    "flatten_origin_table",
    "manifest_digest",
    "manifest_fingerprint",
    "reuseport_socket",
    "run_single",
    "run_supervisor",
    "serving_build_lock",
]
