"""``RSB1``: the length-prefixed binary wire protocol for the serving layer.

JSON-lines (PR 8) is self-describing and debuggable, but at batch sizes
in the hundreds the server spends more time in ``json.dumps``/``loads``
than in the vectorized kernels.  RSB1 replaces the *encoding*, not the
protocol shape: requests and replies still carry a correlation id, may
be pipelined, and may be answered out of order.

Frame layout (all integers little-endian)::

    header (24 bytes):
        magic          b"RSB1"
        version        u8    (currently 1)
        kind           u8    0 = request, 1 = reply, 2 = error
        op             u8    QueryOp code (0 in error frames)
        (1 zero byte reserved)
        request_id     u64
        count          u32   items in the payload (addresses or results)
        payload_bytes  u32
    payload (payload_bytes bytes)
    trailer (4 bytes):
        crc32          u32 over header + payload

Request payloads are the address batch as a packed u128 column — each
address is 16 bytes little-endian, i.e. the lo u64 word then the hi u64
word — which :class:`AddressBlock` turns back into the hi/lo u64 columns
the vectorized kernels consume **without copying** (two strided numpy
views over the received buffer).  Reply payloads are typed per op (see
``QUERY_OP_TABLE``): columnar, with a leading u8 presence mask wherever
results can be None, so both sides decode with ``frombuffer`` instead of
a parser.  Error payloads are ``uvarint(code) + utf-8 message``.

Negotiation: a binary-capable client's *first* line on a fresh
connection is a perfectly ordinary JSON-lines request::

    {"id": 0, "op": "hello", "args": ["RSB1", 1]}

A binary-capable server replies ``{"id": 0, "results": [{"protocol":
"binary", ...}]}`` and flips the connection to RSB1 frames; a
json-configured new server replies ``{"protocol": "json"}``; an *old*
server answers it like any unknown op — a correlated error — so the
client downgrades to JSON-lines on the same connection.  Old clients
never send a hello and keep speaking JSON-lines unchanged.

Failure taxonomy: every decode failure raises a typed
:class:`WireError` (a :class:`ConnectionError` subclass, so existing
"transport died" handling keeps working) — :class:`FrameTooLargeError`,
:class:`FrameCorruptError`, or :class:`WireProtocolError` — and maps to
a numeric code in error frames and a ``"code"`` field in JSON error
replies.  Request-scoped failures (unknown op, engine errors) use code
``REQUEST_ERROR`` and leave the connection usable, exactly like the
JSON path's per-request error replies.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from array import array
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import kernels as _kernels
from .format import (
    ColumnarResults,
    crc32_of,
    le_bytes,
    pack_uvarint,
    unpack_uvarint,
)

__all__ = [
    "AddressBlock",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_HEADER_SIZE",
    "FRAME_TRAILER_SIZE",
    "FrameCorruptError",
    "FrameTooLargeError",
    "HELLO_OP",
    "KIND_ERROR",
    "KIND_REPLY",
    "KIND_REQUEST",
    "PROTOCOL_BINARY",
    "PROTOCOL_JSON",
    "QUERY_OP_TABLE",
    "QueryOp",
    "REQUEST_ERROR",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "WireProtocolError",
    "resolve_op",
]

WIRE_MAGIC = b"RSB1"
WIRE_VERSION = 1

#: Negotiated protocol names (the ``protocol=`` values everywhere).
PROTOCOL_BINARY = "binary"
PROTOCOL_JSON = "json"

#: The JSON-lines op a binary-capable client opens a connection with.
HELLO_OP = "hello"

KIND_REQUEST = 0
KIND_REPLY = 1
KIND_ERROR = 2

_FRAME_HEADER = struct.Struct("<4sBBBxQII")
FRAME_HEADER_SIZE = _FRAME_HEADER.size  # 24
FRAME_TRAILER_SIZE = 4
_TRAILER = struct.Struct("<I")

#: Default frame/line size bound on both protocols (``--max-frame-bytes``):
#: a ~512k-address binary request, or the JSON line bound PR 8 shipped.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Smallest accepted ``--max-frame-bytes``: room for the frame overhead,
#: a stats reply, and any error message.
MIN_FRAME_BYTES = 4096

_ADDRESS_SPACE = 1 << 128
_U64_MASK = (1 << 64) - 1


# -- error taxonomy ------------------------------------------------------------

#: Numeric code of request-scoped error frames (unknown op, engine
#: failure): the connection stays usable, only that request fails.
REQUEST_ERROR = 0


class WireError(ConnectionError):
    """A wire-level failure that poisons the whole connection.

    Subclasses carry a stable ``code`` (the ``"code"`` field of JSON
    error replies) and ``number`` (the uvarint in binary error frames).
    ``request_id`` is the frame the failure was detected in, when one
    was parseable — so servers can attribute the error frame they send
    before closing.
    """

    code = "wire-error"
    number = 255

    def __init__(self, message: str, *, request_id: Optional[int] = None):
        super().__init__(message)
        self.request_id = request_id


class FrameTooLargeError(WireError):
    """A frame or line larger than the negotiated ``max_frame_bytes``."""

    code = "frame-too-large"
    number = 1


class FrameCorruptError(WireError):
    """A truncated frame, bad magic, or CRC mismatch."""

    code = "frame-corrupt"
    number = 2


class WireProtocolError(WireError):
    """A well-formed frame the protocol state machine cannot accept."""

    code = "protocol-error"
    number = 3


_ERROR_BY_NUMBER: Dict[int, type] = {
    cls.number: cls
    for cls in (FrameTooLargeError, FrameCorruptError, WireProtocolError)
}
_ERROR_BY_CODE: Dict[str, type] = {
    cls.code: cls
    for cls in (FrameTooLargeError, FrameCorruptError, WireProtocolError)
}


def error_for(number: int, message: str) -> WireError:
    """Typed exception for a received binary error frame's code."""
    return _ERROR_BY_NUMBER.get(number, WireError)(message)


def typed_error_class(code) -> Optional[type]:
    """Exception class for a JSON error reply's ``"code"``, if typed."""
    return _ERROR_BY_CODE.get(code) if isinstance(code, str) else None


# -- the QueryOp registry ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class QueryOp:
    """One serving query op: wire code ↔ name ↔ reply dtype ↔ surface.

    ``reply`` names the columnar reply payload family (see the
    ``_encode_*``/``_decode_*`` pairs below); ``surface`` is the client
    method base name (``in_slash48`` for the wire op ``slash48``);
    ``tupled`` ops shape each present result as a tuple; non-
    ``addressed`` ops take no address batch (stats).
    """

    code: int
    name: str
    reply: str
    surface: str
    tupled: bool = False
    addressed: bool = True


#: Every op both protocols serve.  Codes are wire ABI — append, never
#: renumber.  (DESIGN.md §15 mirrors this table.)
QUERY_OP_TABLE: Tuple[QueryOp, ...] = (
    QueryOp(1, "record", "record", "record", tupled=True),
    QueryOp(2, "lifetime", "f64opt", "lifetime"),
    QueryOp(3, "entropy", "f64opt", "entropy"),
    QueryOp(4, "features", "features", "features", tupled=True),
    QueryOp(5, "origin", "asn", "origin"),
    QueryOp(6, "contains", "bool", "contains"),
    QueryOp(7, "slash48", "bool", "in_slash48"),
    QueryOp(8, "slash64", "bool", "in_slash64"),
    QueryOp(15, "stats", "json", "stats", addressed=False),
)

OP_BY_CODE: Dict[int, QueryOp] = {spec.code: spec for spec in QUERY_OP_TABLE}
OP_BY_NAME: Dict[str, QueryOp] = {spec.name: spec for spec in QUERY_OP_TABLE}

#: The address-batch ops — what :class:`CoalescingEngine` executes.
ADDRESS_OPS: Tuple[QueryOp, ...] = tuple(
    spec for spec in QUERY_OP_TABLE if spec.addressed
)


def resolve_op(op: Union["QueryOp", int, str]) -> QueryOp:
    """Registry lookup accepting a spec, a wire code, or a name."""
    if isinstance(op, QueryOp):
        return op
    if isinstance(op, int) and not isinstance(op, bool):
        spec = OP_BY_CODE.get(op)
    else:
        spec = OP_BY_NAME.get(op)
    if spec is None:
        raise ValueError(
            f"unknown query op {op!r}; serving ops: "
            + ", ".join(spec.name for spec in QUERY_OP_TABLE)
        )
    return spec


# -- zero-copy address columns -------------------------------------------------


class AddressBlock:
    """A batch of 128-bit addresses as hi/lo u64 columns.

    Decoded request payloads become blocks whose ``hi``/``lo`` columns
    are **strided views over the received bytes** (numpy path) — the
    vectorized kernels consume them directly, so a binary request is
    never materialized into Python ints on the hot path.
    ``ServingIndex``'s batch methods detect the pre-split columns by
    the ``hi`` attribute and skip their per-int validation loop;
    addresses from the wire are range-valid by construction.

    Behaves enough like a sequence of int addresses for the coalescing
    engine: ``len``, indexing, slicing (returns a sub-block), and
    iteration (yields plain ints).
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi, lo) -> None:
        self.hi = hi
        self.lo = lo

    @classmethod
    def from_addresses(cls, addresses: Sequence[int]) -> "AddressBlock":
        hi: List[int] = []
        lo: List[int] = []
        for address in addresses:
            hi.append(address >> 64)
            lo.append(address & _U64_MASK)
        return cls(hi, lo)

    @classmethod
    def from_payload(cls, payload, count: int) -> "AddressBlock":
        """Wrap a request payload's packed u128 column, zero-copy."""
        if len(payload) != 16 * count:
            raise ValueError(
                f"address payload is {len(payload)} bytes for "
                f"{count} addresses (expected {16 * count})"
            )
        np = _kernels._np
        if np is not None:
            words = np.frombuffer(payload, dtype="<u8")
            return cls(words[1::2], words[0::2])
        words = array("Q")
        words.frombytes(bytes(payload))
        if _BIG_ENDIAN:  # pragma: no cover - no big-endian CI platform
            words.byteswap()
        return cls(list(words[1::2]), list(words[0::2]))

    @classmethod
    def concat(
        cls, blocks: Sequence["AddressBlock"]
    ) -> Optional["AddressBlock"]:
        """One block holding every input's addresses, in order — numpy
        column concatenation, so the coalescing engine merges same-tick
        binary requests without materializing their zero-copy payload
        views into Python ints.  None when the columns are not numpy
        arrays (the caller flattens to a plain int list instead)."""
        np = _kernels._np
        if np is None or not all(
            isinstance(block.hi, np.ndarray) for block in blocks
        ):
            return None
        if len(blocks) == 1:
            return blocks[0]
        return cls(
            np.concatenate([block.hi for block in blocks]),
            np.concatenate([block.lo for block in blocks]),
        )

    def __len__(self) -> int:
        return len(self.hi)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return AddressBlock(self.hi[item], self.lo[item])
        return (int(self.hi[item]) << 64) | int(self.lo[item])

    def __iter__(self):
        for hi, lo in zip(self.hi, self.lo):
            yield (int(hi) << 64) | int(lo)


_BIG_ENDIAN = struct.pack("=H", 1) == struct.pack(">H", 1)


# -- frame encode --------------------------------------------------------------


def encode_frame(
    kind: int, opcode: int, request_id: int, count: int, payload: bytes
) -> bytes:
    header = _FRAME_HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, kind, opcode, request_id, count,
        len(payload),
    )
    return header + payload + _TRAILER.pack(crc32_of(header, payload))


def encode_request(
    spec: QueryOp,
    request_id: int,
    addresses: Sequence[int],
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """One request frame; validates addresses and the frame bound."""
    if not spec.addressed:
        return encode_frame(KIND_REQUEST, spec.code, request_id, 0, b"")
    count = len(addresses)
    limit = max_frame_bytes - FRAME_HEADER_SIZE - FRAME_TRAILER_SIZE
    if 16 * count > limit:
        raise FrameTooLargeError(
            f"{count}-address batch needs {16 * count} payload bytes, "
            f"over the {max_frame_bytes}-byte frame bound",
            request_id=request_id,
        )
    payload = None
    np = _kernels._np
    if np is not None:
        # Vectorized pack: two fromiter passes beat per-address
        # int.to_bytes + join severalfold at serving batch sizes.  Any
        # bad address drops to the scalar path for its exact error.
        try:
            lo = np.fromiter(
                (address & _U64_MASK for address in addresses),
                dtype=np.uint64,
                count=count,
            )
            hi = np.fromiter(
                (address >> 64 for address in addresses),
                dtype=np.uint64,
                count=count,
            )
        except (TypeError, OverflowError):
            payload = None
        else:
            words = np.empty(2 * count, dtype="<u8")
            words[0::2] = lo
            words[1::2] = hi
            payload = words.tobytes()
    if payload is None:
        try:
            payload = b"".join(
                address.to_bytes(16, "little") for address in addresses
            )
        except (AttributeError, OverflowError):
            # Match the JSON path's server-side rejection wording.
            bad = next(
                a
                for a in addresses
                if not isinstance(a, int) or not 0 <= a < _ADDRESS_SPACE
            )
            if not isinstance(bad, int):
                raise ValueError(
                    f"addresses must be ints, not {type(bad).__name__}"
                ) from None
            raise ValueError(f"address out of range: {bad:#x}") from None
    return encode_frame(KIND_REQUEST, spec.code, request_id, count, payload)


def encode_error(request_id: int, number: int, message: str) -> bytes:
    payload = pack_uvarint(number) + message.encode("utf-8")
    return encode_frame(KIND_ERROR, 0, request_id, 0, payload)


def decode_error(payload) -> Tuple[int, str]:
    number, offset = unpack_uvarint(payload, 0)
    return number, bytes(payload[offset:]).decode("utf-8", "replace")


# -- frame decode --------------------------------------------------------------


def parse_frame_header(
    header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, int, int, int, int]:
    """``(kind, opcode, request_id, count, payload_bytes)``, validated.

    Checked *before* any payload read, so an adversarial or corrupt
    length never triggers an unbounded buffer.
    """
    magic, version, kind, opcode, request_id, count, payload_bytes = (
        _FRAME_HEADER.unpack(header)
    )
    if magic != WIRE_MAGIC:
        raise FrameCorruptError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported wire version {version} (speaking {WIRE_VERSION})",
            request_id=request_id,
        )
    if kind not in (KIND_REQUEST, KIND_REPLY, KIND_ERROR):
        raise WireProtocolError(
            f"unknown frame kind {kind}", request_id=request_id
        )
    limit = max_frame_bytes - FRAME_HEADER_SIZE - FRAME_TRAILER_SIZE
    if payload_bytes > limit:
        raise FrameTooLargeError(
            f"frame payload of {payload_bytes} bytes is over the "
            f"{max_frame_bytes}-byte frame bound",
            request_id=request_id,
        )
    return kind, opcode, request_id, count, payload_bytes


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
):
    """Read one frame: ``(kind, opcode, request_id, count, payload)``.

    Returns ``None`` on clean EOF (no bytes).  Any malformed input —
    truncation mid-frame, bad magic, an oversized or corrupt frame —
    raises a typed :class:`WireError`; reads are bounded by the header's
    (validated) payload length, so garbage can never hang the reader by
    promising bytes that fit no bound.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameCorruptError(
            f"connection closed {len(error.partial)} bytes into a "
            f"{FRAME_HEADER_SIZE}-byte frame header"
        ) from None
    kind, opcode, request_id, count, payload_bytes = parse_frame_header(
        header, max_frame_bytes=max_frame_bytes
    )
    try:
        body = await reader.readexactly(payload_bytes + FRAME_TRAILER_SIZE)
    except asyncio.IncompleteReadError:
        raise FrameCorruptError(
            "connection closed mid-frame", request_id=request_id
        ) from None
    payload = memoryview(body)[:payload_bytes]
    stored = _TRAILER.unpack_from(body, payload_bytes)[0]
    actual = crc32_of(header, payload)
    if stored != actual:
        raise FrameCorruptError(
            f"frame CRC mismatch: stored {stored:#010x}, "
            f"actual {actual:#010x}",
            request_id=request_id,
        )
    return kind, opcode, request_id, count, payload


def decode_request(
    opcode: int, count: int, payload
) -> Tuple[QueryOp, Optional[AddressBlock]]:
    """Server-side request decode: the op spec plus its address block.

    Unknown ops and shape mismatches raise :class:`ValueError` — the
    frame passed its CRC, so the failure is the *request's*, answered
    with a ``REQUEST_ERROR`` frame on a connection that stays usable
    (the same contract as a JSON request naming an unknown op).
    """
    spec = OP_BY_CODE.get(opcode)
    if spec is None:
        raise ValueError(
            f"unknown query op code {opcode}; serving ops: "
            + ", ".join(f"{s.name}={s.code}" for s in QUERY_OP_TABLE)
        )
    if not spec.addressed:
        if count or len(payload):
            raise ValueError(f"op {spec.name!r} takes no address payload")
        return spec, None
    return spec, AddressBlock.from_payload(payload, count)


# -- typed columnar reply payloads ---------------------------------------------


def _mask_and(results: Sequence) -> bytes:
    mask = bytearray(len(results))
    for i, value in enumerate(results):
        if value is not None:
            mask[i] = 1
    return bytes(mask)


def _le_column(column, dtype: str) -> bytes:
    """One reply column as little-endian bytes (no-copy when already so)."""
    np = _kernels._np
    return np.ascontiguousarray(column, dtype=dtype).tobytes()


def _encode_columnar(spec: QueryOp, results: ColumnarResults) -> bytes:
    """Vectorized encode of a columnar batch — one ``tobytes`` per
    column, byte-identical to the list encoder below (masked-out
    entries are zeroed at the source)."""
    family = spec.reply
    columns = results.columns
    if family == "bool":
        return _le_column(columns[0], "u1")
    if family == "asn":
        return _le_column(columns[0], "<u4")
    mask = _le_column(results.mask, "u1")
    if family == "f64opt":
        return mask + _le_column(columns[0], "<f8")
    if family == "record":
        first, last, counts = columns
        return (
            mask
            + _le_column(first, "<f8")
            + _le_column(last, "<f8")
            + _le_column(counts, "<u8")
        )
    if family == "features":
        entropies, codes, macs = columns
        return (
            mask
            + _le_column(codes, "u1")
            + _le_column(entropies, "<f8")
            + _le_column(macs, "<u8")
        )
    raise AssertionError(f"unencodable columnar family {family!r}")


def _encode_results(spec: QueryOp, results: Sequence) -> bytes:
    if isinstance(results, ColumnarResults):
        return _encode_columnar(spec, results)
    count = len(results)
    family = spec.reply
    if family == "bool":
        return bytes(bytearray(results))
    if family == "f64opt":
        values = array("d", bytes(8 * count))
        for i, value in enumerate(results):
            if value is not None:
                values[i] = value
        return _mask_and(results) + le_bytes(values)
    if family == "record":
        first = array("d", bytes(8 * count))
        last = array("d", bytes(8 * count))
        counts = array("Q", bytes(8 * count))
        for i, value in enumerate(results):
            if value is not None:
                first[i], last[i], counts[i] = value
        return (
            _mask_and(results)
            + le_bytes(first)
            + le_bytes(last)
            + le_bytes(counts)
        )
    if family == "features":
        codes = array("B", bytes(count))
        entropies = array("d", bytes(8 * count))
        macs = array("Q", bytes(8 * count))
        for i, value in enumerate(results):
            if value is not None:
                entropies[i] = value[0]
                codes[i] = value[1]
                macs[i] = _kernels.NO_MAC if value[2] is None else value[2]
        return (
            _mask_and(results)
            + le_bytes(codes)
            + le_bytes(entropies)
            + le_bytes(macs)
        )
    if family == "asn":
        asns = array(
            "I", (0 if value is None else value for value in results)
        )
        return le_bytes(asns)
    if family == "json":
        return json.dumps(results, separators=(",", ":")).encode("utf-8")
    raise AssertionError(f"unencodable reply family {family!r}")


def encode_reply(
    spec: QueryOp, request_id: int, results: Sequence
) -> bytes:
    return encode_frame(
        KIND_REPLY,
        spec.code,
        request_id,
        len(results),
        _encode_results(spec, results),
    )


def _check_payload_size(
    spec: QueryOp, payload, expected: int, request_id: int
) -> None:
    if len(payload) != expected:
        raise FrameCorruptError(
            f"{spec.name} reply payload is {len(payload)} bytes "
            f"(expected {expected})",
            request_id=request_id,
        )


def _column(payload, offset: int, count: int, width: int, code: str):
    """Decode one little-endian column to a plain list of Python values."""
    end = offset + width * count
    np = _kernels._np
    if np is not None:
        dtype = {"d": "<f8", "Q": "<u8", "I": "<u4", "B": "u1"}[code]
        return np.frombuffer(payload[offset:end], dtype=dtype).tolist(), end
    column = array(code)
    column.frombytes(bytes(payload[offset:end]))
    if _BIG_ENDIAN:  # pragma: no cover - no big-endian CI platform
        column.byteswap()
    return column.tolist(), end


def decode_results(
    spec: QueryOp, count: int, payload, *, request_id: int = 0
) -> List:
    """Client-side reply decode back to the JSON path's exact values."""
    family = spec.reply
    if family == "bool":
        _check_payload_size(spec, payload, count, request_id)
        return [byte != 0 for byte in bytes(payload)]
    if family == "f64opt":
        _check_payload_size(spec, payload, 9 * count, request_id)
        mask = bytes(payload[:count])
        values, _ = _column(payload, count, count, 8, "d")
        return [
            value if present else None
            for present, value in zip(mask, values)
        ]
    if family == "record":
        _check_payload_size(spec, payload, 25 * count, request_id)
        mask = bytes(payload[:count])
        first, offset = _column(payload, count, count, 8, "d")
        last, offset = _column(payload, offset, count, 8, "d")
        counts, _ = _column(payload, offset, count, 8, "Q")
        return [
            (first[i], last[i], counts[i]) if mask[i] else None
            for i in range(count)
        ]
    if family == "features":
        _check_payload_size(spec, payload, 18 * count, request_id)
        mask = bytes(payload[:count])
        codes = bytes(payload[count : 2 * count])
        entropies, offset = _column(payload, 2 * count, count, 8, "d")
        macs, _ = _column(payload, offset, count, 8, "Q")
        return [
            (
                entropies[i],
                codes[i],
                None if macs[i] == _kernels.NO_MAC else macs[i],
            )
            if mask[i]
            else None
            for i in range(count)
        ]
    if family == "asn":
        _check_payload_size(spec, payload, 4 * count, request_id)
        asns, _ = _column(payload, 0, count, 4, "I")
        return [None if asn == 0 else asn for asn in asns]
    if family == "json":
        try:
            results = json.loads(bytes(payload).decode("utf-8"))
        except ValueError:
            raise FrameCorruptError(
                f"undecodable {spec.name} reply payload",
                request_id=request_id,
            ) from None
        if not isinstance(results, list) or len(results) != count:
            raise FrameCorruptError(
                f"{spec.name} reply shape disagrees with its count",
                request_id=request_id,
            )
        return results
    raise AssertionError(f"undecodable reply family {family!r}")


# -- the hello handshake -------------------------------------------------------


def encode_hello_line(request_id: int = 0) -> bytes:
    """The JSON-lines hello a binary-capable client opens with."""
    return (
        json.dumps(
            {
                "id": request_id,
                "op": HELLO_OP,
                "args": [WIRE_MAGIC.decode("ascii"), WIRE_VERSION],
            },
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def hello_accepts(request: Dict[str, object]) -> bool:
    """Whether a parsed hello request speaks a version we can serve."""
    args = request.get("args")
    return (
        isinstance(args, list)
        and len(args) >= 2
        and args[0] == WIRE_MAGIC.decode("ascii")
        and isinstance(args[1], int)
        and args[1] >= WIRE_VERSION
    )


def hello_reply(binary: bool) -> Dict[str, object]:
    """The single result of a served hello (the negotiation outcome)."""
    if binary:
        return {
            "protocol": PROTOCOL_BINARY,
            "version": WIRE_VERSION,
            "ops": {spec.name: spec.code for spec in QUERY_OP_TABLE},
        }
    return {"protocol": PROTOCOL_JSON, "version": WIRE_VERSION}


def negotiated_protocol(reply: Dict[str, object]) -> str:
    """Client-side read of a hello reply: the protocol to speak next.

    Any reply that is not an affirmative binary grant — an error (an old
    server treating hello as an unknown op), a json grant, or anything
    unrecognizable — downgrades to JSON-lines, which every server
    speaks.
    """
    results = reply.get("results")
    if (
        isinstance(results, list)
        and results
        and isinstance(results[0], dict)
        and results[0].get("protocol") == PROTOCOL_BINARY
        and results[0].get("version") == WIRE_VERSION
    ):
        return PROTOCOL_BINARY
    return PROTOCOL_JSON
