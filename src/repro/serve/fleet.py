"""The production serving topology: pre-fork workers + live reload.

One asyncio process answers queries as fast as one CPU decodes JSON.
Past that, the serving layer scales *out*, not up: a **supervisor**
process builds (or validates) ``SERVING.rsi`` once, then forks N worker
processes that each open the same file mmap-read-only — one page-cache
copy for the whole fleet — and each bind their own ``SO_REUSEPORT``
socket to the shared port, so the kernel spreads incoming connections
across workers with no userspace proxy.  The supervisor restarts
crashed workers with capped exponential backoff
(``repro_serve_worker_restarts_total``), propagates SIGTERM (each
worker drains in-flight requests before exiting), and aggregates the
per-worker ``--metrics-out`` snapshots into one document on shutdown.

The index, meanwhile, stays **live**: every worker polls the
``(mtime_ns, size, digest)`` fingerprint of ``MANIFEST.json`` (the
parse is cached, so an unchanged manifest costs one ``stat``), and when
a commit or compaction moves the segment list, one builder is elected
via an advisory ``flock`` — the winner rebuilds ``SERVING.rsi`` from
the seal-time partials, the losers block then reuse the fresh file —
and each worker atomically swaps the new :class:`ServingIndex` into its
:class:`CoalescingEngine` between event-loop ticks
(``repro_serve_index_reloads_total``).  Batches execute synchronously
within a tick, so no kernel call ever straddles a swap; the replaced
mmap stays valid until closed, so answers already in flight are safe.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import multiprocessing
import multiprocessing.connection
import os
import select
import signal
import socket
import time
from functools import partial
from pathlib import Path
from typing import Callable, Dict, Optional

from ..obs import MetricsRegistry, NULL_REGISTRY
from .engine import CoalescingEngine
from .format import (
    ServingIndex,
    ensure_serving_index,
    manifest_fingerprint,
)
from .service import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_MAX_PIPELINE,
    HitlistServer,
    READY_PREFIX,
)

__all__ = [
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_RELOAD_INTERVAL",
    "FleetConfig",
    "IndexReloader",
    "reuseport_socket",
    "run_single",
    "run_supervisor",
]

logger = logging.getLogger("repro.serve.fleet")

#: Default seconds between manifest-fingerprint polls (0 disables).
DEFAULT_RELOAD_INTERVAL = 1.0

#: Default seconds in-flight requests get to flush replies on SIGTERM.
DEFAULT_DRAIN_TIMEOUT = 5.0

_RESTART_BACKOFF_BASE = 0.2
_RESTART_BACKOFF_CAP = 5.0
#: A worker that lived at least this long resets its backoff streak.
_RESTART_RESET_SECONDS = 10.0
#: How long the supervisor waits for the initial fleet to come up.
_READY_TIMEOUT = 120.0


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Everything a serving process (or fleet) needs, picklable.

    ``scale``/``seed`` describe the synthetic world whose routing table
    backs origin queries; workers rebuild it lazily — only if a live
    reload actually has to rebuild the index.
    """

    directory: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    scale: Optional[str] = None
    seed: int = 7
    rebuild: bool = False
    reload_interval: float = DEFAULT_RELOAD_INTERVAL
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    metrics_out: Optional[str] = None
    max_pipeline: int = DEFAULT_MAX_PIPELINE
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Refuse RSB1 upgrades: every connection stays JSON-lines.
    json_only: bool = False


def _routing_provider(config: FleetConfig) -> Optional[Callable]:
    """A lazy, memoized routing-table builder (None without ``scale``).

    Passed to :func:`ensure_serving_index` as its callable form: the
    provider's *presence* demands an origin table, but the (costly)
    world rebuild runs only when an index build actually happens.
    """
    if config.scale is None:
        return None
    cache: Dict[str, object] = {}

    def provide():
        if "routing" not in cache:
            from ..world import build_world, preset_config

            cache["routing"] = build_world(
                preset_config(config.scale, seed=config.seed)
            ).routing
        return cache["routing"]

    return provide


def reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound (not listening) TCP socket with ``SO_REUSEPORT`` set.

    Every fleet member binds its own socket to the same ``(host,
    port)`` — that is what makes the kernel load-balance accepts across
    workers.  The supervisor binds one too (resolving port 0 to a real
    port, and keeping the port reserved across worker restarts) but
    never listens on it, so it receives no connections.
    """
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - non-Linux
        raise RuntimeError(
            "SO_REUSEPORT is unavailable on this platform; "
            "multi-worker serving requires it"
        )
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """JSON snapshot by default, Prometheus text for .prom/.txt."""
    target = Path(path)
    if target.suffix in {".prom", ".txt"}:
        target.write_text(registry.render_prometheus())
    else:
        target.write_text(registry.to_json())
    logger.info("metrics written to %s", target)


# -- live index reload ---------------------------------------------------------


class IndexReloader:
    """Watch the manifest; hot-swap the engine's index when it moves.

    Each poll compares the manifest's ``(mtime_ns, size, digest)``
    fingerprint against the last one seen.  A digest change means the
    segment list the current index was derived from is gone: the
    reloader rebuilds-or-reuses ``SERVING.rsi`` under the advisory
    build lock (in a thread, so queries keep flowing off the old
    snapshot), swaps it into the engine between ticks, and closes the
    old index — whose mmap stays valid for any still-referenced view.
    """

    def __init__(
        self,
        engine: CoalescingEngine,
        directory,
        *,
        routing=None,
        metrics: Optional[MetricsRegistry] = None,
        interval: float = DEFAULT_RELOAD_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0: {interval}")
        directory = Path(directory)
        if directory.name in ("MANIFEST.json", "SERVING.rsi"):
            directory = directory.parent
        self.engine = engine
        self.directory = directory
        self.routing = routing
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.interval = interval
        self._m_reloads = self.metrics.counter(
            "repro_serve_index_reloads_total",
            "serving indexes hot-swapped after a manifest change",
        )
        self._fingerprint = manifest_fingerprint(directory)

    async def poll_once(self) -> bool:
        """One poll; True when an index swap happened."""
        fingerprint = manifest_fingerprint(self.directory)
        if fingerprint is None or fingerprint == self._fingerprint:
            return False
        if fingerprint[2] == self.engine.index.source_digest:
            # The file was rewritten (watermark bump, metrics merge)
            # but the segment list — hence every answer — is the same.
            self._fingerprint = fingerprint
            return False
        loop = asyncio.get_running_loop()
        new_index = await loop.run_in_executor(
            None,
            partial(
                ensure_serving_index,
                self.directory,
                routing=self.routing,
                metrics=self.metrics,
                lock=True,
            ),
        )
        old = self.engine.swap_index(new_index)
        # Deferred one tick: any callback already queued ahead of this
        # one still sees a closeable-but-valid mapping (close() keeps
        # the mmap alive while views reference it).
        loop.call_soon(old.close)
        self._fingerprint = fingerprint
        self._m_reloads.inc()
        logger.info(
            "serving index reloaded: generation=%d rows=%d",
            new_index.generation,
            new_index.rows,
        )
        return True

    async def run(self) -> None:
        """Poll forever; a failed reload logs and retries next tick."""
        while True:
            await asyncio.sleep(self.interval)
            try:
                await self.poll_once()
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception as error:
                logger.warning(
                    "serving index reload failed (will retry): %s",
                    error,
                )


# -- one serving process (single mode, and each worker) ------------------------


async def _serve(
    index: ServingIndex,
    config: FleetConfig,
    registry: MetricsRegistry,
    *,
    sock=None,
    routing=None,
    on_ready=None,
    holder: Optional[dict] = None,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain and close.

    ``holder`` (a mutable dict) receives the engine so the caller can
    close whichever index is current after live reloads swapped it.
    """
    engine = CoalescingEngine(index, metrics=registry)
    if holder is not None:
        holder["engine"] = engine
    server = HitlistServer(
        engine,
        host=config.host,
        port=config.port,
        metrics=registry,
        max_pipeline=config.max_pipeline,
        max_frame_bytes=config.max_frame_bytes,
        binary=not config.json_only,
        sock=sock,
    )
    host, port = await server.start()
    reloader_task = None
    if config.reload_interval > 0:
        reloader = IndexReloader(
            engine,
            config.directory,
            routing=routing,
            metrics=registry,
            interval=config.reload_interval,
        )
        reloader_task = asyncio.ensure_future(reloader.run())
    loop = asyncio.get_running_loop()
    stop = loop.create_future()

    def request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, request_stop)
    if on_ready is not None:
        on_ready(host, port)
    try:
        await stop
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(signum)
        if reloader_task is not None:
            reloader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reloader_task
        await server.aclose(drain_timeout=config.drain_timeout)


def run_single(config: FleetConfig) -> int:
    """``repro serve`` without fan-out: one process, reload-capable."""
    registry = MetricsRegistry()
    provider = _routing_provider(config)
    try:
        index = ensure_serving_index(
            config.directory,
            routing=provider,
            metrics=registry,
            rebuild=config.rebuild,
            lock=True,
        )
    except FileNotFoundError as error:
        logger.error("no segment store to serve: %s", error)
        return 2
    info = index.describe()
    logger.info(
        "serving index ready: %s rows=%s generation=%s origin_table=%s",
        index.path,
        info["rows"],
        info["generation"],
        index.has_origin_table,
    )
    holder: dict = {}

    def on_ready(host: str, port: int) -> None:
        print(f"{READY_PREFIX} {host} {port}", flush=True)

    try:
        asyncio.run(
            _serve(
                index,
                config,
                registry,
                routing=provider,
                on_ready=on_ready,
                holder=holder,
            )
        )
    finally:
        engine = holder.get("engine")
        (engine.index if engine is not None else index).close()
        if config.metrics_out:
            write_metrics(registry, config.metrics_out)
    return 0


# -- worker processes ----------------------------------------------------------


def _worker_metrics_path(metrics_out: str, worker_id: int) -> Path:
    return Path(f"{metrics_out}.w{worker_id}")


def _worker_main(
    config: FleetConfig, worker_id: int, ready_event
) -> None:
    """Child-process entry: serve on an own SO_REUSEPORT socket."""
    registry = MetricsRegistry()
    try:
        provider = _routing_provider(config)
        index = ensure_serving_index(
            config.directory,
            routing=provider,
            metrics=registry,
            lock=True,
        )
        sock = reuseport_socket(config.host, config.port)
        holder: dict = {}

        def on_ready(host: str, port: int) -> None:
            logger.info(
                "serve worker %d listening pid=%d port=%d",
                worker_id,
                os.getpid(),
                port,
            )
            ready_event.set()

        try:
            asyncio.run(
                _serve(
                    index,
                    config,
                    registry,
                    sock=sock,
                    routing=provider,
                    on_ready=on_ready,
                    holder=holder,
                )
            )
        finally:
            engine = holder.get("engine")
            (engine.index if engine is not None else index).close()
    finally:
        if config.metrics_out:
            with contextlib.suppress(OSError):
                _worker_metrics_path(
                    config.metrics_out, worker_id
                ).write_text(registry.to_json(worker=worker_id))


# -- the supervisor ------------------------------------------------------------


class _WorkerSlot:
    __slots__ = ("process", "ready", "failures", "started_at")

    def __init__(self, process, ready) -> None:
        self.process = process
        self.ready = ready
        self.failures = 0
        self.started_at = time.monotonic()


def _drain_pipe(fd: int) -> None:
    with contextlib.suppress(OSError, BlockingIOError):
        os.read(fd, 4096)


def run_supervisor(config: FleetConfig) -> int:
    """Pre-fork ``config.workers`` serving processes and babysit them.

    Builds/validates the serving index once up front (so workers start
    by mmapping a known-good file), resolves the port by binding a
    placeholder ``SO_REUSEPORT`` socket (held, never listening — the
    port stays reserved across worker restarts), forks the fleet,
    prints ``SERVE READY host port`` once every worker listens,
    restarts crashed workers with capped backoff, and on SIGTERM/SIGINT
    forwards the signal so each worker drains before exiting, then
    merges the per-worker metrics snapshots into ``metrics_out``.
    """
    registry = MetricsRegistry()
    provider = _routing_provider(config)
    try:
        index = ensure_serving_index(
            config.directory,
            routing=provider,
            metrics=registry,
            rebuild=config.rebuild,
            lock=True,
        )
    except FileNotFoundError as error:
        logger.error("no segment store to serve: %s", error)
        return 2
    info = index.describe()
    index.close()
    logger.info(
        "supervisor: serving index ready (%s rows, generation %s); "
        "forking %d workers",
        info["rows"],
        info["generation"],
        config.workers,
    )
    m_restarts = registry.counter(
        "repro_serve_worker_restarts_total",
        "crashed serve workers restarted by the supervisor",
    )

    placeholder = reuseport_socket(config.host, config.port)
    host, port = placeholder.getsockname()[:2]
    worker_config = dataclasses.replace(
        config, host=host, port=port, rebuild=False
    )
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )

    stop: Dict[str, Optional[int]] = {"signal": None}
    wake_r, wake_w = os.pipe()
    os.set_blocking(wake_w, False)

    def on_signal(signum, frame) -> None:
        stop["signal"] = signum
        with contextlib.suppress(OSError, BlockingIOError):
            os.write(wake_w, b"x")

    previous_handlers = {
        signum: signal.signal(signum, on_signal)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }

    def spawn(worker_id: int) -> _WorkerSlot:
        ready = context.Event()
        process = context.Process(
            target=_worker_main,
            args=(worker_config, worker_id, ready),
            name=f"repro-serve-w{worker_id}",
        )
        process.start()
        return _WorkerSlot(process, ready)

    slots = [spawn(worker_id) for worker_id in range(config.workers)]
    ready_printed = False
    ready_deadline = time.monotonic() + _READY_TIMEOUT
    exit_code = 0
    try:
        while stop["signal"] is None:
            if not ready_printed:
                if all(slot.ready.is_set() for slot in slots):
                    print(
                        f"{READY_PREFIX} {host} {port}", flush=True
                    )
                    ready_printed = True
                elif time.monotonic() > ready_deadline:
                    logger.error(
                        "serve workers not ready within %.0fs; "
                        "shutting down",
                        _READY_TIMEOUT,
                    )
                    exit_code = 1
                    break
            sentinels = [
                slot.process.sentinel for slot in slots
            ] + [wake_r]
            woken = multiprocessing.connection.wait(
                sentinels, timeout=0.5
            )
            if wake_r in woken:
                _drain_pipe(wake_r)
            if stop["signal"] is not None:
                break
            for worker_id, slot in enumerate(slots):
                if slot.process.is_alive():
                    continue
                slot.process.join(timeout=1)
                lived = time.monotonic() - slot.started_at
                failures = (
                    1
                    if lived >= _RESTART_RESET_SECONDS
                    else slot.failures + 1
                )
                delay = min(
                    _RESTART_BACKOFF_CAP,
                    _RESTART_BACKOFF_BASE * (2 ** (failures - 1)),
                )
                logger.warning(
                    "serve worker %d exited code=%s after %.1fs; "
                    "restarting in %.2fs",
                    worker_id,
                    slot.process.exitcode,
                    lived,
                    delay,
                )
                m_restarts.inc()
                # Interruptible backoff: a SIGTERM mid-wait still
                # shuts the fleet down promptly.
                readable, _, _ = select.select([wake_r], [], [], delay)
                if readable:
                    _drain_pipe(wake_r)
                if stop["signal"] is not None:
                    break
                replacement = spawn(worker_id)
                replacement.failures = failures
                slots[worker_id] = replacement
    finally:
        for slot in slots:
            if slot.process.is_alive():
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(slot.process.pid, signal.SIGTERM)
        deadline = time.monotonic() + config.drain_timeout + 10.0
        for slot in slots:
            slot.process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
        for slot in slots:
            if slot.process.is_alive():  # pragma: no cover - hung worker
                logger.warning(
                    "killing unresponsive serve worker pid=%d",
                    slot.process.pid,
                )
                slot.process.kill()
                slot.process.join(timeout=5)
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        os.close(wake_r)
        os.close(wake_w)
        placeholder.close()
        if config.metrics_out:
            for worker_id in range(config.workers):
                partial_path = _worker_metrics_path(
                    config.metrics_out, worker_id
                )
                if not partial_path.exists():
                    continue
                try:
                    registry.merge_snapshot(
                        json.loads(partial_path.read_text())
                    )
                except (OSError, ValueError) as error:
                    logger.warning(
                        "skipping unreadable worker metrics %s: %s",
                        partial_path,
                        error,
                    )
                with contextlib.suppress(OSError):
                    partial_path.unlink()
            write_metrics(registry, config.metrics_out)
    return exit_code
