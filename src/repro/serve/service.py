"""Hitlist-as-a-service transport: JSON-lines over TCP, plus clients.

The wire protocol is deliberately trivial — one JSON object per line in
each direction, batch-shaped like the engine itself::

    -> {"id": 7, "op": "origin", "args": [addr, addr, ...]}
    <- {"id": 7, "results": [asn-or-null, ...]}
    <- {"id": 7, "error": "..."}          (that request only)

Addresses are JSON integers (Python's ``json`` round-trips 128-bit ints
exactly, and floats round-trip bit-identically via ``repr``), so remote
answers are byte-for-byte the local engine's answers.  Requests on one
connection may be pipelined without awaiting replies; the server
answers each as its own task, which is exactly what lets the
:class:`~repro.serve.engine.CoalescingEngine` merge concurrent requests
— across connections too — into single kernel calls.  Replies may
therefore arrive out of request order; the ``id`` correlates them.

Two client flavours share one query surface (:class:`_QuerySurface`):
:class:`LocalHitlistClient` wraps an in-process engine (no sockets —
the fastest path, used by benchmarks and library consumers), and
:class:`RemoteHitlistClient` speaks the protocol above.  Both are
handed out by :func:`repro.api.connect`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsRegistry, NULL_REGISTRY
from .engine import CoalescingEngine

__all__ = [
    "DEFAULT_MAX_PIPELINE",
    "HitlistServer",
    "LocalHitlistClient",
    "RemoteHitlistClient",
    "READY_PREFIX",
]

#: Line printed by ``repro serve`` once the socket is listening:
#: ``SERVE READY <host> <port>`` — parseable by benchmarks and CI.
READY_PREFIX = "SERVE READY"

#: Per-line size bound: a 100k-address batch of 128-bit ints in decimal
#: is ~4 MiB, so this caps batches near that without unbounded buffering.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Default per-connection in-flight request cap.  A client pipelining
#: faster than the engine answers (or not reading its replies) would
#: otherwise grow the per-request task set and the queued reply bytes
#: without bound; past this many unanswered requests the server simply
#: stops reading that connection until replies flush.
DEFAULT_MAX_PIPELINE = 128

_COMPACT = {"separators": (",", ":")}


def _encode(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, **_COMPACT) + "\n").encode("utf-8")


class HitlistServer:
    """Asyncio TCP front-end over a :class:`CoalescingEngine`."""

    def __init__(
        self,
        engine: CoalescingEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        sock=None,
    ) -> None:
        if max_pipeline < 1:
            raise ValueError(
                f"max_pipeline must be >= 1: {max_pipeline}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.max_pipeline = max_pipeline
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._sock = sock
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        #: Every in-flight _serve_line task across all connections —
        #: what a bounded drain waits on at shutdown.
        self._inflight: set = set()
        #: Open connection writers, closed to force idle readers out.
        self._writers: set = set()
        self._m_connections = self.metrics.counter(
            "repro_serve_connections_total", "client connections accepted"
        )
        self._m_requests = self.metrics.counter(
            "repro_serve_requests_total", "protocol requests received"
        )
        self._m_errors = self.metrics.counter(
            "repro_serve_protocol_errors_total",
            "requests answered with an error",
        )
        self._m_stalls = self.metrics.counter(
            "repro_serve_backpressure_stalls_total",
            "reads paused because a connection hit its in-flight cap",
        )

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._sock is not None:
            # A pre-bound socket (the SO_REUSEPORT fan-out path: every
            # worker binds its own socket to the shared port).
            self._server = await asyncio.start_server(
                self._handle_connection,
                sock=self._sock,
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self.port,
                limit=MAX_LINE_BYTES,
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(
        self, drain_timeout: Optional[float] = None
    ) -> None:
        """Stop listening; optionally drain in-flight requests first.

        With a ``drain_timeout``, requests whose lines were already
        read (accepted) get up to that many seconds to compute and
        flush their replies before the remaining tasks are cancelled —
        so a SIGTERM under load loses zero accepted requests as long
        as replies flush within the bound.  Connections are then
        closed; handlers blocked in ``readline`` see EOF and exit.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        if drain_timeout and self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=drain_timeout
            )
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._writers):
            writer.close()
        with contextlib.suppress(ConnectionError):
            await self._server.wait_closed()
        self._server = None
        self._draining = False

    async def __aenter__(self) -> "HitlistServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._m_connections.inc()
        write_lock = asyncio.Lock()
        # Per-connection in-flight cap: while max_pipeline requests are
        # unanswered, the loop below stops reading — so a client
        # pipelining faster than the engine answers (or never reading
        # its replies, which blocks replies on the transport's
        # high-water mark) bounds both the task set and the reply
        # queue instead of growing them without limit.
        slots = asyncio.Semaphore(self.max_pipeline)
        tasks: set = set()
        self._writers.add(writer)

        def finish(task: asyncio.Task) -> None:
            slots.release()
            tasks.discard(task)
            self._inflight.discard(task)

        # Cancellation (loop shutdown racing a connection teardown) is a
        # normal way for a handler to end — absorb it so it never
        # escapes into asyncio's stream-protocol callback.
        with contextlib.suppress(
            ConnectionError, asyncio.CancelledError
        ):
            try:
                while not self._draining:
                    if slots.locked():
                        self._m_stalls.inc()
                    await slots.acquire()
                    try:
                        line = await reader.readline()
                    except (
                        asyncio.LimitOverrunError,
                        ValueError,
                    ):  # pragma: no cover - line beyond MAX_LINE_BYTES
                        slots.release()
                        await self._reply(
                            writer,
                            write_lock,
                            {
                                "id": None,
                                "error": "request line too long",
                            },
                        )
                        self._m_errors.inc()
                        break
                    if not line:
                        slots.release()
                        break
                    # One task per request: replies can overtake each
                    # other and concurrent requests coalesce in the
                    # engine.
                    task = asyncio.ensure_future(
                        self._serve_line(line, writer, write_lock)
                    )
                    tasks.add(task)
                    self._inflight.add(task)
                    task.add_done_callback(finish)
            finally:
                if tasks:
                    await asyncio.gather(
                        *tasks, return_exceptions=True
                    )
                self._writers.discard(writer)
                writer.close()
                with contextlib.suppress(ConnectionError):
                    await writer.wait_closed()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._m_requests.inc()
        request_id: Optional[int] = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            if op == "stats":
                results: List = [self.engine.describe()]
            else:
                args = request.get("args", [])
                if not isinstance(args, list):
                    raise ValueError("args must be a list")
                results = await self.engine.batch(op, args)
            payload: Dict[str, object] = {
                "id": request_id,
                "results": results,
            }
        except Exception as error:
            self._m_errors.inc()
            payload = {"id": request_id, "error": str(error)}
        await self._reply(writer, write_lock, payload)
        if request_id is None:
            # A reply no client can attribute to a request id (the
            # line was undecodable, or the request carried no id)
            # poisons the pipelined stream: the requester would wait
            # forever for an answer that can never be correlated.
            # Close the connection so the client fails fast instead.
            writer.close()

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, object],
    ) -> None:
        try:
            async with write_lock:
                writer.write(_encode(payload))
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass


class _QuerySurface:
    """The query API both clients share.

    Implementations provide ``_request(op, args)`` returning one result
    per arg; everything else is shaping.  ``*_batch`` methods are the
    throughput path — the engine coalesces whole client batches into
    its kernel calls.
    """

    async def _request(self, op: str, args: Sequence) -> List:
        raise NotImplementedError

    @staticmethod
    def _tupled(value):
        return None if value is None else tuple(value)

    # record: (first, last, count) or None
    async def record(self, address: int):
        return self._tupled(
            (await self._request("record", [address]))[0]
        )

    async def record_batch(self, addresses: Sequence[int]) -> List:
        results = await self._request("record", list(addresses))
        return [self._tupled(value) for value in results]

    async def lifetime(self, address: int) -> Optional[float]:
        return (await self._request("lifetime", [address]))[0]

    async def lifetime_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[float]]:
        return await self._request("lifetime", list(addresses))

    async def entropy(self, address: int) -> Optional[float]:
        return (await self._request("entropy", [address]))[0]

    async def entropy_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[float]]:
        return await self._request("entropy", list(addresses))

    async def features(self, address: int):
        return self._tupled(
            (await self._request("features", [address]))[0]
        )

    async def features_batch(self, addresses: Sequence[int]) -> List:
        results = await self._request("features", list(addresses))
        return [self._tupled(value) for value in results]

    async def origin(self, address: int) -> Optional[int]:
        return (await self._request("origin", [address]))[0]

    async def origin_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[int]]:
        return await self._request("origin", list(addresses))

    async def contains(self, address: int) -> bool:
        return (await self._request("contains", [address]))[0]

    async def contains_batch(
        self, addresses: Sequence[int]
    ) -> List[bool]:
        return await self._request("contains", list(addresses))

    async def in_slash48(self, address: int) -> bool:
        return (await self._request("slash48", [address]))[0]

    async def in_slash48_batch(
        self, addresses: Sequence[int]
    ) -> List[bool]:
        return await self._request("slash48", list(addresses))

    async def in_slash64(self, address: int) -> bool:
        return (await self._request("slash64", [address]))[0]

    async def in_slash64_batch(
        self, addresses: Sequence[int]
    ) -> List[bool]:
        return await self._request("slash64", list(addresses))

    async def stats(self) -> Dict[str, object]:
        return (await self._request("stats", []))[0]


class LocalHitlistClient(_QuerySurface):
    """In-process client: the engine without any transport.

    ``watcher`` (optional) is a background task — typically an
    :class:`~repro.serve.fleet.IndexReloader` run loop keeping the
    engine's index live against manifest commits — owned by this
    client and cancelled on :meth:`aclose`.
    """

    def __init__(
        self,
        engine: CoalescingEngine,
        *,
        watcher: Optional[asyncio.Task] = None,
    ) -> None:
        self.engine = engine
        self._watcher = watcher

    async def _request(self, op: str, args: Sequence) -> List:
        if op == "stats":
            return [self.engine.describe()]
        return await self.engine.batch(op, args)

    async def aclose(self) -> None:
        """Cancel the reload watcher, if any; nothing else to release."""
        if self._watcher is not None:
            self._watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._watcher
            self._watcher = None

    async def __aenter__(self) -> "LocalHitlistClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class RemoteHitlistClient(_QuerySurface):
    """Async client for a :class:`HitlistServer`.

    Requests are pipelined: any number may be in flight, correlated by
    id, so concurrent client tasks sharing one connection coalesce on
    the server side.  Create with :meth:`connect` (or
    :func:`repro.api.connect` with a ``host:port`` target).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_replies())

    @classmethod
    async def connect(
        cls, host: str, port: int
    ) -> "RemoteHitlistClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def _read_replies(self) -> None:
        error: Exception = ConnectionError(
            "hitlist server closed the connection"
        )
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                future = self._pending.pop(reply.get("id"), None)
                if future is None:
                    if "error" in reply:
                        # An error the server could not attribute to
                        # any request we know (a null or unknown id).
                        # Every in-flight request is now ambiguous —
                        # one of them may be the request that failed —
                        # so fail them all instead of letting an
                        # unmatched caller await forever.
                        error = ConnectionError(
                            "un-correlatable server error: "
                            f"{reply['error']}"
                        )
                        break
                    continue
                if future.done():
                    continue
                if "error" in reply:
                    future.set_exception(
                        RuntimeError(f"server error: {reply['error']}")
                    )
                else:
                    future.set_result(reply["results"])
        except Exception as caught:  # pragma: no cover - transport loss
            error = caught
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self._writer.close()

    async def _request(self, op: str, args: Sequence) -> List:
        if self._reader_task.done():
            raise ConnectionError("hitlist client is closed")
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        payload = {"id": request_id, "op": op, "args": list(args)}
        try:
            async with self._write_lock:
                self._writer.write(_encode(payload))
                await self._writer.drain()
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return await future

    async def aclose(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass

    async def __aenter__(self) -> "RemoteHitlistClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
