"""Hitlist-as-a-service transport: JSON-lines and RSB1 binary over TCP.

Every connection starts in the self-describing JSON-lines protocol PR 8
shipped — one JSON object per line in each direction, batch-shaped like
the engine itself::

    -> {"id": 7, "op": "origin", "args": [addr, addr, ...]}
    <- {"id": 7, "results": [asn-or-null, ...]}
    <- {"id": 7, "error": "..."}          (that request only)

A binary-capable client's first line is a ``hello`` request; when the
server grants it, the connection flips to length-prefixed ``RSB1``
frames (:mod:`repro.serve.wire`): packed u128 address columns in,
typed columnar reply payloads out, CRC32-sealed — the same ids, the
same pipelining, the same out-of-order replies, an order of magnitude
less encode/decode work at large batches.  Old clients never send a
hello and notice nothing; old servers answer the hello like any unknown
op, and the client downgrades to JSON-lines on the same connection.

Requests on one connection may be pipelined without awaiting replies;
the server answers each as its own task, which is exactly what lets the
:class:`~repro.serve.engine.CoalescingEngine` merge concurrent requests
— across connections too — into single kernel calls.  Replies may
therefore arrive out of request order; the ``id`` correlates them.
Both protocols bound what they will buffer for one request
(``max_frame_bytes``); an oversized line or frame is answered with a
*typed* error (``"code"`` field / error frame) before the connection
closes.

Two client flavours share one query surface (:class:`_QuerySurface`,
generated from the shared :data:`~repro.serve.wire.QUERY_OP_TABLE`):
:class:`LocalHitlistClient` wraps an in-process engine (no sockets —
the fastest path, used by benchmarks and library consumers), and
:class:`RemoteHitlistClient` speaks either wire protocol.  Both are
handed out by :func:`repro.api.connect`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsRegistry, NULL_REGISTRY
from . import wire
from .engine import CoalescingEngine
from .wire import DEFAULT_MAX_FRAME_BYTES, PROTOCOL_BINARY, PROTOCOL_JSON

__all__ = [
    "DEFAULT_MAX_PIPELINE",
    "DEFAULT_MAX_FRAME_BYTES",
    "HitlistServer",
    "LocalHitlistClient",
    "RemoteHitlistClient",
    "READY_PREFIX",
]

#: Line printed by ``repro serve`` once the socket is listening:
#: ``SERVE READY <host> <port>`` — parseable by benchmarks and CI.
READY_PREFIX = "SERVE READY"

#: Backwards-compatible alias: the per-line/per-frame size bound is the
#: wire module's ``DEFAULT_MAX_FRAME_BYTES`` (``--max-frame-bytes``).
MAX_LINE_BYTES = DEFAULT_MAX_FRAME_BYTES

#: Default per-connection in-flight request cap.  A client pipelining
#: faster than the engine answers (or not reading its replies) would
#: otherwise grow the per-request task set and the queued reply bytes
#: without bound; past this many unanswered requests the server simply
#: stops reading that connection until replies flush.
DEFAULT_MAX_PIPELINE = 128

_COMPACT = {"separators": (",", ":")}

#: What an op the registry cannot resolve is sent as on the binary
#: protocol: op code 0 is reserved-invalid, so the *server* rejects it
#: with the same request-scoped error contract as the JSON path.
_UNKNOWN_OP = wire.QueryOp(0, "unknown", "json", "unknown")


def _encode(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, **_COMPACT) + "\n").encode("utf-8")


class HitlistServer:
    """Asyncio TCP front-end over a :class:`CoalescingEngine`.

    ``binary=False`` refuses hello upgrades (the connection answer is a
    ``json`` grant), pinning every connection to JSON-lines — the
    ``repro serve --json-only`` escape hatch.  ``max_frame_bytes``
    bounds both a JSON request line and an RSB1 frame.
    """

    def __init__(
        self,
        engine: CoalescingEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        binary: bool = True,
        sock=None,
    ) -> None:
        if max_pipeline < 1:
            raise ValueError(
                f"max_pipeline must be >= 1: {max_pipeline}"
            )
        if max_frame_bytes < wire.MIN_FRAME_BYTES:
            raise ValueError(
                f"max_frame_bytes must be >= {wire.MIN_FRAME_BYTES}: "
                f"{max_frame_bytes}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.max_pipeline = max_pipeline
        self.max_frame_bytes = max_frame_bytes
        self.binary = binary
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._sock = sock
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        #: Every in-flight request task across all connections —
        #: what a bounded drain waits on at shutdown.
        self._inflight: set = set()
        #: Open connection writers, closed to force idle readers out.
        self._writers: set = set()
        self._m_connections = self.metrics.counter(
            "repro_serve_connections_total", "client connections accepted"
        )
        self._m_binary = self.metrics.counter(
            "repro_serve_binary_connections_total",
            "connections upgraded to the RSB1 binary protocol",
        )
        self._m_requests = self.metrics.counter(
            "repro_serve_requests_total", "protocol requests received"
        )
        self._m_errors = self.metrics.counter(
            "repro_serve_protocol_errors_total",
            "requests answered with an error",
        )
        self._m_stalls = self.metrics.counter(
            "repro_serve_backpressure_stalls_total",
            "reads paused because a connection hit its in-flight cap",
        )

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._sock is not None:
            # A pre-bound socket (the SO_REUSEPORT fan-out path: every
            # worker binds its own socket to the shared port).
            self._server = await asyncio.start_server(
                self._handle_connection,
                sock=self._sock,
                limit=self.max_frame_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self.port,
                limit=self.max_frame_bytes,
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(
        self, drain_timeout: Optional[float] = None
    ) -> None:
        """Stop listening; optionally drain in-flight requests first.

        With a ``drain_timeout``, requests whose lines were already
        read (accepted) get up to that many seconds to compute and
        flush their replies before the remaining tasks are cancelled —
        so a SIGTERM under load loses zero accepted requests as long
        as replies flush within the bound.  Connections are then
        closed; handlers blocked in ``readline`` see EOF and exit.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        if drain_timeout and self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=drain_timeout
            )
        for task in list(self._inflight):
            task.cancel()
        for writer in list(self._writers):
            writer.close()
        with contextlib.suppress(ConnectionError):
            await self._server.wait_closed()
        self._server = None
        self._draining = False

    async def __aenter__(self) -> "HitlistServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- connection handling -----------------------------------------------------

    @staticmethod
    def _parse_hello(line: bytes) -> Optional[Dict[str, object]]:
        """The parsed request when a first line is a protocol hello."""
        try:
            request = json.loads(line)
        except ValueError:
            return None
        if isinstance(request, dict) and request.get("op") == wire.HELLO_OP:
            return request
        return None

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._m_connections.inc()
        write_lock = asyncio.Lock()
        # Per-connection in-flight cap: while max_pipeline requests are
        # unanswered, the loop below stops reading — so a client
        # pipelining faster than the engine answers (or never reading
        # its replies, which blocks replies on the transport's
        # high-water mark) bounds both the task set and the reply
        # queue instead of growing them without limit.
        slots = asyncio.Semaphore(self.max_pipeline)
        tasks: set = set()
        self._writers.add(writer)
        binary_mode = False
        first_line = True

        def finish(task: asyncio.Task) -> None:
            slots.release()
            tasks.discard(task)
            self._inflight.discard(task)

        # Cancellation (loop shutdown racing a connection teardown) is a
        # normal way for a handler to end — absorb it so it never
        # escapes into asyncio's stream-protocol callback.
        with contextlib.suppress(
            ConnectionError, asyncio.CancelledError
        ):
            try:
                while not self._draining:
                    if slots.locked():
                        self._m_stalls.inc()
                    await slots.acquire()
                    if binary_mode:
                        try:
                            frame = await wire.read_frame(
                                reader,
                                max_frame_bytes=self.max_frame_bytes,
                            )
                        except wire.WireError as error:
                            slots.release()
                            await self._fail_connection(
                                writer, write_lock, error, binary=True
                            )
                            break
                        if frame is None:
                            slots.release()
                            break
                        kind, opcode, request_id, count, payload = frame
                        if kind != wire.KIND_REQUEST:
                            slots.release()
                            await self._fail_connection(
                                writer,
                                write_lock,
                                wire.WireProtocolError(
                                    f"expected a request frame, got "
                                    f"kind {kind}",
                                    request_id=request_id,
                                ),
                                binary=True,
                            )
                            break
                        task = asyncio.ensure_future(
                            self._serve_frame(
                                opcode,
                                request_id,
                                count,
                                payload,
                                writer,
                                write_lock,
                            )
                        )
                    else:
                        try:
                            line = await reader.readline()
                        except (
                            asyncio.LimitOverrunError,
                            ValueError,
                        ):
                            # readline found no separator within the
                            # stream limit: the request line is over
                            # max_frame_bytes.
                            slots.release()
                            await self._fail_connection(
                                writer,
                                write_lock,
                                wire.FrameTooLargeError(
                                    "request line is over the "
                                    f"{self.max_frame_bytes}-byte "
                                    "frame bound"
                                ),
                                binary=False,
                            )
                            break
                        if not line:
                            slots.release()
                            break
                        if first_line:
                            first_line = False
                            hello = self._parse_hello(line)
                            if hello is not None:
                                slots.release()
                                binary_mode = self._serve_hello_reply(
                                    hello
                                )
                                await self._reply(
                                    writer,
                                    write_lock,
                                    {
                                        "id": hello.get("id"),
                                        "results": [
                                            wire.hello_reply(
                                                binary_mode
                                            )
                                        ],
                                    },
                                )
                                if hello.get("id") is None:
                                    # Same rule as any id-less reply:
                                    # un-correlatable, close.
                                    writer.close()
                                    break
                                continue
                        task = asyncio.ensure_future(
                            self._serve_line(line, writer, write_lock)
                        )
                    tasks.add(task)
                    self._inflight.add(task)
                    task.add_done_callback(finish)
            finally:
                if tasks:
                    await asyncio.gather(
                        *tasks, return_exceptions=True
                    )
                self._writers.discard(writer)
                writer.close()
                with contextlib.suppress(ConnectionError):
                    await writer.wait_closed()

    def _serve_hello_reply(self, hello: Dict[str, object]) -> bool:
        """Account a hello; returns whether the upgrade is granted."""
        self._m_requests.inc()
        granted = self.binary and wire.hello_accepts(hello)
        if granted:
            self._m_binary.inc()
        return granted

    async def _fail_connection(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        error: wire.WireError,
        *,
        binary: bool,
    ) -> None:
        """Report a connection-fatal wire error, typed, then close.

        The reply carries the error class — an RSB1 error frame with
        its numeric code, or a JSON error with a ``"code"`` field — so
        the peer fails its in-flight requests with the *typed*
        exception instead of a bare EOF.
        """
        self._m_errors.inc()
        if binary:
            frame = wire.encode_error(
                error.request_id or 0, error.number, str(error)
            )
            await self._reply_bytes(writer, write_lock, frame)
        else:
            await self._reply(
                writer,
                write_lock,
                {"id": None, "error": str(error), "code": error.code},
            )

    async def _serve_frame(
        self,
        opcode: int,
        request_id: int,
        count: int,
        payload,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._m_requests.inc()
        try:
            spec, block = wire.decode_request(opcode, count, payload)
            if block is None:
                results: List = [self.engine.describe()]
            else:
                # columnar keeps the answer in numpy columns end to
                # end; encode_reply turns each into one tobytes call.
                results = await self.engine.batch(
                    spec.code, block, columnar=True
                )
            frame = wire.encode_reply(spec, request_id, results)
        except Exception as error:
            self._m_errors.inc()
            frame = wire.encode_error(
                request_id, wire.REQUEST_ERROR, str(error)
            )
        await self._reply_bytes(writer, write_lock, frame)

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._m_requests.inc()
        request_id: Optional[int] = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            if op == "stats":
                results: List = [self.engine.describe()]
            else:
                args = request.get("args", [])
                if not isinstance(args, list):
                    raise ValueError("args must be a list")
                results = await self.engine.batch(op, args)
            payload: Dict[str, object] = {
                "id": request_id,
                "results": results,
            }
        except Exception as error:
            self._m_errors.inc()
            payload = {"id": request_id, "error": str(error)}
        await self._reply(writer, write_lock, payload)
        if request_id is None:
            # A reply no client can attribute to a request id (the
            # line was undecodable, or the request carried no id)
            # poisons the pipelined stream: the requester would wait
            # forever for an answer that can never be correlated.
            # Close the connection so the client fails fast instead.
            writer.close()

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, object],
    ) -> None:
        await self._reply_bytes(writer, write_lock, _encode(payload))

    async def _reply_bytes(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        data: bytes,
    ) -> None:
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass


class _QuerySurface:
    """The query API both clients share — generated from the registry.

    Implementations provide ``_request(op, args)`` returning one result
    per arg; everything else is shaping.  One scalar/batch method pair
    per entry in :data:`~repro.serve.wire.QUERY_OP_TABLE` is attached
    below (``record``/``record_batch``, ..., ``in_slash64_batch``) —
    the historical hand-written names, now thin table-driven wrappers.
    ``*_batch`` methods are the throughput path — the engine coalesces
    whole client batches into its kernel calls.
    """

    async def _request(self, op: str, args: Sequence) -> List:
        raise NotImplementedError

    async def stats(self) -> Dict[str, object]:
        return (await self._request("stats", []))[0]


def _surface_methods(spec: wire.QueryOp):
    """Build the scalar and batch coroutine pair for one registry op."""
    name, tupled = spec.name, spec.tupled

    if tupled:

        async def scalar(self, address: int):
            value = (await self._request(name, [address]))[0]
            return None if value is None else tuple(value)

        async def batch(self, addresses: Sequence[int]) -> List:
            results = await self._request(name, list(addresses))
            return [
                None if value is None else tuple(value)
                for value in results
            ]

    else:

        async def scalar(self, address: int):
            return (await self._request(name, [address]))[0]

        async def batch(self, addresses: Sequence[int]) -> List:
            return await self._request(name, list(addresses))

    scalar.__name__ = spec.surface
    scalar.__qualname__ = f"_QuerySurface.{spec.surface}"
    scalar.__doc__ = f"Answer the {name!r} query for one address."
    batch.__name__ = f"{spec.surface}_batch"
    batch.__qualname__ = f"_QuerySurface.{spec.surface}_batch"
    batch.__doc__ = (
        f"Answer the {name!r} query for a batch of addresses "
        "(one result per address)."
    )
    return scalar, batch


for _spec in wire.ADDRESS_OPS:
    _scalar, _batch = _surface_methods(_spec)
    setattr(_QuerySurface, _scalar.__name__, _scalar)
    setattr(_QuerySurface, _batch.__name__, _batch)
del _spec, _scalar, _batch


class LocalHitlistClient(_QuerySurface):
    """In-process client: the engine without any transport.

    ``watcher`` (optional) is a background task — typically an
    :class:`~repro.serve.fleet.IndexReloader` run loop keeping the
    engine's index live against manifest commits — owned by this
    client and cancelled on :meth:`aclose`.
    """

    def __init__(
        self,
        engine: CoalescingEngine,
        *,
        watcher: Optional[asyncio.Task] = None,
    ) -> None:
        self.engine = engine
        self._watcher = watcher

    async def _request(self, op: str, args: Sequence) -> List:
        if op == "stats":
            return [self.engine.describe()]
        return await self.engine.batch(op, args)

    async def aclose(self) -> None:
        """Cancel the reload watcher, if any; nothing else to release."""
        if self._watcher is not None:
            self._watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._watcher
            self._watcher = None

    async def __aenter__(self) -> "LocalHitlistClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class RemoteHitlistClient(_QuerySurface):
    """Async client for a :class:`HitlistServer`, either protocol.

    Requests are pipelined: any number may be in flight, correlated by
    id, so concurrent client tasks sharing one connection coalesce on
    the server side.  Create with :meth:`connect` (or
    :func:`repro.api.connect` with a ``host:port`` or ``repro://``
    target), which performs the protocol negotiation; ``.protocol`` is
    the negotiated outcome — ``"binary"`` or ``"json"`` — after a
    graceful downgrade when the peer lacks RSB1.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        protocol: str = PROTOCOL_JSON,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.protocol = protocol
        self._max_frame_bytes = max_frame_bytes
        # id 0 is reserved for the connection's hello.
        self._next_id = 1
        self._pending: Dict[
            int, Tuple[asyncio.Future, Optional[wire.QueryOp]]
        ] = {}
        self._write_lock = asyncio.Lock()
        reads = (
            self._read_frames
            if protocol == PROTOCOL_BINARY
            else self._read_replies
        )
        self._reader_task = asyncio.ensure_future(reads())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        protocol: str = PROTOCOL_BINARY,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "RemoteHitlistClient":
        """Connect and negotiate.

        ``protocol="binary"`` *requests* RSB1 via the hello handshake
        and downgrades gracefully — to JSON-lines on the same
        connection — when the peer is an old server or was started
        ``--json-only``.  ``protocol="json"`` skips the handshake
        entirely and speaks exactly what old clients speak.
        """
        if protocol not in (PROTOCOL_BINARY, PROTOCOL_JSON):
            raise ValueError(
                f"protocol must be {PROTOCOL_BINARY!r} or "
                f"{PROTOCOL_JSON!r}: {protocol!r}"
            )
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes
        )
        negotiated = PROTOCOL_JSON
        if protocol == PROTOCOL_BINARY:
            try:
                writer.write(wire.encode_hello_line())
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ConnectionError(
                        "server closed the connection during protocol "
                        "negotiation"
                    )
                reply = json.loads(line)
                if not isinstance(reply, dict):
                    raise ValueError("handshake reply is not an object")
            except ValueError as error:
                writer.close()
                raise ConnectionError(
                    f"peer did not answer the protocol handshake: {error}"
                ) from None
            except BaseException:
                writer.close()
                raise
            negotiated = wire.negotiated_protocol(reply)
        return cls(
            reader,
            writer,
            protocol=negotiated,
            max_frame_bytes=max_frame_bytes,
        )

    # -- reply pumps (one per protocol) ------------------------------------------

    async def _read_replies(self) -> None:
        """JSON-lines reply pump."""
        error: Exception = ConnectionError(
            "hitlist server closed the connection"
        )
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                entry = self._pending.pop(reply.get("id"), None)
                if entry is None:
                    if "error" in reply:
                        # An error the server could not attribute to
                        # any request we know (a null or unknown id).
                        # Every in-flight request is now ambiguous —
                        # one of them may be the request that failed —
                        # so fail them all instead of letting an
                        # unmatched caller await forever.  A typed
                        # "code" (an oversized line, say) keeps its
                        # exception class across the wire.
                        typed = wire.typed_error_class(
                            reply.get("code")
                        )
                        if typed is not None:
                            error = typed(reply["error"])
                        else:
                            error = ConnectionError(
                                "un-correlatable server error: "
                                f"{reply['error']}"
                            )
                        break
                    continue
                future = entry[0]
                if future.done():
                    continue
                if "error" in reply:
                    future.set_exception(
                        RuntimeError(f"server error: {reply['error']}")
                    )
                else:
                    future.set_result(reply["results"])
        except Exception as caught:  # pragma: no cover - transport loss
            error = caught
        self._fail_pending(error)

    async def _read_frames(self) -> None:
        """RSB1 reply pump."""
        error: Exception = ConnectionError(
            "hitlist server closed the connection"
        )
        try:
            while True:
                frame = await wire.read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if frame is None:
                    break
                kind, opcode, request_id, count, payload = frame
                entry = self._pending.pop(request_id, None)
                if kind == wire.KIND_ERROR:
                    number, message = wire.decode_error(payload)
                    if number == wire.REQUEST_ERROR:
                        if entry is None:
                            error = ConnectionError(
                                "un-correlatable server error: "
                                f"{message}"
                            )
                            break
                        if not entry[0].done():
                            entry[0].set_exception(
                                RuntimeError(
                                    f"server error: {message}"
                                )
                            )
                        continue
                    # Connection-fatal codes: the server reported a
                    # wire-level failure and is closing; fail every
                    # in-flight request with the typed exception —
                    # including the already-popped one this frame
                    # answered, which _fail_pending can no longer see.
                    error = wire.error_for(number, message)
                    if entry is not None and not entry[0].done():
                        entry[0].set_exception(error)
                    break
                if entry is None:
                    continue
                future, spec = entry
                if future.done():
                    continue
                if kind != wire.KIND_REPLY or opcode != spec.code:
                    error = wire.WireProtocolError(
                        f"reply kind {kind} op {opcode} does not match "
                        f"request {request_id} ({spec.name})"
                    )
                    future.set_exception(error)
                    break
                try:
                    results = wire.decode_results(
                        spec, count, payload, request_id=request_id
                    )
                except wire.WireError as caught:
                    future.set_exception(caught)
                    error = caught
                    break
                future.set_result(results)
        except Exception as caught:
            error = caught
        self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        for future, _ in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self._writer.close()

    async def _request(self, op: str, args: Sequence) -> List:
        if self._reader_task.done():
            raise ConnectionError("hitlist client is closed")
        request_id = self._next_id
        self._next_id += 1
        if self.protocol == PROTOCOL_BINARY:
            try:
                spec = wire.resolve_op(op)
            except ValueError:
                # Reserved-invalid op code 0: the server rejects it
                # with the same request-scoped error a JSON request
                # naming an unknown op gets.
                spec = _UNKNOWN_OP
            data = wire.encode_request(
                spec,
                request_id,
                args,
                max_frame_bytes=self._max_frame_bytes,
            )
        else:
            spec = None
            data = _encode(
                {"id": request_id, "op": op, "args": list(args)}
            )
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = (future, spec)
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return await future

    async def aclose(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass

    async def __aenter__(self) -> "RemoteHitlistClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
