"""The ``RSI1`` on-disk serving index: mmap-opened, zero-copy, CRC-sealed.

A segment store answers analytical queries by folding its seal-time
``.idx`` partials into an in-process :class:`~repro.core.CorpusIndex` —
fine for one analysis run, wasteful for a fleet of serving workers that
each re-fold (and each hold) the same columns.  The serving index
materializes the folded, **query-ordered** columns once, on disk, next
to ``MANIFEST.json``:

``SERVING.rsi`` layout (all integers little-endian)::

    header (64 bytes):
        magic            b"RSI1"
        version          u16
        flags            u16   bit 0: origin table present
        rows             u64   address rows
        n48              u64   distinct /48 keys
        n64              u64   distinct /64 keys
        n_origins        u64   flattened LPM intervals
        generation       u64   bumped on every rebuild
        source_digest    u32   CRC over the manifest's segment list
        (12 zero bytes reserved)
    columns, 8-byte aligned, rows sorted by (addr_hi, addr_lo):
        addr_hi, addr_lo          u64 x rows
        first, last               f64 x rows
        counts                    u64 x rows
        entropies                 f64 x rows
        macs                      u64 x rows
        codes                     u8  x rows (zero-padded to 8)
        slash48 keys              u64 x n48   (sorted hi-half & /48 mask)
        slash64 keys              u64 x n64   (sorted hi halves)
        origin starts hi, lo      u64 x n_origins (sorted interval starts)
        origin asns               u32 x n_origins (0 = unrouted; padded)
    footer (8 bytes):
        magic            b"RSIF"
        crc32            u32 over every preceding byte

Readers :func:`mmap.mmap` the file read-only and wrap the column runs in
``numpy.frombuffer`` views (or ``memoryview.cast`` without numpy) — no
deserialization, so N worker processes share one page-cache copy.  The
whole-file CRC check at open means a torn file (a crash mid-copy, a
partial rsync) is *detected and refused*, never served; rebuilds write a
temp file and ``os.replace`` it, so an already-mmapped reader keeps its
old inode — a consistent snapshot — while new opens see the new
generation.

The origin table is the routing trie flattened to disjoint half-open
intervals (:func:`flatten_origin_table`): longest-prefix match becomes
"rightmost interval start <= address", one composite binary search.
"""

from __future__ import annotations

import contextlib
import mmap
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

try:  # POSIX advisory locking for multi-process builder election
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from ..core import kernels as _kernels
from ..core.segments import (
    MANIFEST_NAME,
    Manifest,
    SegmentStore,
)
from ..core.storage import CorpusFormatError
from ..obs import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "ColumnarResults",
    "SERVING_INDEX_NAME",
    "SERVING_LOCK_NAME",
    "ServingIndex",
    "ServingIndexError",
    "build_serving_index",
    "crc32_of",
    "ensure_serving_index",
    "flatten_origin_table",
    "le_bytes",
    "manifest_digest",
    "manifest_fingerprint",
    "pack_uvarint",
    "serving_build_lock",
    "unpack_uvarint",
]

#: File name of the serving index inside a segment directory.
SERVING_INDEX_NAME = "SERVING.rsi"

#: Advisory lock file electing one builder among concurrent workers.
SERVING_LOCK_NAME = "SERVING.rsi.lock"

_MAGIC = b"RSI1"
_FOOTER_MAGIC = b"RSIF"
_VERSION = 1
_FLAG_ORIGIN_TABLE = 1

_HEADER = struct.Struct("<4sHHQQQQQI12x")
_HEADER_SIZE = _HEADER.size  # 64
_FOOTER = struct.Struct("<4sI")
_FOOTER_SIZE = _FOOTER.size  # 8

_U64_MASK = (1 << 64) - 1
_ADDRESS_SPACE = 1 << 128
_SLASH48_HI_MASK = 0xFFFFFFFFFFFF0000

_BIG_ENDIAN = sys.byteorder == "big"

#: Batch size above which gather loops switch to numpy fancy indexing.
_VECTOR_MIN = 8


def _as_u64_array(np, values, count: int):
    """A u64 ndarray of ``values`` — the value itself when it already is
    one (the zero-copy wire path's strided view), else a fromiter copy."""
    if isinstance(values, np.ndarray):
        return values
    return np.fromiter(values, dtype=np.uint64, count=count)


class ServingIndexError(CorpusFormatError):
    """A serving index file is torn, corrupt, or inconsistent."""


# -- shared binary-format helpers (RSI1 files and RSB1 wire frames) ------------


def crc32_of(*chunks) -> int:
    """CRC32 over a sequence of byte chunks, without concatenating them."""
    value = 0
    for chunk in chunks:
        value = zlib.crc32(chunk, value)
    return value & 0xFFFFFFFF


def pack_uvarint(value: int) -> bytes:
    """LEB128-style unsigned varint (7 value bits per byte, MSB = more)."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negatives: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def unpack_uvarint(data, offset: int = 0) -> Tuple[int, int]:
    """Decode one uvarint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data) or shift > 63:
            raise ValueError("truncated or oversized uvarint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def manifest_digest(manifest: Manifest) -> int:
    """CRC32 binding a serving index to the exact segment list it serves.

    Derived from every segment's (id, crc32, records) in id order, so
    commits, compactions and imports all change it — a reused index is
    provably derived from the manifest next to it.
    """
    lines = "\n".join(
        f"{meta.segment_id}:{meta.crc32:#010x}:{meta.records}"
        for meta in sorted(
            manifest.segments, key=lambda meta: meta.segment_id
        )
    )
    return zlib.crc32(lines.encode("utf-8")) & 0xFFFFFFFF


def manifest_fingerprint(
    directory: Union[str, Path],
) -> Optional[Tuple[int, int, int]]:
    """``(mtime_ns, size, digest)`` of a directory's committed manifest.

    The cheap change detector live reload polls on: the stat pair
    catches any rewrite (commits replace the file atomically, which
    always changes the stat), and the digest — computed from the cached
    manifest parse, so an unchanged file costs one ``stat`` — is what
    actually decides whether the *segment list* the serving index was
    derived from moved.  ``None`` when no manifest exists (yet).
    """
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    manifest_path = directory / MANIFEST_NAME
    try:
        stat = manifest_path.stat()
    except OSError:
        return None
    manifest = SegmentStore(directory).load_manifest()
    if manifest is None:  # pragma: no cover - deleted between stats
        return None
    return (stat.st_mtime_ns, stat.st_size, manifest_digest(manifest))


@contextlib.contextmanager
def serving_build_lock(directory: Union[str, Path]):
    """Advisory exclusive lock electing one serving-index builder.

    N workers noticing the same manifest change race to rebuild; the
    ``flock`` holder builds while the others block here, then find a
    fresh index whose digest already matches and reuse it.  The lock
    file lives next to ``SERVING.rsi`` (never inside it — the index is
    atomically replaced).  On platforms without ``fcntl`` the lock
    degrades to a no-op, which is safe for single-process serving.
    """
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    with (directory / SERVING_LOCK_NAME).open("a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _materialize_routing(routing):
    """Resolve a lazy routing provider to an actual routing table.

    ``routing`` may be the table itself or a zero-arg callable building
    one on demand — serving workers pass the callable so the (costly)
    world rebuild happens only if a reload actually needs the origin
    table rebuilt.
    """
    if routing is None or hasattr(routing, "routed_prefixes"):
        return routing
    return routing()


def flatten_origin_table(
    routed,
) -> Tuple[List[int], List[int], List[int]]:
    """Flatten announcements to disjoint LPM intervals.

    ``routed`` iterates :class:`~repro.net.routing.RoutedPrefix`-shaped
    objects (``.prefix.network``/``.prefix.length``/``.asn``).  Returns
    ``(starts_hi, starts_lo, asns)``: interval starts sorted ascending,
    each interval running to the next start, ``asns[i]`` the origin of
    every address at or past ``starts[i]`` (0 = unrouted — valid ASNs
    are positive).  The answer for any address is the entry at the
    rightmost start <= address, which one composite binary search finds;
    nesting is resolved here, at build time, with a sweep over the
    prefixes sorted by (network, length).
    """
    entries = sorted(
        (
            (item.prefix.network, item.prefix.length, item.asn)
            for item in routed
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    # Sweep: entering a prefix opens its interval; leaving it restores
    # whatever shorter prefix still covers the space (or unrouted).
    boundaries: List[Tuple[int, int]] = [(0, 0)]
    stack: List[Tuple[int, int]] = []  # (end_exclusive, asn)
    for network, length, asn in entries:
        end = network + (1 << (128 - length))
        while stack and stack[-1][0] <= network:
            popped_end, _ = stack.pop()
            boundaries.append(
                (popped_end, stack[-1][1] if stack else 0)
            )
        boundaries.append((network, asn))
        stack.append((end, asn))
    while stack:
        popped_end, _ = stack.pop()
        boundaries.append((popped_end, stack[-1][1] if stack else 0))

    # Same-start boundaries: the later entry (the more specific prefix
    # entered at that address) wins.  Then merge equal-ASN runs.  A /0
    # announcement ends at 2**128 — unreachable by any query, drop it.
    deduped: List[List[int]] = []
    for start, asn in boundaries:
        if start >= _ADDRESS_SPACE:
            continue
        if deduped and deduped[-1][0] == start:
            deduped[-1][1] = asn
        else:
            deduped.append([start, asn])
    starts_hi: List[int] = []
    starts_lo: List[int] = []
    asns: List[int] = []
    for start, asn in deduped:
        if asns and asns[-1] == asn:
            continue
        starts_hi.append(start >> 64)
        starts_lo.append(start & _U64_MASK)
        asns.append(asn)
    return starts_hi, starts_lo, asns


def le_bytes(column: array) -> bytes:
    """Little-endian bytes of an :mod:`array` column, host order aside."""
    if _BIG_ENDIAN:  # pragma: no cover - no big-endian CI platform
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


_le_bytes = le_bytes


def _pad8(size: int) -> int:
    return (-size) % 8


def _split_addresses(
    addresses: Sequence[int],
) -> Tuple[Sequence[int], Sequence[int]]:
    """Hi/lo u64 halves of a batch of addresses, range-checked.

    A batch that arrives pre-split — an
    :class:`~repro.serve.wire.AddressBlock` wrapping a decoded RSB1
    request payload — short-circuits to its existing ``hi``/``lo``
    columns: zero copies, zero per-int validation (every 16-byte wire
    address is range-valid by construction).
    """
    hi = getattr(addresses, "hi", None)
    if hi is not None:
        return hi, addresses.lo
    q_hi: List[int] = []
    q_lo: List[int] = []
    for address in addresses:
        if not isinstance(address, int) or isinstance(address, bool):
            raise ValueError(
                f"addresses must be ints, not {type(address).__name__}"
            )
        if not 0 <= address < _ADDRESS_SPACE:
            raise ValueError(f"address out of range: {address:#x}")
        q_hi.append(address >> 64)
        q_lo.append(address & _U64_MASK)
    return q_hi, q_lo


class ColumnarResults:
    """Column-major batch answers: the binary wire path's zero-loop lane.

    One numpy array per reply column (family-specific order, see below)
    plus a boolean ``mask`` for families where results can be None, with
    masked-out entries **zeroed** — exactly the RSB1 reply payload
    layout, so :func:`repro.serve.wire.encode_reply` is one ``tobytes``
    per column and byte-identical to encoding the materialized list.

    Behaves enough like the list the ``*_batch`` methods return for the
    engine to slice coalesced batches per waiter: ``len()``, integer
    indexing (materializes one Python value) and slicing (a columnar
    sub-view).  :meth:`to_list` materializes the whole batch into
    exactly the Python objects the matching list path produces.

    Column order per family: ``bool`` → ``(flags,)`` (np.bool\\_);
    ``f64opt`` → ``(values,)``; ``record`` → ``(first, last, counts)``;
    ``features`` → ``(entropies, codes, macs)`` (result-tuple order, a
    stored ``NO_MAC`` meaning "no MAC"); ``asn`` → ``(asns,)`` (u4,
    0 meaning None).
    """

    __slots__ = ("family", "mask", "columns")

    def __init__(self, family: str, mask, columns: Tuple) -> None:
        self.family = family
        self.mask = mask
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns[0])

    def __getitem__(self, item):
        if isinstance(item, slice):
            mask = None if self.mask is None else self.mask[item]
            return ColumnarResults(
                self.family,
                mask,
                tuple(column[item] for column in self.columns),
            )
        family = self.family
        if family == "bool":
            return bool(self.columns[0][item])
        if family == "asn":
            return int(self.columns[0][item]) or None
        if not self.mask[item]:
            return None
        if family == "f64opt":
            return float(self.columns[0][item])
        if family == "record":
            first, last, counts = self.columns
            return (
                float(first[item]),
                float(last[item]),
                int(counts[item]),
            )
        entropies, codes, macs = self.columns
        mac = int(macs[item])
        return (
            float(entropies[item]),
            int(codes[item]),
            None if mac == _kernels.NO_MAC else mac,
        )

    def __iter__(self):
        return iter(self.to_list())

    def to_list(self) -> List:
        """The batch as the plain Python list the list path produces."""
        family = self.family
        if family == "bool":
            return self.columns[0].tolist()
        if family == "asn":
            return [asn or None for asn in self.columns[0].tolist()]
        mask = self.mask.tolist()
        if family == "f64opt":
            return [
                value if hit else None
                for hit, value in zip(mask, self.columns[0].tolist())
            ]
        if family == "record":
            first, last, counts = (c.tolist() for c in self.columns)
            return [
                (first[i], last[i], counts[i]) if hit else None
                for i, hit in enumerate(mask)
            ]
        entropies, codes, macs = (c.tolist() for c in self.columns)
        no_mac = _kernels.NO_MAC
        return [
            (
                entropies[i],
                codes[i],
                None if macs[i] == no_mac else macs[i],
            )
            if hit
            else None
            for i, hit in enumerate(mask)
        ]

    @classmethod
    def concat(cls, parts: Sequence["ColumnarResults"]):
        """Concatenate chunked results (the engine's max_batch split)."""
        if len(parts) == 1:
            return parts[0]
        np = _kernels._np
        first = parts[0]
        mask = (
            None
            if first.mask is None
            else np.concatenate([part.mask for part in parts])
        )
        columns = tuple(
            np.concatenate([part.columns[i] for part in parts])
            for i in range(len(first.columns))
        )
        return cls(first.family, mask, columns)


def _peek_generation(path: Path) -> int:
    """Best-effort previous generation, 0 when unreadable.

    Reads only the fixed header so even a torn file (valid header, torn
    columns) still carries its generation forward — readers distinguish
    rebuilds by a strictly growing number.
    """
    try:
        with path.open("rb") as stream:
            head = stream.read(_HEADER_SIZE)
    except OSError:
        return 0
    if len(head) != _HEADER_SIZE:
        return 0
    try:
        magic, version, _, _, _, _, _, generation, _ = _HEADER.unpack(head)
    except struct.error:  # pragma: no cover - fixed-size read
        return 0
    if magic != _MAGIC or version != _VERSION:
        return 0
    return generation


def build_serving_index(
    directory: Union[str, Path],
    *,
    routing=None,
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Derive ``SERVING.rsi`` from a segment store's ``.idx`` partials.

    Folds the seal-time partial indexes (re-reading **zero** sealed
    ``.seg`` payloads while the partials are intact), sorts the columns
    by address, flattens ``routing`` (a
    :class:`~repro.net.routing.RoutingTable` or anything with
    ``routed_prefixes()``) into the LPM origin table when given, and
    atomically replaces any previous index — bumping its generation and
    stamping the manifest digest it was derived from.  Returns the
    index path.
    """
    registry = NULL_REGISTRY if metrics is None else metrics
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    store = SegmentStore(directory, metrics=registry)
    manifest = store.load_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no {MANIFEST_NAME} in {directory} to index"
        )
    with registry.span("serve-index-build"):
        index = store.reader().build_index()

        size = len(index.addresses)
        order = sorted(range(size), key=index.addresses.__getitem__)
        addr_hi = array("Q", bytes(8 * size))
        addr_lo = array("Q", bytes(8 * size))
        first = array("d", bytes(8 * size))
        last = array("d", bytes(8 * size))
        counts = array("Q", bytes(8 * size))
        entropies = array("d", bytes(8 * size))
        macs = array("Q", bytes(8 * size))
        codes = array("B", bytes(size))
        for out_row, src in enumerate(order):
            address = index.addresses[src]
            addr_hi[out_row] = address >> 64
            addr_lo[out_row] = address & _U64_MASK
            first[out_row] = index.first[src]
            last[out_row] = index.last[src]
            counts[out_row] = index.counts[src]
            entropies[out_row] = index.entropies[src]
            macs[out_row] = index.macs[src]
            codes[out_row] = index.pattern_codes[src]
        slash48 = array(
            "Q",
            sorted({hi & _SLASH48_HI_MASK for hi in addr_hi}),
        )
        slash64 = array("Q", sorted(set(addr_hi)))

        flags = 0
        origin_hi = array("Q")
        origin_lo = array("Q")
        origin_asn = array("I")
        if routing is not None:
            starts_hi, starts_lo, asns = flatten_origin_table(
                routing.routed_prefixes()
            )
            origin_hi = array("Q", starts_hi)
            origin_lo = array("Q", starts_lo)
            origin_asn = array("I", asns)
            flags |= _FLAG_ORIGIN_TABLE

        path = directory / SERVING_INDEX_NAME
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            flags,
            size,
            len(slash48),
            len(slash64),
            len(origin_asn),
            _peek_generation(path) + 1,
            manifest_digest(manifest),
        )
        parts = [header]
        for column in (
            addr_hi, addr_lo, first, last, counts, entropies, macs,
        ):
            parts.append(_le_bytes(column))
        parts.append(_le_bytes(codes))
        parts.append(bytes(_pad8(len(codes))))
        parts.append(_le_bytes(slash48))
        parts.append(_le_bytes(slash64))
        parts.append(_le_bytes(origin_hi))
        parts.append(_le_bytes(origin_lo))
        parts.append(_le_bytes(origin_asn))
        parts.append(bytes(_pad8(4 * len(origin_asn))))
        body = b"".join(parts)
        blob = body + _FOOTER.pack(_FOOTER_MAGIC, crc32_of(body))
        store._atomic_write(path, blob)
    registry.counter(
        "repro_serve_index_builds_total", "serving index builds"
    ).inc()
    registry.gauge(
        "repro_serve_index_rows", "rows in the last built serving index"
    ).set(size)
    return path


class ServingIndex:
    """A read-only, mmap-backed view over one ``SERVING.rsi`` file.

    Open with :meth:`open` (or :func:`ensure_serving_index`).  All query
    methods are batch-shaped — a list of addresses in, a list of plain
    Python results out — because the serving engine's whole point is
    answering many concurrent lookups with one vectorized binary search
    (:func:`repro.core.kernels.pair_searchsorted`).  The mmap means the
    columns are never copied into the process: the kernel page cache is
    shared across every worker serving the same file.
    """

    def __init__(
        self,
        path: Path,
        stream,
        mapped: mmap.mmap,
        header: Tuple[int, ...],
    ) -> None:
        self.path = path
        self._stream = stream
        self._mm = mapped
        self._raw = memoryview(mapped)
        self._views: List[memoryview] = []
        (
            self.flags,
            self.rows,
            self.slash48_count,
            self.slash64_count,
            self.origin_intervals,
            self.generation,
            self.source_digest,
        ) = header
        self._numpy = _kernels._np is not None

        offset = _HEADER_SIZE
        self._hi, offset = self._u64(offset, self.rows)
        self._lo, offset = self._u64(offset, self.rows)
        self._first, offset = self._f64(offset, self.rows)
        self._last, offset = self._f64(offset, self.rows)
        self._counts, offset = self._u64(offset, self.rows)
        self._entropies, offset = self._f64(offset, self.rows)
        self._macs, offset = self._u64(offset, self.rows)
        self._codes, offset = self._u8(offset, self.rows)
        offset += _pad8(self.rows)
        self._slash48, offset = self._u64(offset, self.slash48_count)
        self._slash64, offset = self._u64(offset, self.slash64_count)
        self._origin_hi, offset = self._u64(
            offset, self.origin_intervals
        )
        self._origin_lo, offset = self._u64(
            offset, self.origin_intervals
        )
        self._origin_asn, offset = self._u32(
            offset, self.origin_intervals
        )
        offset += _pad8(4 * self.origin_intervals)
        if offset + _FOOTER_SIZE != len(mapped):
            raise ServingIndexError(
                "serving index size disagrees with its header counts",
                path=path,
                offset=offset,
            )

    # -- opening -----------------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path]) -> "ServingIndex":
        """Map and validate a serving index.

        ``path`` is the ``.rsi`` file, its segment directory, or that
        directory's ``MANIFEST.json``.  The whole file is CRC-checked
        against the ``RSIF`` footer before any query — a torn or
        truncated index raises :class:`ServingIndexError` (and is never
        served); a missing one raises :class:`FileNotFoundError`.
        """
        path = Path(path)
        if path.name == MANIFEST_NAME:
            path = path.parent
        if path.is_dir():
            path = path / SERVING_INDEX_NAME
        stream = path.open("rb")
        try:
            try:
                mapped = mmap.mmap(
                    stream.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError as error:
                raise ServingIndexError(
                    f"unmappable serving index: {error}", path=path
                ) from error
            try:
                return cls._validate(path, stream, mapped)
            except BaseException:
                mapped.close()
                raise
        except BaseException:
            stream.close()
            raise

    @classmethod
    def _validate(
        cls, path: Path, stream, mapped: mmap.mmap
    ) -> "ServingIndex":
        total = len(mapped)
        if total < _HEADER_SIZE + _FOOTER_SIZE:
            raise ServingIndexError(
                f"serving index truncated to {total} bytes", path=path
            )
        (
            magic,
            version,
            flags,
            rows,
            n48,
            n64,
            n_origins,
            generation,
            digest,
        ) = _HEADER.unpack_from(mapped, 0)
        if magic != _MAGIC:
            raise ServingIndexError(
                f"bad serving index magic {magic!r}", path=path, offset=0
            )
        if version != _VERSION:
            raise ServingIndexError(
                f"unsupported serving index version {version}",
                path=path,
                offset=4,
            )
        footer_magic, stored_crc = _FOOTER.unpack_from(
            mapped, total - _FOOTER_SIZE
        )
        if footer_magic != _FOOTER_MAGIC:
            raise ServingIndexError(
                "serving index footer missing (torn write?)",
                path=path,
                offset=total - _FOOTER_SIZE,
            )
        with memoryview(mapped) as view:
            actual_crc = crc32_of(view[: total - _FOOTER_SIZE])
        if actual_crc != stored_crc:
            raise ServingIndexError(
                f"serving index CRC mismatch: stored {stored_crc:#010x}, "
                f"actual {actual_crc:#010x}",
                path=path,
            )
        return cls(
            path,
            stream,
            mapped,
            (flags, rows, n48, n64, n_origins, generation, digest),
        )

    # -- column views ------------------------------------------------------------

    def _u64(self, offset: int, count: int):
        return self._wrap(offset, count, 8, "<u8", "Q")

    def _f64(self, offset: int, count: int):
        return self._wrap(offset, count, 8, "<f8", "d")

    def _u32(self, offset: int, count: int):
        return self._wrap(offset, count, 4, "<u4", "I")

    def _u8(self, offset: int, count: int):
        return self._wrap(offset, count, 1, "u1", "B")

    def _wrap(
        self, offset: int, count: int, width: int, dtype: str, code: str
    ):
        end = offset + width * count
        if end + _FOOTER_SIZE > len(self._mm):
            raise ServingIndexError(
                "serving index columns overrun the file",
                path=self.path,
                offset=offset,
            )
        if self._numpy:
            np = _kernels._np
            column = np.frombuffer(
                self._mm, dtype=dtype, count=count, offset=offset
            )
        elif _BIG_ENDIAN:  # pragma: no cover - no big-endian CI platform
            column = array(code)
            column.frombytes(self._raw[offset:end].tobytes())
            column.byteswap()
        else:
            column = self._raw[offset:end].cast(code)
            self._views.append(column)
        return column, end

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping (queries are invalid afterwards)."""
        for view in self._views:
            view.release()
        self._views = []
        for attr in (
            "_hi", "_lo", "_first", "_last", "_counts", "_entropies",
            "_macs", "_codes", "_slash48", "_slash64", "_origin_hi",
            "_origin_lo", "_origin_asn",
        ):
            setattr(self, attr, None)
        self._raw.release()
        try:
            self._mm.close()
        except BufferError:  # pragma: no cover - a caller kept a view
            pass
        self._stream.close()

    def __enter__(self) -> "ServingIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def has_origin_table(self) -> bool:
        return bool(self.flags & _FLAG_ORIGIN_TABLE)

    def describe(self) -> Dict[str, object]:
        """Shape summary (the ``stats`` query answer)."""
        return {
            "path": str(self.path),
            "rows": self.rows,
            "slash48s": self.slash48_count,
            "slash64s": self.slash64_count,
            "origin_intervals": self.origin_intervals,
            "has_origin_table": self.has_origin_table,
            "generation": self.generation,
            "source_digest": f"{self.source_digest:#010x}",
        }

    # -- batch queries -----------------------------------------------------------

    def rows_of(self, addresses: Sequence[int]) -> List[int]:
        """Row of each address in the sorted columns, -1 when absent."""
        if not len(addresses):
            return []
        q_hi, q_lo = _split_addresses(addresses)
        positions = _kernels.pair_searchsorted(
            self._hi, self._lo, q_hi, q_lo, "left"
        )
        rows = self.rows
        if self._numpy and len(positions) >= _VECTOR_MIN and rows:
            np = _kernels._np
            count = len(positions)
            pos = np.fromiter(positions, dtype=np.int64, count=count)
            qh = _as_u64_array(np, q_hi, count)
            ql = _as_u64_array(np, q_lo, count)
            clipped = np.minimum(pos, rows - 1)
            hit = (
                (pos < rows)
                & (self._hi[clipped] == qh)
                & (self._lo[clipped] == ql)
            )
            return np.where(hit, pos, -1).tolist()
        hi = self._hi
        lo = self._lo
        out = []
        append = out.append
        for i, position in enumerate(positions):
            append(
                position
                if position < rows
                and hi[position] == q_hi[i]
                and lo[position] == q_lo[i]
                else -1
            )
        return out

    def _gather(self, rows: List[int], column, convert):
        """Per-row column values for located rows (None for misses)."""
        if self._numpy and len(rows) >= _VECTOR_MIN and self.rows:
            np = _kernels._np
            found = np.fromiter(rows, dtype=np.int64, count=len(rows))
            values = column[np.maximum(found, 0)].tolist()
            return [
                None if row < 0 else value
                for row, value in zip(rows, values)
            ]
        return [
            None if row < 0 else convert(column[row]) for row in rows
        ]

    def record_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[Tuple[float, float, int]]]:
        """``(first, last, count)`` per address, None when absent."""
        rows = self.rows_of(addresses)
        first = self._gather(rows, self._first, float)
        last = self._gather(rows, self._last, float)
        counts = self._gather(rows, self._counts, int)
        return [
            None if row < 0 else (first[i], last[i], counts[i])
            for i, row in enumerate(rows)
        ]

    def lifetime_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[float]]:
        """``last - first`` per address, None when absent."""
        rows = self.rows_of(addresses)
        if self._numpy and len(rows) >= _VECTOR_MIN and self.rows:
            np = _kernels._np
            found = np.fromiter(rows, dtype=np.int64, count=len(rows))
            clipped = np.maximum(found, 0)
            deltas = (
                self._last[clipped] - self._first[clipped]
            ).tolist()
            return [
                None if row < 0 else delta
                for row, delta in zip(rows, deltas)
            ]
        return [
            None
            if row < 0
            else float(self._last[row]) - float(self._first[row])
            for row in rows
        ]

    def entropy_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[float]]:
        """Normalized IID entropy per address, None when absent."""
        return self._gather(
            self.rows_of(addresses), self._entropies, float
        )

    def features_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[Tuple[float, int, Optional[int]]]]:
        """``(entropy, pattern_code, mac-or-None)`` per address."""
        rows = self.rows_of(addresses)
        entropies = self._gather(rows, self._entropies, float)
        codes = self._gather(rows, self._codes, int)
        macs = self._gather(rows, self._macs, int)
        return [
            None
            if row < 0
            else (
                entropies[i],
                codes[i],
                None if macs[i] == _kernels.NO_MAC else macs[i],
            )
            for i, row in enumerate(rows)
        ]

    def contains_batch(self, addresses: Sequence[int]) -> List[bool]:
        """Whether each address has a row."""
        return [row >= 0 for row in self.rows_of(addresses)]

    def slash48_batch(self, addresses: Sequence[int]) -> List[bool]:
        """Whether each address's /48 holds any corpus address."""
        q_hi, _ = _split_addresses(addresses)
        if self._numpy and isinstance(q_hi, _kernels._np.ndarray):
            probes = q_hi & _kernels._np.uint64(_SLASH48_HI_MASK)
        else:
            probes = [hi & _SLASH48_HI_MASK for hi in q_hi]
        return _kernels.sorted_contains_u64(self._slash48, probes)

    def slash64_batch(self, addresses: Sequence[int]) -> List[bool]:
        """Whether each address's /64 holds any corpus address."""
        q_hi, _ = _split_addresses(addresses)
        return _kernels.sorted_contains_u64(self._slash64, q_hi)

    def origin_batch(
        self, addresses: Sequence[int]
    ) -> List[Optional[int]]:
        """LPM origin ASN per address from the flattened origin table."""
        if not self.has_origin_table:
            raise ServingIndexError(
                "serving index was built without an origin table; "
                "rebuild with routing= to serve origin queries",
                path=self.path,
            )
        if not len(addresses):
            return []
        q_hi, q_lo = _split_addresses(addresses)
        # Rightmost interval start <= address: 'right' insertion - 1.
        # The table always starts at (0, 0), so the index is >= 0.
        positions = _kernels.pair_searchsorted(
            self._origin_hi, self._origin_lo, q_hi, q_lo, "right"
        )
        asn_col = self._origin_asn
        if self._numpy and len(positions) >= _VECTOR_MIN:
            np = _kernels._np
            pos = (
                np.fromiter(
                    positions, dtype=np.int64, count=len(positions)
                )
                - 1
            )
            asns = asn_col[pos].tolist()
            return [None if asn == 0 else asn for asn in asns]
        return [
            None
            if asn_col[position - 1] == 0
            else int(asn_col[position - 1])
            for position in positions
        ]

    # -- columnar queries (the binary wire path's zero-loop lane) ----------------

    def _columnar_rows(self, qh, ql, count: int):
        """(row-index, hit) ndarrays; misses index row 0 with hit False."""
        np = _kernels._np
        if not self.rows:
            zeros = np.zeros(count, dtype=np.int64)
            return zeros, np.zeros(count, dtype=bool)
        pos = _kernels.pair_searchsorted_array(
            self._hi, self._lo, qh, ql, "left"
        )
        clipped = np.minimum(pos, self.rows - 1)
        hit = (
            (pos < self.rows)
            & (self._hi[clipped] == qh)
            & (self._lo[clipped] == ql)
        )
        return np.where(hit, pos, 0), hit

    def _columnar_gather(self, hit, rows_idx, column, zero):
        np = _kernels._np
        if not self.rows:
            return np.zeros(len(hit), dtype=column.dtype)
        return np.where(hit, column[rows_idx], zero)

    def _columnar_member(self, column, probes):
        np = _kernels._np
        size = len(column)
        if not size:
            return np.zeros(len(probes), dtype=bool)
        positions = np.searchsorted(column, probes)
        found = positions < size
        clipped = np.where(found, positions, 0)
        found &= column[clipped] == probes
        return found

    def columnar_batch(
        self, op: str, addresses: Sequence[int]
    ) -> Optional[ColumnarResults]:
        """Column-major answers for ``op``, or None to use the list path.

        Produces exactly the values the matching ``*_batch`` method
        would (see :class:`ColumnarResults`) without building per-item
        Python objects: searchsorted rows, fancy-indexed columns, a hit
        mask — ready for one-``tobytes``-per-column RSB1 encoding.
        Returns None when numpy is unavailable, the batch is empty, or
        ``op == "origin"`` without an origin table (the engine's
        resolver shim answers those instead).
        """
        if not self._numpy or not len(addresses):
            return None
        np = _kernels._np
        count = len(addresses)
        if op in ("slash48", "slash64"):
            q_hi, _ = _split_addresses(addresses)
            probes = _as_u64_array(np, q_hi, count)
            if op == "slash48":
                probes = probes & np.uint64(_SLASH48_HI_MASK)
                column = self._slash48
            else:
                column = self._slash64
            return ColumnarResults(
                "bool", None, (self._columnar_member(column, probes),)
            )
        q_hi, q_lo = _split_addresses(addresses)
        qh = _as_u64_array(np, q_hi, count)
        ql = _as_u64_array(np, q_lo, count)
        if op == "origin":
            if not self.has_origin_table:
                return None
            positions = _kernels.pair_searchsorted_array(
                self._origin_hi, self._origin_lo, qh, ql, "right"
            )
            # The table always starts at (0, 0): positions >= 1.
            return ColumnarResults(
                "asn", None, (self._origin_asn[positions - 1],)
            )
        rows_idx, hit = self._columnar_rows(qh, ql, count)
        if op == "contains":
            return ColumnarResults("bool", None, (hit,))
        gather = self._columnar_gather
        if op == "lifetime":
            if not self.rows:
                values = np.zeros(count)
            else:
                values = np.where(
                    hit, self._last[rows_idx] - self._first[rows_idx], 0.0
                )
            return ColumnarResults("f64opt", hit, (values,))
        if op == "entropy":
            return ColumnarResults(
                "f64opt",
                hit,
                (gather(hit, rows_idx, self._entropies, 0.0),),
            )
        if op == "record":
            return ColumnarResults(
                "record",
                hit,
                (
                    gather(hit, rows_idx, self._first, 0.0),
                    gather(hit, rows_idx, self._last, 0.0),
                    gather(hit, rows_idx, self._counts, 0),
                ),
            )
        if op == "features":
            return ColumnarResults(
                "features",
                hit,
                (
                    gather(hit, rows_idx, self._entropies, 0.0),
                    gather(hit, rows_idx, self._codes, 0),
                    gather(hit, rows_idx, self._macs, 0),
                ),
            )
        raise ValueError(f"unknown columnar op {op!r}")


def ensure_serving_index(
    directory: Union[str, Path],
    *,
    routing=None,
    metrics: Optional[MetricsRegistry] = None,
    rebuild: bool = False,
    lock: bool = False,
) -> ServingIndex:
    """Open the directory's serving index, (re)building it when needed.

    An existing index is reused only when it validates (CRC), its
    stamped :func:`manifest_digest` matches the manifest actually next
    to it, and it has an origin table whenever ``routing`` demands one —
    otherwise (missing, torn, stale after commits/compaction, or
    ``rebuild=True``) a fresh index is derived from the ``.idx``
    partials and atomically swapped in.  A torn index is therefore
    *never served*.

    ``routing`` may also be a zero-arg callable returning a routing
    table; it is invoked only if a build actually happens.  With
    ``lock=True`` the whole check-or-build runs under
    :func:`serving_build_lock`, so concurrent workers reacting to one
    manifest change elect a single builder: the winner rebuilds, the
    losers block on the lock and then reuse the fresh index.
    """
    if lock:
        with serving_build_lock(directory):
            return ensure_serving_index(
                directory,
                routing=routing,
                metrics=metrics,
                rebuild=rebuild,
            )
    registry = NULL_REGISTRY if metrics is None else metrics
    directory = Path(directory)
    if directory.name == MANIFEST_NAME:
        directory = directory.parent
    store = SegmentStore(directory, metrics=registry)
    manifest = store.load_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no {MANIFEST_NAME} in {directory} to serve"
        )
    reason = "requested" if rebuild else None
    if reason is None:
        try:
            index = ServingIndex.open(directory)
        except FileNotFoundError:
            reason = "missing"
        except ServingIndexError:
            reason = "torn"
        else:
            if index.source_digest != manifest_digest(manifest):
                index.close()
                reason = "stale"
            elif routing is not None and not index.has_origin_table:
                index.close()
                reason = "no-origin-table"
            else:
                registry.counter(
                    "repro_serve_index_reused_total",
                    "serving indexes reused as found on disk",
                ).inc()
                return index
    registry.counter(
        "repro_serve_index_rebuilds_total",
        "serving indexes rebuilt from segment partials",
        labels={"reason": reason},
    ).inc()
    build_serving_index(
        directory, routing=_materialize_routing(routing), metrics=registry
    )
    return ServingIndex.open(directory)
