"""The asyncio query engine: coalesce concurrent lookups, answer in bulk.

A naive async server answers each query with its own binary search —
correct, but the per-query Python overhead (parse, search, reply) caps
throughput far below what the vectorized kernels can do.  The engine
below exploits a property of event loops: every query that arrives
while the loop is busy is *already concurrent*, so deferring the actual
lookup by one ``call_soon`` tick lets all of them pile into a single
batch, answered by **one** vectorized kernel call
(:func:`repro.core.kernels.pair_searchsorted` over the mmap'd columns).
Each caller still awaits its own future and receives only its own
results; coalescing changes scheduling, never answers.

Instrumentation (``repro.obs``): per-op query counters, per-op latency
histograms (enqueue to answer), batch counters and batch-size
histograms — the metrics that tell an operator whether coalescing is
actually happening under their load.

Origin queries prefer the index's flattened origin table.  When the
index was built without one, an ``origin_resolver`` (typically an
LRU-capped :class:`~repro.core.CachedOrigins`, see
:data:`DEFAULT_ORIGIN_CACHE_SLASH64S`) answers instead — capped because
a serving process lives long enough to meet unboundedly many /64s.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import DEFAULT_TIME_BUCKETS, MetricsRegistry, NULL_REGISTRY
from .format import ColumnarResults, ServingIndex, ServingIndexError
from .wire import ADDRESS_OPS, AddressBlock, QueryOp, resolve_op

__all__ = [
    "CoalescingEngine",
    "DEFAULT_ORIGIN_CACHE_SLASH64S",
    "QUERY_OPS",
]

#: Default LRU bound for a serving process's fallback origin memo.
DEFAULT_ORIGIN_CACHE_SLASH64S = 65536

#: Names of the query ops the engine serves — derived from the shared
#: :data:`~repro.serve.wire.QUERY_OP_TABLE` registry (each an
#: address-batch method of :class:`~repro.serve.format.ServingIndex`;
#: ``stats`` is served by the transport layer, not the engine).
QUERY_OPS: Tuple[str, ...] = tuple(spec.name for spec in ADDRESS_OPS)

#: Batch-size histogram buckets: how many queries one kernel call served.
_BATCH_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


def _merge_parts(parts: List[Sequence[int]]) -> Sequence[int]:
    """One batch out of same-tick request parts.  All-binary parts
    (zero-copy :class:`~repro.serve.wire.AddressBlock` views) merge as
    numpy column concatenation — never materialized into Python ints —
    anything else flattens to a plain int list."""
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(part, AddressBlock) for part in parts):
        merged = AddressBlock.concat(parts)
        if merged is not None:
            return merged
    args: List[int] = []
    for part in parts:
        args.extend(part)
    return args


class _Pending:
    """One op's accumulating batch for the current event-loop tick.

    Requests are held as ``parts`` — each a plain int sequence or a
    zero-copy :class:`~repro.serve.wire.AddressBlock` — and merged only
    at flush time by :func:`_merge_parts`.
    """

    __slots__ = ("parts", "total", "waiters")

    def __init__(self) -> None:
        self.parts: List[Sequence[int]] = []
        self.total = 0
        # (future, start, count, enqueued_at, columnar) — each waiter
        # owns the slice [start, start + count) of the batch results;
        # ``columnar`` marks binary-path waiters that accept a
        # :class:`~repro.serve.format.ColumnarResults` slice instead of
        # a materialized list.
        self.waiters: List[
            Tuple[asyncio.Future, int, int, float, bool]
        ] = []

    def extend(self, addresses: Sequence[int]) -> None:
        self.parts.append(addresses)
        self.total += len(addresses)


class CoalescingEngine:
    """Serve batch queries over a :class:`ServingIndex`, coalesced.

    ``await engine.batch(op, addresses)`` returns one result per
    address.  With ``coalesce=True`` (the default) all calls issued in
    the same event-loop tick are answered by one kernel call per op;
    ``coalesce=False`` executes each call immediately — the "naive
    one-query-per-await" baseline the serving benchmark compares
    against.  ``max_batch`` chunks pathologically large merged batches
    to bound per-call latency.
    """

    def __init__(
        self,
        index: ServingIndex,
        *,
        metrics: Optional[MetricsRegistry] = None,
        origin_resolver: Optional[
            Callable[[int], Optional[int]]
        ] = None,
        coalesce: bool = True,
        max_batch: int = 8192,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        self.index = index
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.coalesce = coalesce
        self.max_batch = max_batch
        self._origin_resolver = origin_resolver
        self._pending: Dict[int, _Pending] = {}
        self._flush_scheduled = False
        #: Swaps performed via :meth:`swap_index` (live index reloads).
        self.index_swaps = 0
        self._executors = self._bind_executors(index)
        #: Plain counters mirrored into the registry (cheap to read in
        #: describe() without a registry snapshot).
        self.queries_served = 0
        self.batches_executed = 0
        self._m_queries = {
            op: self.metrics.counter(
                "repro_serve_queries_total",
                "queries answered by the serving engine",
                labels={"op": op},
            )
            for op in QUERY_OPS
        }
        self._m_latency = {
            op: self.metrics.histogram(
                "repro_serve_query_seconds",
                "enqueue-to-answer latency of served queries",
                buckets=DEFAULT_TIME_BUCKETS,
                labels={"op": op},
            )
            for op in QUERY_OPS
        }
        self._m_batches = self.metrics.counter(
            "repro_serve_batches_total",
            "vectorized kernel calls executed for coalesced batches",
        )
        self._m_batch_size = self.metrics.histogram(
            "repro_serve_batch_size",
            "queries answered per coalesced kernel call",
            buckets=_BATCH_BUCKETS,
        )

    def _bind_executors(
        self, index: ServingIndex
    ) -> Dict[int, Callable]:
        # Table-driven off the shared registry, keyed by wire op code:
        # every addressed op maps to the index batch method of the same
        # name, except origin, which routes through the table-or-
        # resolver shim.
        return {
            spec.code: (
                self._origin_exec
                if spec.name == "origin"
                else getattr(index, f"{spec.name}_batch")
            )
            for spec in ADDRESS_OPS
        }

    def swap_index(self, index: ServingIndex) -> ServingIndex:
        """Atomically swap the serving snapshot; returns the old index.

        Batches execute synchronously inside one event-loop tick, so a
        swap can never interleave with a kernel call: batches enqueued
        before the swap but not yet flushed are answered from the new
        snapshot (exactly as if they had arrived just after it), and
        every result the old snapshot produced is already materialized
        into plain Python objects.  The caller owns closing the
        returned old index; an mmap still referenced by a live view
        survives :meth:`ServingIndex.close` until released.
        """
        old = self.index
        self.index = index
        self._executors = self._bind_executors(index)
        self.index_swaps += 1
        return old

    # -- public query surface ----------------------------------------------------

    async def batch(
        self, op, addresses: Sequence[int], *, columnar: bool = False
    ) -> List:
        """Answer ``op`` for every address (one result per address).

        ``op`` is anything the shared registry resolves — a wire name
        (``"contains"``), a wire op code (the binary server's path), or
        a :class:`~repro.serve.wire.QueryOp` itself.

        ``columnar=True`` (the binary wire path) asks for a
        :class:`~repro.serve.format.ColumnarResults` instead of a list
        — identical values, but held as numpy columns ready for
        zero-loop RSB1 encoding.  It is best-effort: the answer is a
        plain list whenever the columnar lane is unavailable (no numpy,
        origin served by a resolver), so callers must accept either.
        """
        spec = resolve_op(op)
        executor = self._executors.get(spec.code)
        if executor is None:
            raise ValueError(
                f"unknown query op {spec.name!r}; serving ops: "
                + ", ".join(QUERY_OPS)
            )
        if not len(addresses):
            return []
        if not self.coalesce:
            started = perf_counter()
            if not isinstance(addresses, (list, AddressBlock)):
                addresses = list(addresses)
            results = None
            if columnar:
                results = self._execute_columnar(spec, addresses)
            if results is None:
                results = self._execute(spec, executor, addresses)
            self._m_latency[spec.name].observe(perf_counter() - started)
            return results
        future = asyncio.get_running_loop().create_future()
        pending = self._pending.get(spec.code)
        if pending is None:
            pending = self._pending[spec.code] = _Pending()
        start = pending.total
        pending.extend(addresses)
        pending.waiters.append(
            (future, start, len(addresses), perf_counter(), columnar)
        )
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        return await future

    async def query(self, op, address: int):
        """Answer a single query (one-element :meth:`batch`)."""
        return (await self.batch(op, (address,)))[0]

    def describe(self) -> Dict[str, object]:
        """Engine + index shape (the ``stats`` op's answer)."""
        info = dict(self.index.describe())
        info["coalesce"] = self.coalesce
        info["max_batch"] = self.max_batch
        info["queries_served"] = self.queries_served
        info["batches_executed"] = self.batches_executed
        info["index_swaps"] = self.index_swaps
        if self.index.has_origin_table:
            info["origin_source"] = "table"
        elif self._origin_resolver is not None:
            info["origin_source"] = "resolver"
        else:
            info["origin_source"] = None
        return info

    # -- execution ---------------------------------------------------------------

    def _origin_exec(
        self, addresses: Sequence[int]
    ) -> List[Optional[int]]:
        if self.index.has_origin_table:
            return self.index.origin_batch(addresses)
        resolver = self._origin_resolver
        if resolver is None:
            raise ServingIndexError(
                "no origin table in the serving index and no origin "
                "resolver configured",
                path=self.index.path,
            )
        return [resolver(address) for address in addresses]

    def _execute(
        self, spec: QueryOp, executor: Callable, args: Sequence[int]
    ) -> List:
        results: List = []
        for start in range(0, len(args), self.max_batch):
            chunk = args[start : start + self.max_batch]
            results.extend(executor(chunk))
            self.batches_executed += 1
            self._m_batches.inc()
            self._m_batch_size.observe(len(chunk))
        self.queries_served += len(args)
        self._m_queries[spec.name].inc(len(args))
        return results

    def _execute_columnar(
        self, spec: QueryOp, args: Sequence[int]
    ) -> Optional[ColumnarResults]:
        """Column-major execution; None → caller takes the list path."""
        parts = []
        for start in range(0, len(args), self.max_batch):
            chunk = args[start : start + self.max_batch]
            part = self.index.columnar_batch(spec.name, chunk)
            if part is None:
                return None
            parts.append(part)
        for part in parts:
            self.batches_executed += 1
            self._m_batches.inc()
            self._m_batch_size.observe(len(part))
        self.queries_served += len(args)
        self._m_queries[spec.name].inc(len(args))
        return ColumnarResults.concat(parts)

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, {}
        for code, bucket in pending.items():
            spec = resolve_op(code)
            # A waiter whose future is already done (cancelled by a
            # vanished client, typically) gets no answer — so it must
            # contribute neither kernel work nor metrics: counting it
            # in repro_serve_queries_total or observing its
            # enqueue-to-answer "latency" would skew both.
            waiters = bucket.waiters
            live = [w for w in waiters if not w[0].done()]
            if not live:
                continue
            merged = _merge_parts(bucket.parts)
            if len(live) == len(waiters):
                args = merged
            else:
                rebased = []
                pieces = []
                total = 0
                for future, start, count, enqueued, columnar in live:
                    rebased.append(
                        (future, total, count, enqueued, columnar)
                    )
                    pieces.append(merged[start : start + count])
                    total += count
                live = rebased
                args = _merge_parts(pieces)
            try:
                # Execute columnar when any waiter is on the binary
                # path; JSON waiters in the same coalesced batch get
                # their slice materialized below — same values either
                # way, so mixed-protocol batches still coalesce.
                results = None
                if any(w[4] for w in live):
                    results = self._execute_columnar(spec, args)
                if results is None:
                    results = self._execute(
                        spec, self._executors[code], args
                    )
            except Exception as error:
                for future, _, _, _, _ in live:
                    if not future.done():
                        future.set_exception(error)
                continue
            answered = perf_counter()
            latency = self._m_latency[spec.name]
            for future, start, count, enqueued, columnar in live:
                if not future.done():
                    piece = results[start : start + count]
                    if not columnar and isinstance(
                        piece, ColumnarResults
                    ):
                        piece = piece.to_list()
                    future.set_result(piece)
                    latency.observe(answered - enqueued)
