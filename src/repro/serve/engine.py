"""The asyncio query engine: coalesce concurrent lookups, answer in bulk.

A naive async server answers each query with its own binary search —
correct, but the per-query Python overhead (parse, search, reply) caps
throughput far below what the vectorized kernels can do.  The engine
below exploits a property of event loops: every query that arrives
while the loop is busy is *already concurrent*, so deferring the actual
lookup by one ``call_soon`` tick lets all of them pile into a single
batch, answered by **one** vectorized kernel call
(:func:`repro.core.kernels.pair_searchsorted` over the mmap'd columns).
Each caller still awaits its own future and receives only its own
results; coalescing changes scheduling, never answers.

Instrumentation (``repro.obs``): per-op query counters, per-op latency
histograms (enqueue to answer), batch counters and batch-size
histograms — the metrics that tell an operator whether coalescing is
actually happening under their load.

Origin queries prefer the index's flattened origin table.  When the
index was built without one, an ``origin_resolver`` (typically an
LRU-capped :class:`~repro.core.CachedOrigins`, see
:data:`DEFAULT_ORIGIN_CACHE_SLASH64S`) answers instead — capped because
a serving process lives long enough to meet unboundedly many /64s.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import DEFAULT_TIME_BUCKETS, MetricsRegistry, NULL_REGISTRY
from .format import ServingIndex, ServingIndexError

__all__ = [
    "CoalescingEngine",
    "DEFAULT_ORIGIN_CACHE_SLASH64S",
    "QUERY_OPS",
]

#: Default LRU bound for a serving process's fallback origin memo.
DEFAULT_ORIGIN_CACHE_SLASH64S = 65536

#: Query ops the engine serves, each an address-batch method of
#: :class:`~repro.serve.format.ServingIndex`.
QUERY_OPS: Tuple[str, ...] = (
    "record",
    "lifetime",
    "entropy",
    "features",
    "origin",
    "contains",
    "slash48",
    "slash64",
)

#: Batch-size histogram buckets: how many queries one kernel call served.
_BATCH_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


class _Pending:
    """One op's accumulating batch for the current event-loop tick."""

    __slots__ = ("args", "waiters")

    def __init__(self) -> None:
        self.args: List[int] = []
        # (future, start, count, enqueued_at) — each waiter owns the
        # slice [start, start + count) of the batch results.
        self.waiters: List[
            Tuple[asyncio.Future, int, int, float]
        ] = []


class CoalescingEngine:
    """Serve batch queries over a :class:`ServingIndex`, coalesced.

    ``await engine.batch(op, addresses)`` returns one result per
    address.  With ``coalesce=True`` (the default) all calls issued in
    the same event-loop tick are answered by one kernel call per op;
    ``coalesce=False`` executes each call immediately — the "naive
    one-query-per-await" baseline the serving benchmark compares
    against.  ``max_batch`` chunks pathologically large merged batches
    to bound per-call latency.
    """

    def __init__(
        self,
        index: ServingIndex,
        *,
        metrics: Optional[MetricsRegistry] = None,
        origin_resolver: Optional[
            Callable[[int], Optional[int]]
        ] = None,
        coalesce: bool = True,
        max_batch: int = 8192,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        self.index = index
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.coalesce = coalesce
        self.max_batch = max_batch
        self._origin_resolver = origin_resolver
        self._pending: Dict[str, _Pending] = {}
        self._flush_scheduled = False
        #: Swaps performed via :meth:`swap_index` (live index reloads).
        self.index_swaps = 0
        self._executors = self._bind_executors(index)
        #: Plain counters mirrored into the registry (cheap to read in
        #: describe() without a registry snapshot).
        self.queries_served = 0
        self.batches_executed = 0
        self._m_queries = {
            op: self.metrics.counter(
                "repro_serve_queries_total",
                "queries answered by the serving engine",
                labels={"op": op},
            )
            for op in QUERY_OPS
        }
        self._m_latency = {
            op: self.metrics.histogram(
                "repro_serve_query_seconds",
                "enqueue-to-answer latency of served queries",
                buckets=DEFAULT_TIME_BUCKETS,
                labels={"op": op},
            )
            for op in QUERY_OPS
        }
        self._m_batches = self.metrics.counter(
            "repro_serve_batches_total",
            "vectorized kernel calls executed for coalesced batches",
        )
        self._m_batch_size = self.metrics.histogram(
            "repro_serve_batch_size",
            "queries answered per coalesced kernel call",
            buckets=_BATCH_BUCKETS,
        )

    def _bind_executors(
        self, index: ServingIndex
    ) -> Dict[str, Callable]:
        return {
            "record": index.record_batch,
            "lifetime": index.lifetime_batch,
            "entropy": index.entropy_batch,
            "features": index.features_batch,
            "origin": self._origin_exec,
            "contains": index.contains_batch,
            "slash48": index.slash48_batch,
            "slash64": index.slash64_batch,
        }

    def swap_index(self, index: ServingIndex) -> ServingIndex:
        """Atomically swap the serving snapshot; returns the old index.

        Batches execute synchronously inside one event-loop tick, so a
        swap can never interleave with a kernel call: batches enqueued
        before the swap but not yet flushed are answered from the new
        snapshot (exactly as if they had arrived just after it), and
        every result the old snapshot produced is already materialized
        into plain Python objects.  The caller owns closing the
        returned old index; an mmap still referenced by a live view
        survives :meth:`ServingIndex.close` until released.
        """
        old = self.index
        self.index = index
        self._executors = self._bind_executors(index)
        self.index_swaps += 1
        return old

    # -- public query surface ----------------------------------------------------

    async def batch(self, op: str, addresses: Sequence[int]) -> List:
        """Answer ``op`` for every address (one result per address)."""
        executor = self._executors.get(op)
        if executor is None:
            raise ValueError(
                f"unknown query op {op!r}; serving ops: "
                + ", ".join(QUERY_OPS)
            )
        if not len(addresses):
            return []
        if not self.coalesce:
            started = perf_counter()
            results = self._execute(op, executor, list(addresses))
            self._m_latency[op].observe(perf_counter() - started)
            return results
        future = asyncio.get_running_loop().create_future()
        pending = self._pending.get(op)
        if pending is None:
            pending = self._pending[op] = _Pending()
        start = len(pending.args)
        pending.args.extend(addresses)
        pending.waiters.append(
            (future, start, len(addresses), perf_counter())
        )
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)
        return await future

    async def query(self, op: str, address: int):
        """Answer a single query (one-element :meth:`batch`)."""
        return (await self.batch(op, (address,)))[0]

    def describe(self) -> Dict[str, object]:
        """Engine + index shape (the ``stats`` op's answer)."""
        info = dict(self.index.describe())
        info["coalesce"] = self.coalesce
        info["max_batch"] = self.max_batch
        info["queries_served"] = self.queries_served
        info["batches_executed"] = self.batches_executed
        info["index_swaps"] = self.index_swaps
        if self.index.has_origin_table:
            info["origin_source"] = "table"
        elif self._origin_resolver is not None:
            info["origin_source"] = "resolver"
        else:
            info["origin_source"] = None
        return info

    # -- execution ---------------------------------------------------------------

    def _origin_exec(
        self, addresses: Sequence[int]
    ) -> List[Optional[int]]:
        if self.index.has_origin_table:
            return self.index.origin_batch(addresses)
        resolver = self._origin_resolver
        if resolver is None:
            raise ServingIndexError(
                "no origin table in the serving index and no origin "
                "resolver configured",
                path=self.index.path,
            )
        return [resolver(address) for address in addresses]

    def _execute(
        self, op: str, executor: Callable, args: List[int]
    ) -> List:
        results: List = []
        for start in range(0, len(args), self.max_batch):
            chunk = args[start : start + self.max_batch]
            results.extend(executor(chunk))
            self.batches_executed += 1
            self._m_batches.inc()
            self._m_batch_size.observe(len(chunk))
        self.queries_served += len(args)
        self._m_queries[op].inc(len(args))
        return results

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, {}
        for op, bucket in pending.items():
            # A waiter whose future is already done (cancelled by a
            # vanished client, typically) gets no answer — so it must
            # contribute neither kernel work nor metrics: counting it
            # in repro_serve_queries_total or observing its
            # enqueue-to-answer "latency" would skew both.
            waiters = bucket.waiters
            live = [w for w in waiters if not w[0].done()]
            if not live:
                continue
            if len(live) == len(waiters):
                args = bucket.args
            else:
                args = []
                rebased = []
                for future, start, count, enqueued in live:
                    rebased.append(
                        (future, len(args), count, enqueued)
                    )
                    args.extend(bucket.args[start : start + count])
                live = rebased
            try:
                results = self._execute(op, self._executors[op], args)
            except Exception as error:
                for future, _, _, _ in live:
                    if not future.done():
                        future.set_exception(error)
                continue
            answered = perf_counter()
            latency = self._m_latency[op]
            for future, start, count, enqueued in live:
                if not future.done():
                    future.set_result(results[start : start + count])
                    latency.observe(answered - enqueued)
