"""Declarative scenario/chaos sweep harness (the scenario matrix).

The paper's central warning — hitlist quality and harm depend on
*which* networks you observe — turns experimentally into a cartesian
sweep: world composition × fault regime × campaign length × worker
count × seed.  This package runs that sweep as a batch of isolated
cells with the robustness a 64-cell overnight run demands:

* :mod:`repro.matrix.spec` — the declarative :class:`MatrixSpec`, its
  cartesian :meth:`~MatrixSpec.expand` and the validate-before-run gate
  that rejects infeasible cells before any compute is spent;
* :mod:`repro.matrix.manifest` — the atomically-replaced, CRC-framed,
  generation-rotated ``MATRIX.json`` sweep manifest that makes
  ``repro matrix --resume`` crash-safe;
* :mod:`repro.matrix.runner` — per-cell process isolation with
  wall-clock deadlines, hung-cell kill, capped-backoff retry and typed
  :class:`CellFailure` degradation so one bad cell never sinks the
  sweep.
"""

from .manifest import (
    MATRIX_NAME,
    CellRecord,
    MatrixManifest,
    MatrixManifestError,
    load_manifest,
    save_manifest,
)
from .runner import CellFailure, MatrixResults, execute_cell, run_matrix
from .spec import (
    CellRejected,
    CellSpec,
    MatrixSpec,
    expand_and_validate,
    validate_cell,
)

__all__ = [
    "MATRIX_NAME",
    "CellFailure",
    "CellRecord",
    "CellRejected",
    "CellSpec",
    "MatrixManifest",
    "MatrixManifestError",
    "MatrixResults",
    "MatrixSpec",
    "execute_cell",
    "expand_and_validate",
    "load_manifest",
    "run_matrix",
    "save_manifest",
    "validate_cell",
]
