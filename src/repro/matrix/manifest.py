"""The crash-safe sweep manifest: ``MATRIX.json``.

The manifest is the sweep's single source of truth: one
:class:`CellRecord` per expanded cell (runnable or rejected), updated
and rewritten after *every* cell transition.  It follows the same
durability discipline as checkpoints and the segment store:

* **atomic replace** — written to a temp file, fsynced, then
  ``os.replace``\\ d over the live name, so a reader never sees a
  partially-written manifest;
* **CRC framing** — the document embeds a CRC32 of its own canonical
  JSON, so a torn or bit-flipped file is *detected*, not trusted;
* **rotated generations** — the previous manifest survives as
  ``MATRIX.json.1``, and :func:`load_manifest` falls back to it when
  the live file is missing or fails its CRC.

A sweep killed at any instant therefore resumes from a manifest that
is at worst one cell transition stale — and ``--resume`` re-runs
exactly the cells that manifest does not prove complete.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "MATRIX_NAME",
    "MATRIX_FORMAT",
    "CellRecord",
    "MatrixManifest",
    "MatrixManifestError",
    "load_manifest",
    "save_manifest",
]

logger = logging.getLogger(__name__)

#: File name of the live sweep manifest inside a matrix directory.
MATRIX_NAME = "MATRIX.json"

#: Format tag; bump on incompatible layout changes.
MATRIX_FORMAT = "repro-matrix-v1"

#: Every status a cell record can carry.  ``pending`` and ``running``
#: are transient (a crashed sweep leaves them behind; resume re-runs
#: them); the rest are terminal.
CELL_STATUSES = (
    "pending",
    "running",
    "ok",
    "rejected",
    "failed",
    "timeout",
)


class MatrixManifestError(ValueError):
    """A manifest file is structurally invalid or fails its CRC."""


@dataclass
class CellRecord:
    """One cell's lifecycle, as recorded in the manifest."""

    cell_id: str
    label: str
    params: Dict[str, object]
    status: str = "pending"
    #: Execution attempts so far (0 for rejected / never-started cells).
    attempts: int = 0
    #: Failure classification of the *last* failed attempt
    #: (``exception`` / ``timeout`` / ``oom-kill``), ``None`` otherwise.
    kind: Optional[str] = None
    #: Last failure message, ``None`` while healthy.
    error: Optional[str] = None
    #: Validation rejection reasons (rejected cells only).
    reasons: Tuple[str, ...] = ()
    #: SHA-256 of the cell's corpus file once complete.
    digest: Optional[str] = None
    #: Corpus record count once complete.
    records: Optional[int] = None
    #: Wall-clock seconds of the successful attempt.
    seconds: Optional[float] = None
    #: True when a resumed sweep verified this cell's prior output and
    #: did not re-run it.
    skipped_resume: bool = False

    def __post_init__(self) -> None:
        if self.status not in CELL_STATUSES:
            raise MatrixManifestError(
                f"unknown cell status {self.status!r} for {self.cell_id}"
            )

    def to_json(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "label": self.label,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "reasons": list(self.reasons),
            "digest": self.digest,
            "records": self.records,
            "seconds": self.seconds,
            "skipped_resume": self.skipped_resume,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "CellRecord":
        try:
            return cls(
                cell_id=str(doc["cell_id"]),
                label=str(doc["label"]),
                params=dict(doc["params"]),
                status=str(doc["status"]),
                attempts=int(doc.get("attempts", 0)),
                kind=doc.get("kind"),
                error=doc.get("error"),
                reasons=tuple(doc.get("reasons") or ()),
                digest=doc.get("digest"),
                records=doc.get("records"),
                seconds=doc.get("seconds"),
                skipped_resume=bool(doc.get("skipped_resume", False)),
            )
        except (KeyError, TypeError) as error:
            raise MatrixManifestError(
                f"malformed cell record: {error}"
            ) from error


@dataclass
class MatrixManifest:
    """The whole sweep's state: spec identity plus per-cell records."""

    spec_digest: str
    spec: Dict[str, object] = field(default_factory=dict)
    cells: Dict[str, CellRecord] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        """Cells per terminal/transient status (plus resume skips)."""
        counts = {status: 0 for status in CELL_STATUSES}
        counts["skipped_resume"] = 0
        for record in self.cells.values():
            counts[record.status] += 1
            if record.skipped_resume:
                counts["skipped_resume"] += 1
        return counts

    @property
    def complete(self) -> bool:
        """True when no cell is left in a transient state."""
        return all(
            record.status not in ("pending", "running")
            for record in self.cells.values()
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "format": MATRIX_FORMAT,
            "spec_digest": self.spec_digest,
            "spec": self.spec,
            "cells": {
                cell_id: record.to_json()
                for cell_id, record in sorted(self.cells.items())
            },
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "MatrixManifest":
        if doc.get("format") != MATRIX_FORMAT:
            raise MatrixManifestError(
                f"not a {MATRIX_FORMAT} manifest: "
                f"format={doc.get('format')!r}"
            )
        cells_doc = doc.get("cells")
        if not isinstance(cells_doc, dict):
            raise MatrixManifestError("manifest carries no cell map")
        return cls(
            spec_digest=str(doc.get("spec_digest", "")),
            spec=dict(doc.get("spec") or {}),
            cells={
                cell_id: CellRecord.from_json(record)
                for cell_id, record in cells_doc.items()
            },
        )


def _document_crc(doc: Dict[str, object]) -> int:
    """CRC32 of the document's canonical JSON, excluding the crc field."""
    body = {key: value for key, value in doc.items() if key != "crc32"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def save_manifest(
    manifest: MatrixManifest, path: Union[str, Path]
) -> Path:
    """Atomically persist ``manifest``, rotating the prior generation.

    Write order makes every crash window safe: the new bytes are
    durable in a temp file first; the previous live manifest is rotated
    to ``.1`` only then; and the final ``os.replace`` publishes the new
    generation in one atomic step.  Between rotation and publish a
    crash leaves only ``.1`` — which the loader accepts.
    """
    path = Path(path)
    doc = manifest.to_json()
    doc["crc32"] = _document_crc(doc)
    payload = json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(temp, "wb") as stream:
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())
    if path.exists():
        os.replace(path, path.with_name(f"{path.name}.1"))
    os.replace(temp, path)
    return path


def _load_one(path: Path) -> MatrixManifest:
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise MatrixManifestError(
            f"{path.name} is not valid JSON: {error}"
        ) from error
    if not isinstance(doc, dict):
        raise MatrixManifestError(f"{path.name} is not a JSON object")
    recorded = doc.get("crc32")
    if recorded is None:
        raise MatrixManifestError(f"{path.name} carries no CRC")
    actual = _document_crc(doc)
    if recorded != actual:
        raise MatrixManifestError(
            f"{path.name} fails its CRC check "
            f"(recorded {recorded}, computed {actual})"
        )
    return MatrixManifest.from_json(doc)


def load_manifest(
    directory: Union[str, Path],
) -> Optional[Tuple[MatrixManifest, Path, List[Tuple[Path, str]]]]:
    """Load the newest intact manifest generation from ``directory``.

    Returns ``(manifest, path_used, skipped)`` where ``skipped`` lists
    ``(path, reason)`` for every newer generation that was present but
    torn/corrupt, or ``None`` when no generation exists at all.  A
    corrupt live file with no fallback raises
    :class:`MatrixManifestError` — silently starting a fresh sweep over
    a damaged one would discard completed cells.
    """
    directory = Path(directory)
    live = directory / MATRIX_NAME
    candidates = [live, live.with_name(f"{live.name}.1")]
    skipped: List[Tuple[Path, str]] = []
    last_error: Optional[MatrixManifestError] = None
    for candidate in candidates:
        if not candidate.exists():
            continue
        try:
            manifest = _load_one(candidate)
        except MatrixManifestError as error:
            skipped.append((candidate, str(error)))
            last_error = error
            logger.warning(
                "skipping corrupt matrix manifest %s: %s", candidate, error
            )
            continue
        return manifest, candidate, skipped
    if last_error is not None:
        raise MatrixManifestError(
            f"every manifest generation in {directory} is corrupt: "
            + "; ".join(reason for _, reason in skipped)
        )
    return None
