"""Fault-tolerant execution of a validated scenario sweep.

Each cell runs in its **own process** (one campaign or full study per
cell), so a cell that crashes, hangs or is OOM-killed takes down only
itself.  The coordinating process is a small scheduler:

* up to ``matrix_workers`` cells run concurrently;
* every cell gets a wall-clock deadline (``cell_timeout``); an
  overrunning cell's process is killed and the attempt recorded with
  ``kind="timeout"`` — the one failure mode exception-based retry can
  never catch;
* failed attempts are retried with capped exponential backoff (the
  shard-retry idiom one level up), and a cell that keeps failing
  degrades to a terminal typed :class:`CellFailure` while the sweep
  continues;
* the ``MATRIX.json`` manifest is atomically rewritten after *every*
  transition, so a sweep killed at any instant resumes losing at most
  the cells that were mid-flight.

Cell outputs are deterministic (the campaign's keyed-RNG invariant),
so a resumed sweep's re-run cells — and a fresh sweep's — produce
byte-identical corpora; resume verifies completed cells by re-hashing
their corpus files rather than trusting the manifest blindly.

Chaos hooks: a cell process calls
:func:`repro.faults.chaos.maybe_fail_shard` with its **cell index** at
entry, so the existing ``REPRO_CHAOS_*`` token protocol can kill, hang
or fault any chosen cell for tests and CI without touching the sweep
code.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.campaign import CampaignConfig, NTPCampaign
from ..core.parallel import run_campaign_parallel
from ..core.storage import save_corpus
from ..core.study import ExecutionOptions, StudyConfig, run_study
from ..faults.chaos import maybe_fail_shard
from ..obs import DEFAULT_TIME_BUCKETS, MetricsRegistry
from ..world import CAMPAIGN_EPOCH
from ..world.population import build_world
from .manifest import (
    MATRIX_NAME,
    CellRecord,
    MatrixManifest,
    load_manifest,
    save_manifest,
)
from .spec import CellSpec, MatrixSpec, expand_and_validate

__all__ = [
    "CellFailure",
    "MatrixResults",
    "execute_cell",
    "run_matrix",
]

logger = logging.getLogger(__name__)

#: File a cell process writes (atomically, last) on success.
RESULT_NAME = "RESULT.json"

#: File a cell process writes its traceback to before dying.
ERROR_NAME = "ERROR.txt"


@dataclass(frozen=True)
class CellFailure:
    """One recovered (or terminal) cell failure."""

    cell_id: str
    kind: str
    attempt: int
    error: str
    #: ``"retried"`` when the cell was requeued, ``"failed"`` when its
    #: retries were exhausted and the failure became terminal.
    action: str


@dataclass
class MatrixResults:
    """What a sweep returns: its manifest plus the failure log."""

    directory: Path
    manifest: MatrixManifest
    failures: List[CellFailure] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def counts(self) -> Dict[str, int]:
        return self.manifest.counts()

    @property
    def complete(self) -> bool:
        return self.manifest.complete


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_json(path: Path, doc: Dict[str, object]) -> None:
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    payload = json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")
    with open(temp, "wb") as stream:
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)


def execute_cell(
    cell: CellSpec,
    cell_dir: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Run one cell to completion in the current process.

    Builds the cell's world, runs its pipeline (the NTP collection, or
    the full study for ``pipeline="study"``), saves the resulting
    corpus to ``<cell_dir>/corpus.bin`` and — only once everything else
    is durably on disk — atomically writes ``RESULT.json``.  The result
    file's presence is therefore the cell's commit point: a process
    that died mid-cell left no ``RESULT.json`` and the scheduler counts
    the attempt failed.
    """
    cell_dir = Path(cell_dir)
    cell_dir.mkdir(parents=True, exist_ok=True)
    registry = metrics if metrics is not None else MetricsRegistry()
    started = time.perf_counter()
    world = build_world(cell.world_config())
    plan = cell.fault_plan()
    if cell.pipeline == "study":
        config = StudyConfig(
            start=CAMPAIGN_EPOCH,
            weeks=cell.weeks,
            seed=cell.seed,
            execution=ExecutionOptions(
                workers=cell.workers,
                faults=plan,
                build_index=False,
                metrics=registry,
            ),
        )
        corpus = run_study(world, config).ntp
    else:
        campaign = NTPCampaign(
            world,
            CampaignConfig(
                start=CAMPAIGN_EPOCH,
                weeks=cell.weeks,
                seed=cell.seed,
                faults=plan,
            ),
            metrics=registry,
        )
        if cell.workers > 1:
            corpus = run_campaign_parallel(
                campaign, workers=cell.workers
            )
        else:
            corpus = campaign.run()
    corpus_path = cell_dir / "corpus.bin"
    save_corpus(corpus, corpus_path)
    result = {
        "cell_id": cell.cell_id,
        "label": cell.label,
        "records": len(corpus),
        "digest": _sha256_file(corpus_path),
        "seconds": time.perf_counter() - started,
        "metrics": registry.snapshot(),
    }
    _atomic_write_json(cell_dir / RESULT_NAME, result)
    return result


def _cell_main(cell_doc: Dict[str, object], cell_dir: str) -> None:
    """Cell process entry point (must stay module-level: spawn-safe).

    Honours the ``REPRO_CHAOS_*`` protocol keyed on the **cell index**,
    then runs :func:`execute_cell`.  Any exception is written to
    ``ERROR.txt`` (so the coordinator can report *why* the cell died)
    before propagating into a non-zero exit status.
    """
    cell = CellSpec.from_json(cell_doc)
    try:
        maybe_fail_shard(cell.index)
        execute_cell(cell, cell_dir)
    except BaseException:
        try:
            Path(cell_dir).mkdir(parents=True, exist_ok=True)
            (Path(cell_dir) / ERROR_NAME).write_text(
                traceback.format_exc()
            )
        except OSError:
            pass
        raise


@dataclass
class _Running:
    cell: CellSpec
    process: multiprocessing.Process
    attempt: int
    started: float
    deadline: Optional[float]
    killed: bool = False


@dataclass
class _Queued:
    cell: CellSpec
    attempt: int
    not_before: float


def _error_text(cell_dir: Path, fallback: str) -> str:
    """The cell's recorded traceback tail, or ``fallback``."""
    try:
        text = (cell_dir / ERROR_NAME).read_text().strip()
    except OSError:
        return fallback
    if not text:
        return fallback
    last = text.splitlines()[-1]
    return f"{fallback}: {last}"


def run_matrix(
    spec: MatrixSpec,
    directory: Union[str, Path],
    *,
    resume: bool = False,
    matrix_workers: int = 1,
    cell_timeout: Optional[float] = None,
    max_cell_retries: int = 1,
    retry_backoff: float = 0.25,
    retry_backoff_cap: float = 30.0,
    metrics: Optional[MetricsRegistry] = None,
    poll_interval: float = 0.05,
) -> MatrixResults:
    """Run (or resume) a scenario sweep under ``directory``.

    * Infeasible cells are rejected by validation before any compute
      and recorded with their reasons.
    * Each runnable cell executes in its own process with a
      ``cell_timeout`` wall-clock deadline (hung cells are killed) and
      up to ``max_cell_retries`` capped-backoff retries; a permanently
      failed cell becomes a terminal ``failed``/``timeout`` record and
      the sweep continues.
    * ``MATRIX.json`` is atomically rewritten after every transition.
      With ``resume=True`` a prior manifest's completed cells are
      verified by re-hashing their corpus files and skipped; everything
      else re-runs.  Without ``resume`` an existing manifest is an
      error — a sweep is never silently restarted from scratch.
    """
    if matrix_workers < 1:
        raise ValueError(f"matrix_workers must be >= 1: {matrix_workers}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError(f"cell_timeout must be > 0: {cell_timeout}")
    if max_cell_retries < 0:
        raise ValueError(
            f"max_cell_retries must be >= 0: {max_cell_retries}"
        )
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0: {retry_backoff}")
    if retry_backoff_cap <= 0:
        raise ValueError(
            f"retry_backoff_cap must be > 0: {retry_backoff_cap}"
        )

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cells_root = directory / "cells"
    registry = metrics if metrics is not None else MetricsRegistry()
    m_ok = registry.counter(
        "repro_matrix_cells_ok_total", "cells completed successfully"
    )
    m_failed = registry.counter(
        "repro_matrix_cells_failed_total",
        "cells terminally failed (exception or oom-kill)",
    )
    m_timeout = registry.counter(
        "repro_matrix_cells_timeout_total",
        "cells terminally failed by overrunning their deadline",
    )
    m_rejected = registry.counter(
        "repro_matrix_cells_rejected_total",
        "cells rejected by validation before any compute",
    )
    m_skipped = registry.counter(
        "repro_matrix_cells_skipped_resume_total",
        "completed cells verified and skipped on resume",
    )
    m_retries = registry.counter(
        "repro_matrix_cell_retries_total", "failed cell attempts requeued"
    )
    h_seconds = registry.histogram(
        "repro_matrix_cell_seconds",
        "wall-clock seconds per completed cell attempt",
        buckets=DEFAULT_TIME_BUCKETS,
    )

    runnable, rejected = expand_and_validate(spec)
    spec_digest = spec.digest()

    prior: Optional[MatrixManifest] = None
    loaded = load_manifest(directory)
    if loaded is not None:
        prior, used_path, skipped_generations = loaded
        if not resume:
            raise ValueError(
                f"{directory} already holds a sweep manifest "
                f"({used_path.name}); pass resume=True to continue it, "
                "or point at a fresh directory"
            )
        if prior.spec_digest != spec_digest:
            raise ValueError(
                "the existing manifest belongs to a different matrix "
                f"spec (manifest {prior.spec_digest}, requested "
                f"{spec_digest}); refusing to mix sweeps in one directory"
            )
        for bad_path, reason in skipped_generations:
            logger.warning(
                "resume fell back past corrupt generation %s: %s",
                bad_path,
                reason,
            )
    elif resume:
        logger.info(
            "resume requested but %s holds no manifest; starting fresh",
            directory,
        )

    manifest = MatrixManifest(
        spec_digest=spec_digest, spec=spec.to_json()
    )
    failures: List[CellFailure] = []
    to_run: List[_Queued] = []

    for rejection in rejected:
        manifest.cells[rejection.cell_id] = CellRecord(
            cell_id=rejection.cell_id,
            label=rejection.label,
            params=rejection.params,
            status="rejected",
            reasons=rejection.reasons,
        )
        m_rejected.inc()
        logger.warning(
            "cell %s rejected before run: %s",
            rejection.cell_id,
            "; ".join(rejection.reasons),
        )
    for cell in runnable:
        record = CellRecord(
            cell_id=cell.cell_id, label=cell.label, params=cell.params
        )
        previous = prior.cells.get(cell.cell_id) if prior else None
        if (
            previous is not None
            and previous.status == "ok"
            and previous.digest is not None
        ):
            corpus_path = cells_root / cell.cell_id / "corpus.bin"
            if (
                corpus_path.exists()
                and _sha256_file(corpus_path) == previous.digest
            ):
                record = previous
                record.skipped_resume = True
                manifest.cells[cell.cell_id] = record
                m_skipped.inc()
                continue
            logger.warning(
                "resume could not verify completed cell %s "
                "(missing or altered corpus); re-running it",
                cell.cell_id,
            )
        manifest.cells[cell.cell_id] = record
        to_run.append(_Queued(cell=cell, attempt=1, not_before=0.0))

    save_manifest(manifest, directory / MATRIX_NAME)

    def backoff_delay(attempt: int) -> float:
        if retry_backoff <= 0:
            return 0.0
        return min(
            retry_backoff_cap, retry_backoff * (2 ** (attempt - 1))
        )

    def launch(item: _Queued) -> _Running:
        cell_dir = cells_root / item.cell.cell_id
        cell_dir.mkdir(parents=True, exist_ok=True)
        for stale in (RESULT_NAME, ERROR_NAME):
            try:
                (cell_dir / stale).unlink()
            except FileNotFoundError:
                pass
        process = multiprocessing.Process(
            target=_cell_main,
            args=(item.cell.to_json(), str(cell_dir)),
            name=f"matrix-{item.cell.cell_id}",
        )
        process.start()
        record = manifest.cells[item.cell.cell_id]
        record.status = "running"
        record.attempts = item.attempt
        save_manifest(manifest, directory / MATRIX_NAME)
        now = time.monotonic()
        return _Running(
            cell=item.cell,
            process=process,
            attempt=item.attempt,
            started=now,
            deadline=(
                now + cell_timeout if cell_timeout is not None else None
            ),
        )

    def settle(entry: _Running) -> None:
        """Classify a finished cell process and advance its record."""
        cell = entry.cell
        cell_dir = cells_root / cell.cell_id
        record = manifest.cells[cell.cell_id]
        exitcode = entry.process.exitcode
        entry.process.join()
        entry.process.close()
        seconds = time.monotonic() - entry.started
        h_seconds.observe(seconds)

        kind: Optional[str] = None
        error = ""
        if exitcode == 0:
            try:
                result = json.loads((cell_dir / RESULT_NAME).read_text())
            except (OSError, json.JSONDecodeError) as read_error:
                kind = "exception"
                error = (
                    f"cell exited cleanly but left no readable "
                    f"{RESULT_NAME}: {read_error}"
                )
            else:
                record.status = "ok"
                record.kind = None
                record.error = None
                record.digest = result.get("digest")
                record.records = result.get("records")
                record.seconds = result.get("seconds", seconds)
                m_ok.inc()
                logger.info(
                    "cell %s ok (%s records, %.2fs, attempt %d)",
                    cell.cell_id,
                    record.records,
                    seconds,
                    entry.attempt,
                )
                save_manifest(manifest, directory / MATRIX_NAME)
                return
        elif entry.killed:
            kind = "timeout"
            error = (
                f"cell overran its {cell_timeout}s wall-clock deadline "
                "and was killed"
            )
        elif exitcode is not None and exitcode == -signal.SIGKILL:
            kind = "oom-kill"
            error = _error_text(
                cell_dir, "cell process was killed (SIGKILL, likely OOM)"
            )
        else:
            kind = "exception"
            error = _error_text(
                cell_dir, f"cell process exited with status {exitcode}"
            )

        record.kind = kind
        record.error = error
        if entry.attempt <= max_cell_retries:
            action = "retried"
            record.status = "pending"
            m_retries.inc()
            to_run.append(
                _Queued(
                    cell=cell,
                    attempt=entry.attempt + 1,
                    not_before=(
                        time.monotonic() + backoff_delay(entry.attempt)
                    ),
                )
            )
        else:
            action = "failed"
            record.status = "timeout" if kind == "timeout" else "failed"
            if kind == "timeout":
                m_timeout.inc()
            else:
                m_failed.inc()
        failures.append(
            CellFailure(
                cell_id=cell.cell_id,
                kind=kind,
                attempt=entry.attempt,
                error=error,
                action=action,
            )
        )
        logger.warning(
            "cell %s failed (attempt %d, %s): %s -> %s",
            cell.cell_id,
            entry.attempt,
            kind,
            error,
            action,
        )
        save_manifest(manifest, directory / MATRIX_NAME)

    running: Dict[str, _Running] = {}
    while to_run or running:
        now = time.monotonic()
        if len(running) < matrix_workers:
            ready = [item for item in to_run if item.not_before <= now]
            for item in ready:
                if len(running) >= matrix_workers:
                    break
                to_run.remove(item)
                running[item.cell.cell_id] = launch(item)
        progressed = False
        for cell_id in list(running):
            entry = running[cell_id]
            if entry.process.is_alive():
                if (
                    entry.deadline is not None
                    and time.monotonic() >= entry.deadline
                    and not entry.killed
                ):
                    entry.process.kill()
                    entry.killed = True
                continue
            del running[cell_id]
            settle(entry)
            progressed = True
        if not progressed and (running or to_run):
            # Wait on the running processes' sentinels so cell exits
            # wake the scheduler immediately; poll_interval only caps
            # the wait (deadlines and backoff re-queues need polling).
            timeout = poll_interval
            now = time.monotonic()
            for entry in running.values():
                if entry.deadline is not None and not entry.killed:
                    timeout = min(timeout, max(0.0, entry.deadline - now))
            sentinels = [
                entry.process.sentinel for entry in running.values()
            ]
            if sentinels:
                multiprocessing.connection.wait(
                    sentinels, timeout=timeout
                )
            else:
                time.sleep(timeout)

    return MatrixResults(
        directory=directory,
        manifest=manifest,
        failures=failures,
        metrics=registry,
    )
