"""The declarative sweep spec and its generate/validate split.

A :class:`MatrixSpec` lists the *axes* of a scenario sweep — world
presets, :class:`~repro.world.population.WorldConfig` override sets,
fault-plan spec strings, campaign lengths, per-cell worker counts and
seeds — and :meth:`MatrixSpec.expand` takes their cartesian product
into an ordered list of :class:`CellSpec` values.  Expansion is pure
and deterministic: the same spec always yields the same cells with the
same stable ``cell_id``\\ s, which is what lets a resumed sweep match
its manifest records back to cells.

Validation is a separate, *total* pass (AEnv-style generator/validator
split): :func:`validate_cell` returns every reason a cell is
infeasible — unknown preset, unknown or unbuildable world override,
malformed fault spec, week/pipeline conflicts — and
:func:`expand_and_validate` partitions the expansion into runnable
cells and structured :class:`CellRejected` records *before* any
campaign compute is spent.  A rejected cell is a first-class sweep
outcome, not an exception.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.study import CAIDA_LAST_WEEK
from ..faults.plan import FaultPlan
from ..world.population import WorldConfig
from ..world.presets import preset_config, preset_names

__all__ = [
    "CellRejected",
    "CellSpec",
    "MatrixSpec",
    "expand_and_validate",
    "validate_cell",
]

#: Pipelines a cell can run: the NTP collection alone, or the full
#: three-dataset study (which needs the CAIDA campaign's minimum span).
PIPELINES = ("campaign", "study")

#: ``(key, value)`` pairs — a WorldConfig override set frozen into a
#: hashable, canonically ordered form.
_Overrides = Tuple[Tuple[str, object], ...]

_WORLD_FIELDS = frozenset(
    spec.name for spec in dataclass_fields(WorldConfig)
)


def _freeze_overrides(overrides: Union[dict, _Overrides]) -> _Overrides:
    if isinstance(overrides, dict):
        items = overrides.items()
    else:
        items = tuple(overrides)
    return tuple(sorted((str(key), value) for key, value in items))


def _canonical_json(doc: object) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified cell of the sweep (pure configuration)."""

    index: int
    preset: str
    overrides: _Overrides
    faults: Optional[str]
    weeks: int
    workers: int
    seed: int
    pipeline: str = "campaign"

    @property
    def params(self) -> Dict[str, object]:
        """The cell's science parameters as a plain JSON-able dict."""
        return {
            "preset": self.preset,
            "overrides": dict(self.overrides),
            "faults": self.faults,
            "weeks": self.weeks,
            "workers": self.workers,
            "seed": self.seed,
            "pipeline": self.pipeline,
        }

    @property
    def cell_id(self) -> str:
        """Stable id: ordinal position plus a digest of the parameters.

        The ordinal keeps directory listings in expansion order; the
        digest makes a spec edit that reorders or changes cells
        impossible to confuse with the original on resume.
        """
        digest = hashlib.blake2b(
            _canonical_json(self.params).encode("utf-8"), digest_size=4
        ).hexdigest()
        return f"c{self.index:04d}-{digest}"

    @property
    def label(self) -> str:
        """Human-oriented one-line description for logs and reports."""
        parts = [self.preset]
        if self.overrides:
            parts.append(
                "+".join(f"{key}={value}" for key, value in self.overrides)
            )
        parts.append(f"faults={self.faults or 'none'}")
        parts.append(f"weeks={self.weeks}")
        if self.workers != 1:
            parts.append(f"workers={self.workers}")
        parts.append(f"seed={self.seed}")
        if self.pipeline != "campaign":
            parts.append(self.pipeline)
        return " ".join(parts)

    def world_config(self) -> WorldConfig:
        """Build the cell's :class:`WorldConfig` (may raise ValueError)."""
        return preset_config(
            self.preset, seed=self.seed, **dict(self.overrides)
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        """Parse the cell's fault spec (``None`` stays ``None``)."""
        if self.faults is None:
            return None
        return FaultPlan.parse(self.faults)

    def to_json(self) -> Dict[str, object]:
        doc = self.params
        doc["index"] = self.index
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "CellSpec":
        faults = doc.get("faults")
        return cls(
            index=int(doc["index"]),
            preset=str(doc["preset"]),
            overrides=_freeze_overrides(doc.get("overrides") or {}),
            faults=None if faults is None else str(faults),
            weeks=int(doc["weeks"]),
            workers=int(doc["workers"]),
            seed=int(doc["seed"]),
            pipeline=str(doc.get("pipeline", "campaign")),
        )


@dataclass(frozen=True)
class CellRejected:
    """One infeasible cell, rejected by validation before any compute."""

    index: int
    cell_id: str
    label: str
    reasons: Tuple[str, ...]
    params: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class MatrixSpec:
    """The declarative axes of a scenario sweep.

    Every axis is a sequence; the sweep is the cartesian product in
    fixed axis order (presets → overrides → faults → weeks → workers →
    seeds), so cell ordinals are reproducible from the spec alone::

        MatrixSpec(presets=("tiny",),
                   faults=(None, "flap=0.3,loss=0.05,seed=9"),
                   seeds=(0, 1)).expand()   # 4 cells

    ``overrides`` entries are :class:`WorldConfig` field dicts applied
    on top of the preset (``{}`` means the preset as-is); ``pipeline``
    selects what each cell runs (``"campaign"`` — the NTP collection —
    or the full three-dataset ``"study"``).
    """

    presets: Tuple[str, ...] = ("tiny",)
    overrides: Tuple[_Overrides, ...] = ((),)
    faults: Tuple[Optional[str], ...] = (None,)
    weeks: Tuple[int, ...] = (2,)
    workers: Tuple[int, ...] = (1,)
    seeds: Tuple[int, ...] = (0,)
    pipeline: str = "campaign"

    def __post_init__(self) -> None:
        freeze = object.__setattr__
        freeze(self, "presets", tuple(str(name) for name in self.presets))
        freeze(
            self,
            "overrides",
            tuple(_freeze_overrides(entry) for entry in self.overrides),
        )
        freeze(
            self,
            "faults",
            tuple(
                None if entry is None else str(entry)
                for entry in self.faults
            ),
        )
        freeze(self, "weeks", tuple(int(value) for value in self.weeks))
        freeze(self, "workers", tuple(int(value) for value in self.workers))
        freeze(self, "seeds", tuple(int(value) for value in self.seeds))
        for axis in ("presets", "overrides", "faults", "weeks", "workers",
                     "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"matrix axis {axis!r} must not be empty")

    def expand(self) -> List[CellSpec]:
        """The cartesian product of the axes, in stable order."""
        cells = []
        product = itertools.product(
            self.presets,
            self.overrides,
            self.faults,
            self.weeks,
            self.workers,
            self.seeds,
        )
        for index, combo in enumerate(product):
            preset, overrides, faults, weeks, workers, seed = combo
            cells.append(
                CellSpec(
                    index=index,
                    preset=preset,
                    overrides=overrides,
                    faults=faults,
                    weeks=weeks,
                    workers=workers,
                    seed=seed,
                    pipeline=self.pipeline,
                )
            )
        return cells

    def to_json(self) -> Dict[str, object]:
        return {
            "presets": list(self.presets),
            "overrides": [dict(entry) for entry in self.overrides],
            "faults": list(self.faults),
            "weeks": list(self.weeks),
            "workers": list(self.workers),
            "seeds": list(self.seeds),
            "pipeline": self.pipeline,
        }

    def digest(self) -> str:
        """Stable identity of the spec (pins manifests to their sweep)."""
        return hashlib.blake2b(
            _canonical_json(self.to_json()).encode("utf-8"), digest_size=16
        ).hexdigest()

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "MatrixSpec":
        """Build a spec from a JSON document, wrapping bare scalars.

        Unknown keys are an error — a typoed axis name must not
        silently fall back to the default axis.
        """
        if not isinstance(doc, dict):
            raise ValueError(
                f"matrix spec must be a JSON object, not "
                f"{type(doc).__name__}"
            )
        known = {
            "presets", "overrides", "faults", "weeks", "workers", "seeds",
            "pipeline",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown matrix spec keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )

        def axis(key: str, default):
            if key not in doc:
                return default
            value = doc[key]
            if isinstance(value, (list, tuple)):
                return tuple(value)
            return (value,)

        kwargs = {
            "presets": axis("presets", ("tiny",)),
            "overrides": axis("overrides", ({},)),
            "faults": axis("faults", (None,)),
            "weeks": axis("weeks", (2,)),
            "workers": axis("workers", (1,)),
            "seeds": axis("seeds", (0,)),
        }
        if "pipeline" in doc:
            kwargs["pipeline"] = str(doc["pipeline"])
        for entry in kwargs["overrides"]:
            if not isinstance(entry, (dict, tuple)):
                raise ValueError(
                    f"each overrides entry must be an object of "
                    f"WorldConfig fields, not {type(entry).__name__}"
                )
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "MatrixSpec":
        """Load a spec from a JSON file."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"matrix spec {path} is not valid JSON: {error}"
            ) from error
        return cls.from_json(doc)


def validate_cell(cell: CellSpec) -> List[str]:
    """Every reason ``cell`` cannot run (empty means feasible).

    Validation is total — it collects all failures instead of stopping
    at the first, so a rejection record tells the whole story — and
    runs entirely on configuration: nothing here builds a world or
    spends campaign compute.
    """
    reasons: List[str] = []
    if cell.pipeline not in PIPELINES:
        reasons.append(
            f"unknown pipeline {cell.pipeline!r} "
            f"(choose from {', '.join(PIPELINES)})"
        )
    if cell.weeks < 1:
        reasons.append(f"weeks must be >= 1: {cell.weeks}")
    elif cell.pipeline == "study" and cell.weeks < CAIDA_LAST_WEEK:
        reasons.append(
            f"study pipeline needs at least {CAIDA_LAST_WEEK} weeks "
            f"(the CAIDA campaign's span): {cell.weeks}"
        )
    if cell.workers < 1:
        reasons.append(f"workers must be >= 1: {cell.workers}")
    world_ok = True
    if cell.preset not in preset_names():
        world_ok = False
        reasons.append(
            f"unknown world preset {cell.preset!r} "
            f"(choose from {', '.join(preset_names())})"
        )
    bad_keys = sorted(
        key for key, _ in cell.overrides if key not in _WORLD_FIELDS
    )
    if bad_keys:
        world_ok = False
        reasons.append(
            f"unknown WorldConfig override field(s): {', '.join(bad_keys)}"
        )
    if world_ok:
        try:
            cell.world_config()
        except (ValueError, TypeError) as error:
            reasons.append(f"world config rejected: {error}")
    try:
        cell.fault_plan()
    except ValueError as error:
        reasons.append(f"fault spec rejected: {error}")
    return reasons


def expand_and_validate(
    spec: MatrixSpec,
) -> Tuple[List[CellSpec], List[CellRejected]]:
    """Expand ``spec`` and partition cells into runnable vs rejected."""
    runnable: List[CellSpec] = []
    rejected: List[CellRejected] = []
    for cell in spec.expand():
        reasons = validate_cell(cell)
        if reasons:
            rejected.append(
                CellRejected(
                    index=cell.index,
                    cell_id=cell.cell_id,
                    label=cell.label,
                    reasons=tuple(reasons),
                    params=cell.params,
                )
            )
        else:
            runnable.append(cell)
    return runnable, rejected
