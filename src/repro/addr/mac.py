"""MAC (EUI-48) address handling.

MAC addresses enter the paper in two places: they are *embedded* in EUI-64
IPv6 interface identifiers (§5.1), and — for the geolocation attack (§5.3)
— a device's wired MAC is linked to its WiFi access point's BSSID by a
small per-vendor integer *offset*.  This module provides a 48-bit-int MAC
representation with OUI extraction, the Universal/Local bit manipulation
EUI-64 requires, and the arithmetic used by the offset-inference step.
"""

from __future__ import annotations

import re
from typing import Tuple

__all__ = [
    "MAX_MAC",
    "UL_BIT",
    "MULTICAST_BIT",
    "parse_mac",
    "format_mac",
    "oui_of",
    "nic_of",
    "with_nic",
    "flip_ul_bit",
    "is_locally_administered",
    "is_multicast_mac",
    "mac_offset",
    "apply_offset",
    "MACAddress",
]

#: Largest representable 48-bit MAC address.
MAX_MAC = (1 << 48) - 1

#: The Universal/Local bit: second-least-significant bit of the first byte.
UL_BIT = 1 << 41

#: The Individual/Group (multicast) bit: least-significant bit, first byte.
MULTICAST_BIT = 1 << 40

#: Number of NIC-specific (non-OUI) bits.
_NIC_BITS = 24
_NIC_MASK = (1 << _NIC_BITS) - 1

_MAC_RE = re.compile(
    r"^([0-9a-fA-F]{2})[:\-]([0-9a-fA-F]{2})[:\-]([0-9a-fA-F]{2})"
    r"[:\-]([0-9a-fA-F]{2})[:\-]([0-9a-fA-F]{2})[:\-]([0-9a-fA-F]{2})$"
)


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-``-separated) into a 48-bit int."""
    match = _MAC_RE.match(text)
    if match is None:
        raise ValueError(f"not a MAC address: {text!r}")
    value = 0
    for group in match.groups():
        value = (value << 8) | int(group, 16)
    return value


def format_mac(value: int) -> str:
    """Render a 48-bit int as lowercase colon-separated MAC text."""
    if not 0 <= value <= MAX_MAC:
        raise ValueError(f"MAC out of range: {value!r}")
    raw = value.to_bytes(6, "big")
    return ":".join(f"{byte:02x}" for byte in raw)


def oui_of(value: int) -> int:
    """Return the 24-bit Organizationally Unique Identifier (top 3 bytes)."""
    return (value >> _NIC_BITS) & 0xFFFFFF


def nic_of(value: int) -> int:
    """Return the 24-bit NIC-specific part (bottom 3 bytes)."""
    return value & _NIC_MASK


def with_nic(oui: int, nic: int) -> int:
    """Combine a 24-bit OUI and a 24-bit NIC part into one MAC."""
    if not 0 <= oui <= 0xFFFFFF:
        raise ValueError(f"OUI out of range: {oui!r}")
    if not 0 <= nic <= _NIC_MASK:
        raise ValueError(f"NIC part out of range: {nic!r}")
    return (oui << _NIC_BITS) | nic


def flip_ul_bit(value: int) -> int:
    """Invert the Universal/Local bit, as EUI-64 construction requires."""
    return value ^ UL_BIT


def is_locally_administered(value: int) -> bool:
    """True when the U/L bit is set (locally administered address)."""
    return bool(value & UL_BIT)


def is_multicast_mac(value: int) -> bool:
    """True when the I/G bit is set (group / multicast address)."""
    return bool(value & MULTICAST_BIT)


def mac_offset(wired: int, wireless: int) -> int:
    """Signed NIC-part offset from a wired MAC to a wireless one.

    Both MACs must share an OUI; vendors typically assign a device's radio
    MAC at a small fixed offset from its wired MAC, which is exactly the
    structure the §5.3 offset-inference step recovers.  The offset is
    computed modulo the 24-bit NIC space and mapped into
    ``[-2**23, 2**23)`` so small negative offsets stay small.
    """
    if oui_of(wired) != oui_of(wireless):
        raise ValueError("offset is only defined within a single OUI")
    delta = (nic_of(wireless) - nic_of(wired)) % (1 << _NIC_BITS)
    if delta >= 1 << (_NIC_BITS - 1):
        delta -= 1 << _NIC_BITS
    return delta


def apply_offset(wired: int, offset: int) -> int:
    """Apply a signed NIC-part offset, wrapping inside the same OUI."""
    nic = (nic_of(wired) + offset) % (1 << _NIC_BITS)
    return with_nic(oui_of(wired), nic)


class MACAddress:
    """Immutable MAC value object over the 48-bit-int representation.

    >>> m = MACAddress("00:11:22:33:44:55")
    >>> f"{m.oui:06x}"
    '001122'
    """

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_MAC:
                raise ValueError(f"MAC out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            self._value = parse_mac(value)
        else:
            raise TypeError(f"cannot build MACAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The 48-bit integer form."""
        return self._value

    @property
    def oui(self) -> int:
        """The 24-bit OUI."""
        return oui_of(self._value)

    @property
    def nic(self) -> int:
        """The 24-bit NIC-specific part."""
        return nic_of(self._value)

    def offset_to(self, other: "MACAddress") -> int:
        """Signed same-OUI offset from this MAC to ``other``."""
        return mac_offset(self._value, other._value)

    def shifted(self, offset: int) -> "MACAddress":
        """Return the MAC at ``offset`` within the same OUI."""
        return MACAddress(apply_offset(self._value, offset))

    def __str__(self) -> str:
        return format_mac(self._value)

    def __repr__(self) -> str:
        return f"MACAddress('{format_mac(self._value)}')"

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, MACAddress):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)
