"""EUI-64 interface identifier construction, detection and inversion.

Modified-EUI-64 SLAAC (RFC 4291 §2.5.1, RFC 2464) builds a 64-bit IID from
a 48-bit MAC address by

1. splitting the MAC between its third and fourth bytes,
2. inserting the two bytes ``0xFF 0xFE`` between the halves, and
3. inverting the Universal/Local bit (bit 0x02 of the first byte).

The paper (§5.1) exploits the fact that this process is trivially
reversible: any IID whose fourth and fifth bytes are ``ff:fe`` very likely
embeds the device's real MAC address.  A random 64-bit IID matches that
2-byte marker with probability 2**-16, which bounds the expected number of
false positives in a corpus (the paper's "fewer than 121,000 of 7.9B"
argument, reproduced by :func:`expected_random_eui64`).
"""

from __future__ import annotations

from . import mac as _mac

__all__ = [
    "EUI64_MARKER",
    "mac_to_iid",
    "iid_to_mac",
    "looks_like_eui64",
    "mac_to_address",
    "extract_mac",
    "expected_random_eui64",
]

#: The 16-bit marker inserted between the MAC halves.
EUI64_MARKER = 0xFFFE

_MARKER_SHIFT = 24  # marker occupies bits [24, 40) of the IID
_MARKER_MASK = 0xFFFF << _MARKER_SHIFT

#: The U/L bit position inside the 64-bit IID (bit 1 of the first byte).
_IID_UL_BIT = 1 << 57


def mac_to_iid(mac: int) -> int:
    """Build the modified-EUI-64 IID embedding ``mac``.

    >>> hex(mac_to_iid(0x0011_22_33_4455))
    '0x21122fffe334455'
    """
    if not 0 <= mac <= _mac.MAX_MAC:
        raise ValueError(f"MAC out of range: {mac!r}")
    high = (mac >> 24) & 0xFFFFFF  # first three bytes (OUI)
    low = mac & 0xFFFFFF           # last three bytes (NIC)
    iid = (high << 40) | (EUI64_MARKER << _MARKER_SHIFT) | low
    return iid ^ _IID_UL_BIT


def looks_like_eui64(iid: int) -> bool:
    """True when an IID carries the ``ff:fe`` EUI-64 marker bytes.

    This is the detection criterion the paper applies to 7.9B addresses.
    It admits one false positive per 2**16 random IIDs; the corpus-level
    consequences of that rate are quantified by
    :func:`expected_random_eui64`.
    """
    return (iid & _MARKER_MASK) == (EUI64_MARKER << _MARKER_SHIFT)


def iid_to_mac(iid: int) -> int:
    """Recover the embedded MAC address from an EUI-64 IID.

    Raises ``ValueError`` when the IID does not carry the EUI-64 marker;
    callers that merely want to test should use :func:`looks_like_eui64`.
    """
    if not looks_like_eui64(iid):
        raise ValueError(f"IID 0x{iid:016x} does not look like EUI-64")
    flipped = iid ^ _IID_UL_BIT
    high = (flipped >> 40) & 0xFFFFFF
    low = flipped & 0xFFFFFF
    return (high << 24) | low


def mac_to_address(prefix64: int, mac: int) -> int:
    """Build the full EUI-64 SLAAC address for ``mac`` inside ``prefix64``."""
    return (prefix64 & ~((1 << 64) - 1)) | mac_to_iid(mac)


def extract_mac(address: int):
    """Return the embedded MAC of an address, or ``None`` if not EUI-64.

    Convenience wrapper over :func:`looks_like_eui64` / :func:`iid_to_mac`
    operating on a full 128-bit address.
    """
    iid = address & ((1 << 64) - 1)
    if not looks_like_eui64(iid):
        return None
    return iid_to_mac(iid)


def expected_random_eui64(corpus_size: int) -> float:
    """Expected count of random IIDs that masquerade as EUI-64.

    The paper uses this bound to argue its 238M detected EUI-64 addresses
    are overwhelmingly genuine: 7,914,066,999 / 65,536 < 121,000.
    """
    if corpus_size < 0:
        raise ValueError("corpus size must be non-negative")
    return corpus_size / 65536.0
