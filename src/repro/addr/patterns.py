"""Structural classification of IPv6 interface identifiers.

Section 4.3 / Figure 5 of the paper sort every address into one of seven
mutually exclusive categories:

1. **Zeroes** — the IID is all zero (subnet-router anycast style).
2. **Low Byte** — only the least-significant byte is set (``::1``, ``::2``).
3. **Low 2 Bytes** — only the two least-significant bytes are set.
4. **IPv4 mapped** — the IID embeds an IPv4 address (three encodings are
   checked) that originates in the same AS as the IPv6 address.
5. **High entropy** — normalized nibble entropy >= 0.75.
6. **Medium entropy** — 0.25 <= entropy < 0.75.
7. **Low entropy** — entropy < 0.25 (and none of the above).

IPv4-embedding acceptance is deliberately conservative: random IIDs can
coincidentally decode to a plausible IPv4 address, so the paper only
accepts an AS's IPv4-embedded addresses when (i) the AS contributes at
least ``MIN_AS_INSTANCES`` such addresses and (ii) they exceed
``MIN_AS_FRACTION`` of the AS's total addresses.
:class:`CategoryClassifier` implements that two-pass corpus rule.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .entropy import EntropyClass, entropy_class, normalized_iid_entropy
from .ipv6 import IID_MASK, iid_of

__all__ = [
    "AddressCategory",
    "CATEGORY_BY_CODE",
    "MIN_AS_INSTANCES",
    "MIN_AS_FRACTION",
    "STRUCTURAL_CODES",
    "embedded_ipv4_candidates",
    "classify_iid_structurally",
    "CategoryClassifier",
    "category_fractions",
]

#: Minimum count of IPv4-embedded addresses an AS must contribute.
MIN_AS_INSTANCES = 100

#: Minimum fraction of an AS's addresses that must be IPv4-embedded.
MIN_AS_FRACTION = 0.10


class AddressCategory(Enum):
    """The paper's seven-way addressing-pattern taxonomy (Fig. 5)."""

    ZEROES = "zeroes"
    LOW_BYTE = "low_byte"
    LOW_2_BYTES = "low_2_bytes"
    IPV4_MAPPED = "ipv4_mapped"
    HIGH_ENTROPY = "high_entropy"
    MEDIUM_ENTROPY = "medium_entropy"
    LOW_ENTROPY = "low_entropy"


_ENTROPY_TO_CATEGORY = {
    EntropyClass.LOW: AddressCategory.LOW_ENTROPY,
    EntropyClass.MEDIUM: AddressCategory.MEDIUM_ENTROPY,
    EntropyClass.HIGH: AddressCategory.HIGH_ENTROPY,
}

#: Stable small-int encoding of the structural (pre-IPv4-verdict)
#: category, used by the columnar corpus index's pattern-class column.
STRUCTURAL_CODES: Dict[AddressCategory, int] = {
    category: code for code, category in enumerate(AddressCategory)
}

#: Inverse of :data:`STRUCTURAL_CODES`: ``CATEGORY_BY_CODE[code]``.
CATEGORY_BY_CODE: Tuple[AddressCategory, ...] = tuple(AddressCategory)


def _groups_of_iid(iid: int) -> Tuple[int, int, int, int]:
    """Split an IID into its four 16-bit textual groups, MSB first."""
    return (
        (iid >> 48) & 0xFFFF,
        (iid >> 32) & 0xFFFF,
        (iid >> 16) & 0xFFFF,
        iid & 0xFFFF,
    )


def _decimal_coded_octet(group: int) -> Optional[int]:
    """Decode a 16-bit group whose hex digits *read* as a decimal octet.

    ``0x0192`` reads as "192" and decodes to octet 192; ``0x01ab`` has
    non-decimal digits and returns ``None``, as does anything > 255.
    """
    text = f"{group:x}"
    if not text.isdigit():
        return None
    octet = int(text, 10)
    if octet > 255:
        return None
    return octet


def embedded_ipv4_candidates(iid: int) -> Dict[str, int]:
    """Return candidate embedded IPv4 addresses keyed by encoding name.

    Three encodings are checked, mirroring the paper's methodology:

    * ``"hex32"`` — the IPv4 address occupies the low 32 bits verbatim and
      the high 32 bits of the IID are zero (``::c000:0201``).
    * ``"decimal_groups"`` — each of the four 16-bit groups spells one
      octet in decimal (``::192:0:2:1``).
    * ``"byte_per_group"`` — each group carries one octet in its low byte
      with the high byte clear (``::c0:0:2:1``).

    Values are 32-bit IPv4 integers.  An all-zero IID yields no candidates
    (it is category ZEROES, and 0.0.0.0 is not a routable address).
    """
    iid &= IID_MASK
    candidates: Dict[str, int] = {}
    if iid == 0:
        return candidates

    if (iid >> 32) == 0:
        candidates["hex32"] = iid & 0xFFFFFFFF

    groups = _groups_of_iid(iid)

    value = 0
    for group in groups:
        octet = _decimal_coded_octet(group)
        if octet is None:
            break
        value = (value << 8) | octet
    else:
        candidates["decimal_groups"] = value

    if all(group <= 0xFF for group in groups):
        value = 0
        for group in groups:
            value = (value << 8) | group
        # Distinguish from hex32 only when it decodes differently.
        if candidates.get("hex32") != value:
            candidates["byte_per_group"] = value

    return candidates


def classify_iid_structurally(
    iid: int, ipv4_embedded: bool = False
) -> AddressCategory:
    """Classify a single IID given a pre-decided IPv4-embedding verdict.

    The Zeroes / Low Byte / Low 2 Bytes checks take precedence over the
    IPv4 verdict (``::1`` would also decode as 0.0.0.1); entropy classes
    are the fallback.
    """
    iid &= IID_MASK
    if iid == 0:
        return AddressCategory.ZEROES
    if iid <= 0xFF:
        return AddressCategory.LOW_BYTE
    if iid <= 0xFFFF:
        return AddressCategory.LOW_2_BYTES
    if ipv4_embedded:
        return AddressCategory.IPV4_MAPPED
    return _ENTROPY_TO_CATEGORY[entropy_class(normalized_iid_entropy(iid))]


class CategoryClassifier:
    """Corpus-level seven-category classifier with the AS acceptance rule.

    Parameters
    ----------
    ipv6_origin_asn:
        Callable mapping a 128-bit IPv6 address to its origin ASN (or
        ``None`` when unrouted).
    ipv4_origin_asn:
        Callable mapping a 32-bit IPv4 address to its origin ASN (or
        ``None``).  When omitted, no address is ever accepted as
        IPv4-embedded — useful for purely structural runs.
    min_as_instances / min_as_fraction:
        The acceptance thresholds; paper defaults are 100 and 10%.
    """

    def __init__(
        self,
        ipv6_origin_asn: Optional[Callable[[int], Optional[int]]] = None,
        ipv4_origin_asn: Optional[Callable[[int], Optional[int]]] = None,
        min_as_instances: int = MIN_AS_INSTANCES,
        min_as_fraction: float = MIN_AS_FRACTION,
    ) -> None:
        if min_as_instances < 1:
            raise ValueError("min_as_instances must be >= 1")
        if not 0.0 <= min_as_fraction <= 1.0:
            raise ValueError("min_as_fraction must lie in [0, 1]")
        self._ipv6_origin = ipv6_origin_asn
        self._ipv4_origin = ipv4_origin_asn
        self._min_instances = min_as_instances
        self._min_fraction = min_as_fraction

    def _candidate_matches_asn(self, address: int, asn: int) -> bool:
        """True when any embedded-IPv4 candidate originates in ``asn``."""
        assert self._ipv4_origin is not None
        for candidate in embedded_ipv4_candidates(iid_of(address)).values():
            if self._ipv4_origin(candidate) == asn:
                return True
        return False

    def classify_corpus(
        self, addresses: Iterable[int]
    ) -> Dict[AddressCategory, int]:
        """Classify a corpus; returns counts per category.

        Runs the two-pass algorithm: the first pass tallies, per AS, how
        many addresses carry a same-AS embedded IPv4 candidate; the second
        pass accepts the IPV4_MAPPED label only inside ASes that clear
        both thresholds.
        """
        addresses = list(addresses)
        accepted_ases = self._accepted_ipv4_ases(addresses)
        counts: Dict[AddressCategory, int] = {
            category: 0 for category in AddressCategory
        }
        for address in addresses:
            embedded = False
            if accepted_ases and self._ipv6_origin is not None:
                asn = self._ipv6_origin(address)
                if asn in accepted_ases:
                    embedded = self._candidate_matches_asn(address, asn)
            counts[classify_iid_structurally(iid_of(address), embedded)] += 1
        return counts

    def classify_index(
        self, index, rows: Optional[Iterable[int]] = None
    ) -> Dict[AddressCategory, int]:
        """Classify via a columnar corpus index; equals classify_corpus.

        ``index`` is a :class:`repro.core.index.CorpusIndex` (duck-typed:
        only its ``addresses``, ``iids`` and ``pattern_codes`` columns
        are read).  ``rows`` restricts classification to a row subset
        (the windowed Fig. 5 variant); ``None`` means all rows.

        The same two-pass acceptance rule runs, but structural classes
        come from the precomputed pattern-code column, and candidate
        decoding / IPv4-origin probes are memoized per distinct
        ``(IID, ASN)`` pair — both pure functions of their inputs, so
        the counts are exactly those of :meth:`classify_corpus`.
        """
        addresses = index.addresses
        iids = index.iids
        codes = index.pattern_codes
        row_list = (
            range(len(addresses)) if rows is None else list(rows)
        )
        asns = self._resolve_rows(index, row_list)
        candidates_of: Dict[int, Dict[str, int]] = {}
        match_cache: Dict[Tuple[int, int], bool] = {}

        def matches(iid: int, asn: int) -> bool:
            candidates = candidates_of.get(iid)
            if candidates is None:
                candidates = embedded_ipv4_candidates(iid)
                candidates_of[iid] = candidates
            if not candidates:
                # The common case (no encoding decodes): no ASN can
                # match, so skip the per-(IID, ASN) cache entirely.
                return False
            key = (iid, asn)
            cached = match_cache.get(key)
            if cached is None:
                cached = any(
                    self._ipv4_origin(candidate) == asn
                    for candidate in candidates.values()
                )
                match_cache[key] = cached
            return cached

        accepted: set = set()
        if self._ipv6_origin is not None and self._ipv4_origin is not None:
            per_as_total: Counter = Counter()
            per_as_embedded: Counter = Counter()
            for position, row in enumerate(row_list):
                asn = asns[position]
                if asn is None:
                    continue
                per_as_total[asn] += 1
                iid = iids[row]
                # Structural categories 1-3 can never be IPv4-embedded.
                if iid <= 0xFFFF:
                    continue
                if matches(iid, asn):
                    per_as_embedded[asn] += 1
            for asn, embedded_count in per_as_embedded.items():
                if (
                    embedded_count >= self._min_instances
                    and embedded_count > self._min_fraction * per_as_total[asn]
                ):
                    accepted.add(asn)

        counts: Dict[AddressCategory, int] = {
            category: 0 for category in AddressCategory
        }
        for position, row in enumerate(row_list):
            iid = iids[row]
            if iid > 0xFFFF and accepted:
                asn = asns[position]
                if asn in accepted and matches(iid, asn):
                    counts[AddressCategory.IPV4_MAPPED] += 1
                    continue
            counts[CATEGORY_BY_CODE[codes[row]]] += 1
        return counts

    def _resolve_rows(self, index, row_list) -> List[Optional[int]]:
        """Origin ASN per row of ``row_list``, memoized per /64.

        When the IPv6 origin resolver advertises which /64s contain an
        announcement more specific than /64 (a ``hot_slash64s``
        attribute, as :class:`repro.core.index.CachedOrigins` does),
        every other /64 shares one origin across its addresses, so the
        resolver runs once per distinct /64 key from the index's
        ``slash64s`` column; hot /64s resolve per address.
        """
        origin = self._ipv6_origin
        if origin is None:
            return [None] * len(row_list)
        addresses = index.addresses
        slash64s = getattr(index, "slash64s", None)
        hot = getattr(origin, "hot_slash64s", None)
        if slash64s is None or hot is None:
            return [origin(addresses[row]) for row in row_list]
        cache: Dict[int, Optional[int]] = {}
        asns: List[Optional[int]] = []
        for row in row_list:
            key = slash64s[row]
            if key in hot:
                asns.append(origin(addresses[row]))
                continue
            try:
                asns.append(cache[key])
            except KeyError:
                asn = origin(addresses[row])
                cache[key] = asn
                asns.append(asn)
        return asns

    def _accepted_ipv4_ases(self, addresses: List[int]) -> set:
        """First pass: the set of ASes whose IPv4-embeddings are trusted."""
        if self._ipv6_origin is None or self._ipv4_origin is None:
            return set()
        per_as_total: Counter = Counter()
        per_as_embedded: Counter = Counter()
        for address in addresses:
            asn = self._ipv6_origin(address)
            if asn is None:
                continue
            per_as_total[asn] += 1
            iid = iid_of(address)
            # Structural categories 1-3 can never be IPv4-embedded.
            if iid <= 0xFFFF:
                continue
            if self._candidate_matches_asn(address, asn):
                per_as_embedded[asn] += 1
        accepted = set()
        for asn, embedded_count in per_as_embedded.items():
            total = per_as_total[asn]
            if (
                embedded_count >= self._min_instances
                and embedded_count > self._min_fraction * total
            ):
                accepted.add(asn)
        return accepted


def category_fractions(
    counts: Dict[AddressCategory, int]
) -> Dict[AddressCategory, float]:
    """Convert category counts to fractions of the corpus (sum to 1.0)."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("cannot compute fractions of an empty corpus")
    return {category: count / total for category, count in counts.items()}
