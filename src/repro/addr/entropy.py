"""Normalized Shannon entropy of IPv6 interface identifiers.

Figures 1–4 of the paper plot CDFs of the *normalized Shannon entropy* of
IIDs, computed over the IID's 16 hexadecimal nibbles and divided by the
maximum attainable entropy (log2 of the alphabet size, 4 bits/nibble), so
values land in ``[0, 1]``.

The paper buckets entropies into three classes used throughout the
analyses (Fig. 2b, Fig. 5):

* **low**    — normalized entropy < 0.25 (manually assigned, e.g. ``::1``)
* **medium** — 0.25 <= entropy < 0.75
* **high**   — entropy >= 0.75 (privacy/random addresses)

As the paper notes, entropy is an imperfect proxy for randomness: the IID
``0123:4567:89ab:cdef`` scores 1.0 despite being an obvious pattern.  We
reproduce the metric as specified rather than attempting to repair it.
"""

from __future__ import annotations

import math
from collections import Counter
from enum import Enum
from typing import Iterable, List, Sequence

from .ipv6 import IID_MASK, nibbles_of_iid

__all__ = [
    "EntropyClass",
    "LOW_THRESHOLD",
    "HIGH_THRESHOLD",
    "shannon_entropy",
    "normalized_iid_entropy",
    "normalized_byte_entropy",
    "entropy_class",
    "classify_entropies",
    "entropy_histogram",
]

#: Boundary below which an IID is "low entropy".
LOW_THRESHOLD = 0.25

#: Boundary at/above which an IID is "high entropy".
HIGH_THRESHOLD = 0.75

_NIBBLE_COUNT = 16
_MAX_NIBBLE_ENTROPY = 4.0  # log2(16)
_MAX_BYTE_ENTROPY = 3.0    # log2(8) symbols when hashing 8 bytes


class EntropyClass(Enum):
    """The paper's three-way entropy bucketing of IIDs."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def bounds(self):
        """The half-open ``[lo, hi)`` normalized-entropy interval."""
        if self is EntropyClass.LOW:
            return (0.0, LOW_THRESHOLD)
        if self is EntropyClass.MEDIUM:
            return (LOW_THRESHOLD, HIGH_THRESHOLD)
        return (HIGH_THRESHOLD, 1.0 + 1e-9)


def shannon_entropy(symbols: Sequence[int]) -> float:
    """Shannon entropy (bits/symbol) of an observed symbol sequence."""
    if not symbols:
        raise ValueError("entropy of an empty sequence is undefined")
    counts = Counter(symbols)
    total = len(symbols)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


# -(p * log2(p)) for a nibble occurring `count` times out of 16, indexed
# by count - 1.  Every count/16 is an exact binary fraction, so each term
# is bit-identical to the one shannon_entropy computes inline; summing
# them in the same (first-occurrence) order reproduces its result exactly.
_NIBBLE_TERMS = tuple(
    -((count / _NIBBLE_COUNT) * math.log2(count / _NIBBLE_COUNT))
    for count in range(1, _NIBBLE_COUNT + 1)
)


def normalized_iid_entropy(iid: int) -> float:
    """Normalized Shannon entropy of an IID's 16 nibbles, in ``[0, 1]``.

    This is the paper's metric.  An all-zero IID scores 0.0; an IID whose
    16 nibbles are all distinct scores 1.0.  Equals
    ``shannon_entropy(nibbles_of_iid(iid)) / 4`` bit-for-bit, computed
    without the intermediate nibble list and with the per-count terms
    from a lookup table — this runs once per distinct IID of a corpus,
    so it is the analysis pipeline's innermost loop.

    >>> normalized_iid_entropy(0)
    0.0
    >>> normalized_iid_entropy(0x0123456789abcdef)
    1.0
    """
    iid &= IID_MASK
    counts = [0] * _NIBBLE_COUNT
    order = []
    for shift in range(60, -4, -4):
        nibble = (iid >> shift) & 0xF
        if not counts[nibble]:
            order.append(nibble)
        counts[nibble] += 1
    entropy = 0.0
    for nibble in order:
        entropy += _NIBBLE_TERMS[counts[nibble] - 1]
    return entropy / _MAX_NIBBLE_ENTROPY


def normalized_byte_entropy(iid: int) -> float:
    """Normalized Shannon entropy over the IID's 8 bytes.

    Provided for the ablation bench on entropy granularity (DESIGN.md §6):
    with only 8 symbols the maximum attainable entropy is log2(8) = 3 bits,
    so byte-level entropy saturates earlier than nibble-level.
    """
    iid &= IID_MASK
    data = iid.to_bytes(8, "big")
    return shannon_entropy(list(data)) / _MAX_BYTE_ENTROPY


def entropy_class(entropy: float) -> EntropyClass:
    """Bucket a normalized entropy into the paper's low/medium/high classes."""
    if not 0.0 <= entropy <= 1.0 + 1e-9:
        raise ValueError(f"normalized entropy out of range: {entropy!r}")
    if entropy < LOW_THRESHOLD:
        return EntropyClass.LOW
    if entropy < HIGH_THRESHOLD:
        return EntropyClass.MEDIUM
    return EntropyClass.HIGH


def classify_entropies(iids: Iterable[int]):
    """Count IIDs per entropy class; returns ``{EntropyClass: count}``."""
    counts = {cls: 0 for cls in EntropyClass}
    for iid in iids:
        counts[entropy_class(normalized_iid_entropy(iid))] += 1
    return counts


def entropy_histogram(entropies: Iterable[float], bins: int = 50) -> List[int]:
    """Histogram normalized entropies into ``bins`` equal-width buckets.

    The final bin is closed on the right so an entropy of exactly 1.0 is
    counted rather than dropped.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    histogram = [0] * bins
    for entropy in entropies:
        index = int(entropy * bins)
        if index >= bins:
            index = bins - 1
        if index < 0:
            raise ValueError(f"negative entropy: {entropy!r}")
        histogram[index] += 1
    return histogram
