"""Core IPv6 address representation and bit-level helpers.

Throughout the library, IPv6 addresses in *hot paths* are plain Python
integers in ``[0, 2**128)``; this module provides conversion between that
representation, the RFC 4291 textual form, and the structural pieces the
paper's analyses need (interface identifiers, /48 and /64 prefix keys,
nibbles).  A thin immutable :class:`IPv6` wrapper is provided for code that
prefers a typed value object at API boundaries.

The split at bit 64 is fundamental to the paper: the upper 64 bits are the
(routing) prefix, the lower 64 bits are the Interface Identifier (IID),
whose structure — random, EUI-64, low-byte, IPv4-embedded — drives every
classification in sections 4.3 and 5.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator, List, Tuple

__all__ = [
    "MAX_ADDRESS",
    "IID_MASK",
    "PREFIX_MASK",
    "IPv6",
    "parse",
    "format_address",
    "iid_of",
    "prefix_of",
    "with_iid",
    "slash48_of",
    "slash56_of",
    "slash64_of",
    "prefix_key",
    "nibbles_of_iid",
    "iid_bytes",
    "random_iid_address",
    "is_documentation",
    "is_link_local",
    "is_multicast",
    "is_global_unicast",
    "subnet_id",
]

#: Largest representable IPv6 address, as an int.
MAX_ADDRESS = (1 << 128) - 1

#: Mask selecting the 64-bit Interface Identifier (low half).
IID_MASK = (1 << 64) - 1

#: Mask selecting the 64-bit routing prefix (high half).
PREFIX_MASK = IID_MASK << 64

_DOC_PREFIX = 0x2001_0DB8 << 96  # 2001:db8::/32
_DOC_MASK = ((1 << 32) - 1) << 96


def parse(text: str) -> int:
    """Parse an RFC 4291 textual IPv6 address into a 128-bit int.

    Raises ``ValueError`` for anything that is not a valid, bare IPv6
    address (no zone index, no prefix length).
    """
    return int(ipaddress.IPv6Address(text))


def format_address(value: int) -> str:
    """Render a 128-bit int as compressed lowercase IPv6 text."""
    if not 0 <= value <= MAX_ADDRESS:
        raise ValueError(f"address out of range: {value!r}")
    return str(ipaddress.IPv6Address(value))


def iid_of(value: int) -> int:
    """Return the 64-bit Interface Identifier (the low 64 bits)."""
    return value & IID_MASK


def prefix_of(value: int) -> int:
    """Return the /64 network prefix with the IID zeroed."""
    return value & PREFIX_MASK


def with_iid(prefix: int, iid: int) -> int:
    """Combine a /64 prefix (high bits) with a 64-bit IID."""
    return (prefix & PREFIX_MASK) | (iid & IID_MASK)


def slash48_of(value: int) -> int:
    """Return the address truncated to its /48, low 80 bits zeroed."""
    return value & ~((1 << 80) - 1)


def slash56_of(value: int) -> int:
    """Return the address truncated to its /56, low 72 bits zeroed."""
    return value & ~((1 << 72) - 1)


def slash64_of(value: int) -> int:
    """Alias of :func:`prefix_of`; named for symmetry with slash48_of."""
    return value & PREFIX_MASK


def prefix_key(value: int, length: int) -> Tuple[int, int]:
    """Return a hashable ``(network, length)`` key for the enclosing prefix.

    ``length`` must be in ``[0, 128]``.  The network part has all host bits
    cleared, so two addresses inside the same prefix produce equal keys.
    """
    if not 0 <= length <= 128:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return (0, 0)
    mask = ~((1 << (128 - length)) - 1) & MAX_ADDRESS
    return (value & mask, length)


def subnet_id(value: int, delegated_length: int) -> int:
    """Return the subnet bits between a delegated prefix and the /64.

    For a customer delegated a ``delegated_length`` prefix (e.g. /56), the
    bits between that prefix and bit 64 select one of its subnets.  Raises
    ``ValueError`` when ``delegated_length`` exceeds 64 (no subnet bits).
    """
    if not 0 <= delegated_length <= 64:
        raise ValueError(f"delegated length must be <= 64: {delegated_length}")
    width = 64 - delegated_length
    if width == 0:
        return 0
    return (value >> 64) & ((1 << width) - 1)


def nibbles_of_iid(iid: int) -> List[int]:
    """Split a 64-bit IID into its 16 hex nibbles, most significant first.

    Nibbles are the alphabet over which the paper computes the normalized
    Shannon entropy of an IID.
    """
    return [(iid >> shift) & 0xF for shift in range(60, -4, -4)]


def iid_bytes(iid: int) -> bytes:
    """Return the 8-byte big-endian representation of a 64-bit IID."""
    return (iid & IID_MASK).to_bytes(8, "big")


def random_iid_address(prefix: int, rng) -> int:
    """Draw an address with a uniformly random IID inside ``prefix``'s /64.

    ``rng`` is any object with a ``getrandbits(k)`` method (``random.Random``
    qualifies).  Used both by privacy-extension address generation and by
    the backscanning campaign's random-in-/64 probe targets (§3).
    """
    return with_iid(prefix, rng.getrandbits(64))


def is_documentation(value: int) -> bool:
    """True for addresses in the 2001:db8::/32 documentation prefix."""
    return (value & _DOC_MASK) == _DOC_PREFIX


def is_link_local(value: int) -> bool:
    """True for fe80::/10 link-local addresses."""
    return (value >> 118) == 0x3FA  # fe80::/10 -> top ten bits 1111111010


def is_multicast(value: int) -> bool:
    """True for ff00::/8 multicast addresses."""
    return (value >> 120) == 0xFF


def is_global_unicast(value: int) -> bool:
    """True for 2000::/3 global unicast addresses."""
    return (value >> 125) == 0b001


class IPv6:
    """Immutable IPv6 address value object.

    Wraps the integer representation used in hot paths with parsing,
    formatting, ordering and the structural accessors the analyses need.

    >>> a = IPv6("2001:db8::a1")
    >>> a.iid
    161
    >>> str(a)
    '2001:db8::a1'
    """

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        if isinstance(value, IPv6):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_ADDRESS:
                raise ValueError(f"address out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            self._value = parse(value)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 16:
                raise ValueError("IPv6 bytes form must be 16 bytes")
            self._value = int.from_bytes(value, "big")
        else:
            raise TypeError(f"cannot build IPv6 from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The 128-bit integer form."""
        return self._value

    @property
    def iid(self) -> int:
        """The 64-bit Interface Identifier."""
        return iid_of(self._value)

    @property
    def prefix64(self) -> int:
        """The /64 prefix (IID bits zeroed)."""
        return prefix_of(self._value)

    @property
    def prefix48(self) -> int:
        """The /48 prefix (low 80 bits zeroed)."""
        return slash48_of(self._value)

    @property
    def packed(self) -> bytes:
        """The 16-byte big-endian wire form."""
        return self._value.to_bytes(16, "big")

    def with_iid(self, iid: int) -> "IPv6":
        """Return a copy with the IID replaced."""
        return IPv6(with_iid(self._value, iid))

    def in_prefix(self, network: "IPv6", length: int) -> bool:
        """True when this address lies inside ``network/length``."""
        return prefix_key(self._value, length) == prefix_key(network._value, length)

    def __str__(self) -> str:
        return format_address(self._value)

    def __repr__(self) -> str:
        return f"IPv6('{format_address(self._value)}')"

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other) -> bool:
        if isinstance(other, IPv6):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, IPv6):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, IPv6):
            return self._value <= other._value
        if isinstance(other, int):
            return self._value <= other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)


def addresses_to_ints(addresses: Iterable) -> Iterator[int]:
    """Normalize a mixed iterable of str/int/IPv6 into plain ints."""
    for item in addresses:
        if isinstance(item, int):
            yield item
        elif isinstance(item, IPv6):
            yield item.value
        elif isinstance(item, str):
            yield parse(item)
        else:
            raise TypeError(f"cannot interpret {type(item).__name__} as IPv6")
