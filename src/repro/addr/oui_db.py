"""Organizationally Unique Identifier (OUI) registry.

The paper resolves the OUIs of MAC addresses extracted from EUI-64 IIDs
against the IEEE registry to attribute addresses to manufacturers
(Table 2).  The real registry is a network resource; this module supplies
an equivalent in-process database seeded with the vendors the paper
reports — including the *unlisted* OUI space that dominates its Table 2
(73.9% of extracted MACs resolve to no registered vendor, e.g. the
``f0:02:20`` OUI) and AVM GmbH, whose Fritz!Box routers dominate the §5.3
geolocation results.

The registry is deliberately small but structurally faithful: lookups,
manufacturer tallies, and the listed/unlisted split all behave as they
would against the IEEE file.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .mac import oui_of

__all__ = [
    "UNLISTED",
    "VendorRecord",
    "OUIDatabase",
    "default_oui_database",
    "manufacturer_counts",
]

#: Label used for MACs whose OUI is absent from the registry.
UNLISTED = "Unlisted"


@dataclass(frozen=True)
class VendorRecord:
    """A registered vendor and the OUIs assigned to it."""

    name: str
    ouis: Tuple[int, ...]

    def __post_init__(self) -> None:
        for oui in self.ouis:
            if not 0 <= oui <= 0xFFFFFF:
                raise ValueError(f"OUI out of range: {oui:#x}")


class OUIDatabase:
    """Registry mapping 24-bit OUIs to manufacturer names.

    >>> db = OUIDatabase()
    >>> db.register("Example Corp", [0x001122])
    >>> db.lookup_mac(0x001122_334455)
    'Example Corp'
    >>> db.lookup_mac(0xf00220_000001) is None
    True
    """

    def __init__(self) -> None:
        self._by_oui: Dict[int, str] = {}
        self._by_vendor: Dict[str, List[int]] = {}

    def register(self, vendor: str, ouis: Iterable[int]) -> None:
        """Assign OUIs to a vendor; re-registering an OUI is an error."""
        if not vendor or vendor == UNLISTED:
            raise ValueError(f"invalid vendor name: {vendor!r}")
        for oui in ouis:
            if not 0 <= oui <= 0xFFFFFF:
                raise ValueError(f"OUI out of range: {oui:#x}")
            existing = self._by_oui.get(oui)
            if existing is not None and existing != vendor:
                raise ValueError(
                    f"OUI {oui:06x} already registered to {existing!r}"
                )
            self._by_oui[oui] = vendor
            self._by_vendor.setdefault(vendor, []).append(oui)

    def lookup_oui(self, oui: int) -> Optional[str]:
        """Vendor name for an OUI, or ``None`` when unlisted."""
        return self._by_oui.get(oui & 0xFFFFFF)

    def lookup_mac(self, mac: int) -> Optional[str]:
        """Vendor name for a full MAC address, or ``None`` when unlisted."""
        return self.lookup_oui(oui_of(mac))

    def ouis_of(self, vendor: str) -> Tuple[int, ...]:
        """All OUIs registered to ``vendor`` (empty when unknown)."""
        return tuple(self._by_vendor.get(vendor, ()))

    def vendors(self) -> Tuple[str, ...]:
        """All registered vendor names, in registration order."""
        return tuple(self._by_vendor)

    def __len__(self) -> int:
        return len(self._by_oui)

    def __contains__(self, oui: int) -> bool:
        return (oui & 0xFFFFFF) in self._by_oui


def manufacturer_counts(
    macs: Iterable[int], database: OUIDatabase
) -> Counter:
    """Tally unique-MAC counts per manufacturer, as in Table 2.

    MACs whose OUI is not registered are attributed to :data:`UNLISTED`.
    Callers should pass *unique* MACs (the paper counts distinct MACs);
    this function tallies whatever it is given.
    """
    counts: Counter = Counter()
    for mac in macs:
        vendor = database.lookup_mac(mac)
        counts[vendor if vendor is not None else UNLISTED] += 1
    return counts


# --- default registry -----------------------------------------------------

# Vendors from the paper's Table 2, plus AVM (drives the §5.3 geolocation
# result) and a few common infrastructure vendors for router interfaces.
# OUI values are synthetic except for a handful the paper names.
_DEFAULT_VENDORS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("Amazon Technologies Inc.", (0x747548, 0x0C47C9, 0x44650D, 0xF0272D)),
    ("Samsung Electronics Co.,Ltd", (0x8C7712, 0xA02195, 0xC819F7, 0x503275)),
    ("Sonos, Inc.", (0x000E58, 0x5CAAFD, 0x949F3E)),
    ("vivo Mobile Communication Co., Ltd.", (0x2C3796, 0xA89675)),
    ("Sunnovo International Limited", (0x4CEFC0, 0x78D38D)),
    ("Hui Zhou Gaoshengda Technology Co.,LTD", (0x0CB527, 0x88D7F6)),
    ("Huawei Technologies", (0x00E0FC, 0x480031, 0xACE215, 0x781DBA)),
    ("Shenzhen Chuangwei-RGB Electronics", (0x08E609, 0xD437D7)),
    (
        "Skyworth Digital Technology (Shenzhen) Co.,Ltd",
        (0x18C5E1, 0xD82918),
    ),
    # AVM gets a deliberately small OUI set so per-OUI MAC populations
    # stay above the offset-inference pair threshold at simulation scale
    # (the real AVM spreads across ~10 OUIs but at 1e6x our volume).
    ("AVM GmbH", (0x3810D5, 0xC80E14)),
    ("Apple, Inc.", (0xF01898, 0xA4D1D2, 0x28F076)),
    ("Intel Corporate", (0x3C5282, 0x8086F2)),
    ("Cisco Systems, Inc", (0x00000C, 0x58971E)),
    ("Juniper Networks", (0x2C6BF5, 0x80711F)),
    ("TP-Link Technologies Co.,Ltd.", (0x50C7BF, 0xB0BE76)),
    ("Xiaomi Communications Co Ltd", (0x64B473, 0xF8A45F)),
    ("LG Electronics", (0xA8922C, 0xCCFA00)),
    ("Espressif Inc.", (0x240AC4, 0x30AEA4)),
)

#: Unlisted OUI space observed in the paper (not in the IEEE registry).
#: ``f0:02:20`` is the paper's most common unlisted OUI; ``a8:aa:20``
#: appears in its Figure 7a renumbering exemplar.
DEFAULT_UNLISTED_OUIS: Tuple[int, ...] = (
    0xF00220,
    0xA8AA20,
    0xF00221,
    0xD00E99,
    0x7A1100,
    0x02BAD0,
)


def default_oui_database() -> OUIDatabase:
    """Build the registry used throughout the reproduction.

    Contains every Table 2 vendor plus AVM and common infrastructure
    vendors.  The OUIs in :data:`DEFAULT_UNLISTED_OUIS` are deliberately
    *not* registered; the world model assigns them to devices so the
    "Unlisted" phenomenon of Table 2 emerges naturally.
    """
    database = OUIDatabase()
    for vendor, ouis in _DEFAULT_VENDORS:
        database.register(vendor, ouis)
    return database
