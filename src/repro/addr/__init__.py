"""IPv6 / MAC address analytics.

Pure-algorithm building blocks for every classification the paper
performs: address and IID structure (:mod:`repro.addr.ipv6`), MAC and OUI
handling (:mod:`repro.addr.mac`, :mod:`repro.addr.oui_db`), EUI-64
embedding and recovery (:mod:`repro.addr.eui64`), normalized Shannon
entropy (:mod:`repro.addr.entropy`) and the seven-category addressing
taxonomy (:mod:`repro.addr.patterns`).
"""

from .entropy import (
    EntropyClass,
    entropy_class,
    normalized_iid_entropy,
)
from .eui64 import (
    expected_random_eui64,
    extract_mac,
    iid_to_mac,
    looks_like_eui64,
    mac_to_address,
    mac_to_iid,
)
from .ipv6 import IPv6, format_address, iid_of, parse, slash48_of, slash64_of
from .mac import MACAddress, format_mac, oui_of, parse_mac
from .oui_db import OUIDatabase, default_oui_database, manufacturer_counts
from .patterns import (
    AddressCategory,
    CategoryClassifier,
    category_fractions,
    classify_iid_structurally,
    embedded_ipv4_candidates,
)

__all__ = [
    "IPv6",
    "MACAddress",
    "AddressCategory",
    "CategoryClassifier",
    "EntropyClass",
    "OUIDatabase",
    "category_fractions",
    "classify_iid_structurally",
    "default_oui_database",
    "embedded_ipv4_candidates",
    "entropy_class",
    "expected_random_eui64",
    "extract_mac",
    "format_address",
    "format_mac",
    "iid_of",
    "iid_to_mac",
    "looks_like_eui64",
    "mac_to_address",
    "mac_to_iid",
    "manufacturer_counts",
    "normalized_iid_entropy",
    "oui_of",
    "parse",
    "parse_mac",
    "slash48_of",
    "slash64_of",
]
