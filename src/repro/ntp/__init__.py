"""NTP substrate: wire format, server/client behaviour, the NTP Pool.

Real RFC 5905 packet serialization (:mod:`repro.ntp.packet`,
:mod:`repro.ntp.timestamps`), a stratum-2 server with a passive
observation sink (:mod:`repro.ntp.server`), per-OS time-source selection
(:mod:`repro.ntp.client`) and the Pool's geo-aware DNS round-robin
(:mod:`repro.ntp.pool`).
"""

from .client import (
    OperatingSystem,
    TimeSource,
    build_request,
    time_source_for,
    validate_response,
)
from .dhcp import (
    NTPMulticastAddress,
    NTPServerAddress,
    NTPServerFQDN,
    encode_ntp_option,
    parse_ntp_option,
)
from .dns import (
    DNSQuery,
    DNSResponse,
    build_query,
    build_response,
    parse_query,
    parse_response,
)
from .packet import LeapIndicator, Mode, NTPPacket, NTP_VERSION, PACKET_LENGTH
from .pool import COUNTRY_CONTINENT, NTPPool, continent_of
from .server import ServerStats, StratumTwoServer
from .timestamps import (
    NTP_FRACTION,
    NTP_UNIX_OFFSET,
    ntp_short,
    ntp_to_unix,
    short_to_seconds,
    unix_to_ntp,
)

__all__ = [
    "COUNTRY_CONTINENT",
    "DNSQuery",
    "DNSResponse",
    "LeapIndicator",
    "Mode",
    "NTPMulticastAddress",
    "NTPPacket",
    "NTPPool",
    "NTPServerAddress",
    "NTPServerFQDN",
    "NTP_FRACTION",
    "NTP_UNIX_OFFSET",
    "NTP_VERSION",
    "OperatingSystem",
    "PACKET_LENGTH",
    "ServerStats",
    "StratumTwoServer",
    "TimeSource",
    "build_query",
    "build_request",
    "build_response",
    "continent_of",
    "encode_ntp_option",
    "ntp_short",
    "parse_ntp_option",
    "parse_query",
    "parse_response",
    "ntp_to_unix",
    "short_to_seconds",
    "time_source_for",
    "unix_to_ntp",
    "validate_response",
]
