"""NTP client behaviour: request construction and time-source selection.

Which time source a device queries is a function of its operating system
(paper §2.3): Windows uses ``time.windows.com``, Apple devices
``time.apple.com``, Android ≥ 8 ``time.android.com``, older Android the
``android`` NTP Pool vendor zone, and most Linux distributions and
embedded/IoT devices a distro vendor zone or the generic pool.  Only
queries to *pool* zones reach the paper's vantage points — this selection
logic is what makes the corpus client-rich yet Android-poor.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .packet import Mode, NTPPacket
from .timestamps import unix_to_ntp

__all__ = [
    "TimeSource",
    "OperatingSystem",
    "time_source_for",
    "build_request",
    "validate_response",
]


class TimeSource(Enum):
    """Where a device's NTP configuration points."""

    POOL = "pool.ntp.org"
    POOL_ANDROID = "android.pool.ntp.org"
    POOL_UBUNTU = "ubuntu.pool.ntp.org"
    POOL_CENTOS = "centos.pool.ntp.org"
    POOL_DEBIAN = "debian.pool.ntp.org"
    POOL_OPENWRT = "openwrt.pool.ntp.org"
    TIME_WINDOWS = "time.windows.com"
    TIME_APPLE = "time.apple.com"
    TIME_ANDROID = "time.android.com"
    TIME_GOOGLE = "time.google.com"
    DHCP_PROVIDED = "dhcp"
    NONE = "none"

    @property
    def is_pool_zone(self) -> bool:
        """True when queries go to the NTP Pool (and hence our vantages)."""
        return self.value.endswith("pool.ntp.org")


class OperatingSystem(Enum):
    """Coarse OS families with distinct default time sources."""

    WINDOWS = "windows"
    MACOS = "macos"
    IOS = "ios"
    ANDROID_MODERN = "android>=8"
    ANDROID_LEGACY = "android<8"
    LINUX_UBUNTU = "ubuntu"
    LINUX_CENTOS = "centos"
    LINUX_DEBIAN = "debian"
    EMBEDDED_OPENWRT = "openwrt"
    IOT_GENERIC = "iot"
    NETWORK_OS = "router-os"


_DEFAULT_SOURCES = {
    OperatingSystem.WINDOWS: TimeSource.TIME_WINDOWS,
    OperatingSystem.MACOS: TimeSource.TIME_APPLE,
    OperatingSystem.IOS: TimeSource.TIME_APPLE,
    OperatingSystem.ANDROID_MODERN: TimeSource.TIME_ANDROID,
    OperatingSystem.ANDROID_LEGACY: TimeSource.POOL_ANDROID,
    OperatingSystem.LINUX_UBUNTU: TimeSource.POOL_UBUNTU,
    OperatingSystem.LINUX_CENTOS: TimeSource.POOL_CENTOS,
    OperatingSystem.LINUX_DEBIAN: TimeSource.POOL_DEBIAN,
    OperatingSystem.EMBEDDED_OPENWRT: TimeSource.POOL_OPENWRT,
    OperatingSystem.IOT_GENERIC: TimeSource.POOL,
    OperatingSystem.NETWORK_OS: TimeSource.POOL,
}


def time_source_for(
    os_family: OperatingSystem, dhcp_override: Optional[TimeSource] = None
) -> TimeSource:
    """The time source a device with this OS will query.

    A DHCP(v6)-provided NTP option (RFC 2132 / RFC 5908) overrides the OS
    default when present.
    """
    if dhcp_override is not None:
        return dhcp_override
    return _DEFAULT_SOURCES[os_family]


def build_request(unix_time: float, poll: int = 6) -> NTPPacket:
    """Build a standard mode-3 client request.

    Only the transmit timestamp is meaningful in a client request; the
    other timestamp fields stay zero (RFC 5905 §8, client operation).
    """
    return NTPPacket(
        mode=Mode.CLIENT,
        stratum=0,
        poll=poll,
        transmit_timestamp=unix_to_ntp(unix_time),
    )


def validate_response(request: NTPPacket, response: NTPPacket) -> bool:
    """Client-side sanity checks on a server response (RFC 5905 §8).

    The origin timestamp must echo our transmit timestamp (anti-spoofing),
    the mode must be server, and the server must be synchronized.
    """
    return (
        response.mode is Mode.SERVER
        and response.origin_timestamp == request.transmit_timestamp
        and 1 <= response.stratum <= 15
        and response.transmit_timestamp != 0
    )
