"""NTP timestamp arithmetic (RFC 5905 §6).

NTP timestamps are 64-bit fixed-point values: 32 bits of seconds since
the prime epoch (1 January 1900, era 0) and 32 bits of binary fraction.
The library's simulation clock runs on Unix time (seconds since 1970), so
conversions between the two representations are needed whenever packets
are serialized.
"""

from __future__ import annotations

__all__ = [
    "NTP_UNIX_OFFSET",
    "NTP_FRACTION",
    "unix_to_ntp",
    "ntp_to_unix",
    "ntp_short",
    "short_to_seconds",
]

#: Seconds between the NTP prime epoch (1900) and the Unix epoch (1970):
#: 70 years including 17 leap days.
NTP_UNIX_OFFSET = 2_208_988_800

#: Scale of the 32-bit fractional part.
NTP_FRACTION = 1 << 32

_ERA_SECONDS = 1 << 32


def unix_to_ntp(unix_time: float) -> int:
    """Convert Unix seconds to a 64-bit NTP timestamp.

    Times are wrapped into era 0 modulo 2**32 seconds, exactly as the
    32-bit on-wire seconds field does; negative Unix times (pre-1970) are
    valid as long as they fall after the 1900 prime epoch.
    """
    if unix_time < -NTP_UNIX_OFFSET:
        raise ValueError(f"time predates the NTP prime epoch: {unix_time!r}")
    total = unix_time + NTP_UNIX_OFFSET
    seconds = int(total) % _ERA_SECONDS
    fraction = int(round((total - int(total)) * NTP_FRACTION))
    if fraction >= NTP_FRACTION:  # rounding carried into the seconds field
        fraction = 0
        seconds = (seconds + 1) % _ERA_SECONDS
    return (seconds << 32) | fraction


def ntp_to_unix(ntp_time: int, era: int = 0) -> float:
    """Convert a 64-bit NTP timestamp (in the given era) to Unix seconds."""
    if not 0 <= ntp_time < (1 << 64):
        raise ValueError(f"NTP timestamp out of range: {ntp_time!r}")
    seconds = (ntp_time >> 32) + era * _ERA_SECONDS
    fraction = (ntp_time & 0xFFFFFFFF) / NTP_FRACTION
    return seconds + fraction - NTP_UNIX_OFFSET


def ntp_short(seconds: float) -> int:
    """Encode a duration as a 32-bit NTP short (16.16 fixed point).

    Used for the root delay and root dispersion header fields.
    """
    if seconds < 0:
        raise ValueError(f"durations must be non-negative: {seconds!r}")
    value = int(round(seconds * (1 << 16)))
    if value >= 1 << 32:
        raise ValueError(f"duration too large for NTP short: {seconds!r}")
    return value


def short_to_seconds(short: int) -> float:
    """Decode a 32-bit NTP short back into seconds."""
    if not 0 <= short < (1 << 32):
        raise ValueError(f"NTP short out of range: {short!r}")
    return short / (1 << 16)
