"""DHCPv6 NTP server option (RFC 5908) wire format.

The paper notes (§2.3) that NTP servers "can additionally be specified
via DHCP and DHCPv6 options" — this is how ISPs point CPE at their own
time service, the behaviour modelled by
``WorldConfig.cpe_isp_ntp_probability``.  This module implements the
actual RFC 5908 encoding so the provisioning path is wire-real:

* ``OPTION_NTP_SERVER`` (56) carries one or more suboptions;
* ``NTP_SUBOPTION_SRV_ADDR`` (1) — a 16-byte IPv6 server address;
* ``NTP_SUBOPTION_MC_ADDR`` (2) — a 16-byte multicast address;
* ``NTP_SUBOPTION_SRV_FQDN`` (3) — a DNS-encoded server name (how a
  pool zone like ``pool.ntp.org`` is provisioned).

All encoders produce the option *payload*; the enclosing DHCPv6
option-code/len framing is included so payloads round-trip through
:func:`parse_ntp_option` exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple, Union

__all__ = [
    "OPTION_NTP_SERVER",
    "NTP_SUBOPTION_SRV_ADDR",
    "NTP_SUBOPTION_MC_ADDR",
    "NTP_SUBOPTION_SRV_FQDN",
    "NTPServerAddress",
    "NTPMulticastAddress",
    "NTPServerFQDN",
    "encode_ntp_option",
    "parse_ntp_option",
    "encode_fqdn",
    "parse_fqdn",
]

#: DHCPv6 option code for the NTP server option (RFC 5908 §4).
OPTION_NTP_SERVER = 56

NTP_SUBOPTION_SRV_ADDR = 1
NTP_SUBOPTION_MC_ADDR = 2
NTP_SUBOPTION_SRV_FQDN = 3

_HEADER = struct.Struct(">HH")


@dataclass(frozen=True)
class NTPServerAddress:
    """A unicast NTP server address suboption."""

    address: int

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 128):
            raise ValueError(f"address out of range: {self.address:#x}")

    def encode(self) -> bytes:
        return _HEADER.pack(NTP_SUBOPTION_SRV_ADDR, 16) + self.address.to_bytes(
            16, "big"
        )


@dataclass(frozen=True)
class NTPMulticastAddress:
    """A multicast NTP address suboption."""

    address: int

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 128):
            raise ValueError(f"address out of range: {self.address:#x}")
        if (self.address >> 120) != 0xFF:
            raise ValueError("multicast suboption needs an ff00::/8 address")

    def encode(self) -> bytes:
        return _HEADER.pack(NTP_SUBOPTION_MC_ADDR, 16) + self.address.to_bytes(
            16, "big"
        )


@dataclass(frozen=True)
class NTPServerFQDN:
    """A server-name suboption (RFC 1035 §3.1 label encoding)."""

    name: str

    def __post_init__(self) -> None:
        # Validate eagerly: encode_fqdn raises on bad labels.
        encode_fqdn(self.name)

    def encode(self) -> bytes:
        wire = encode_fqdn(self.name)
        return _HEADER.pack(NTP_SUBOPTION_SRV_FQDN, len(wire)) + wire


Suboption = Union[NTPServerAddress, NTPMulticastAddress, NTPServerFQDN]


def encode_fqdn(name: str) -> bytes:
    """Encode a domain name as RFC 1035 length-prefixed labels."""
    if not name or name == ".":
        raise ValueError("empty domain name")
    wire = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not 1 <= len(raw) <= 63:
            raise ValueError(f"bad label in domain name: {label!r}")
        wire.append(len(raw))
        wire.extend(raw)
    wire.append(0)
    if len(wire) > 255:
        raise ValueError("domain name too long")
    return bytes(wire)


def parse_fqdn(wire: bytes) -> str:
    """Decode RFC 1035 labels back into dotted text."""
    labels: List[str] = []
    index = 0
    while True:
        if index >= len(wire):
            raise ValueError("truncated domain name")
        length = wire[index]
        index += 1
        if length == 0:
            break
        if length > 63:
            raise ValueError(f"bad label length: {length}")
        if index + length > len(wire):
            raise ValueError("truncated label")
        labels.append(wire[index:index + length].decode("ascii"))
        index += length
    if index != len(wire):
        raise ValueError("trailing bytes after domain name")
    if not labels:
        raise ValueError("empty domain name")
    return ".".join(labels)


def encode_ntp_option(suboptions: List[Suboption]) -> bytes:
    """Encode a full OPTION_NTP_SERVER with framing.

    RFC 5908 requires at least one suboption.
    """
    if not suboptions:
        raise ValueError("RFC 5908 requires at least one suboption")
    payload = b"".join(suboption.encode() for suboption in suboptions)
    return _HEADER.pack(OPTION_NTP_SERVER, len(payload)) + payload


def parse_ntp_option(wire: bytes) -> List[Suboption]:
    """Parse an OPTION_NTP_SERVER (with framing) into suboptions.

    Unknown suboption codes are rejected — a provisioning daemon must
    not silently mis-sync a client's clock source.
    """
    if len(wire) < _HEADER.size:
        raise ValueError("truncated DHCPv6 option")
    code, length = _HEADER.unpack_from(wire)
    if code != OPTION_NTP_SERVER:
        raise ValueError(f"not an NTP server option: code {code}")
    payload = wire[_HEADER.size:]
    if len(payload) != length:
        raise ValueError(
            f"option length mismatch: header says {length}, got {len(payload)}"
        )
    suboptions: List[Suboption] = []
    index = 0
    while index < len(payload):
        if index + _HEADER.size > len(payload):
            raise ValueError("truncated suboption header")
        sub_code, sub_length = _HEADER.unpack_from(payload, index)
        index += _HEADER.size
        body = payload[index:index + sub_length]
        if len(body) != sub_length:
            raise ValueError("truncated suboption body")
        index += sub_length
        if sub_code == NTP_SUBOPTION_SRV_ADDR:
            if sub_length != 16:
                raise ValueError("server-address suboption must be 16 bytes")
            suboptions.append(
                NTPServerAddress(int.from_bytes(body, "big"))
            )
        elif sub_code == NTP_SUBOPTION_MC_ADDR:
            if sub_length != 16:
                raise ValueError("multicast suboption must be 16 bytes")
            suboptions.append(
                NTPMulticastAddress(int.from_bytes(body, "big"))
            )
        elif sub_code == NTP_SUBOPTION_SRV_FQDN:
            suboptions.append(NTPServerFQDN(parse_fqdn(body)))
        else:
            raise ValueError(f"unknown NTP suboption code: {sub_code}")
    if not suboptions:
        raise ValueError("RFC 5908 requires at least one suboption")
    return suboptions
