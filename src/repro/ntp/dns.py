"""Minimal DNS wire format (RFC 1035) for pool-zone resolution.

The NTP Pool steers clients entirely through DNS: a client resolves
``pool.ntp.org`` (or a vendor zone) and receives a geo-selected,
round-robin set of AAAA records.  This module implements the message
subset that exchange needs — query and response with AAAA answers —
so :meth:`repro.ntp.pool.NTPPool.handle_dns_query` can answer real
datagrams.

Scope: single-question queries, QTYPE AAAA, QCLASS IN, no name
compression on encode (compression pointers are rejected on parse with
a clear error, as the pool's own answers repeat the owner name).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from .dhcp import encode_fqdn, parse_fqdn

__all__ = [
    "QTYPE_AAAA",
    "QCLASS_IN",
    "DNSQuery",
    "DNSResponse",
    "build_query",
    "parse_query",
    "build_response",
    "parse_response",
]

QTYPE_AAAA = 28
QCLASS_IN = 1

_HEADER = struct.Struct(">HHHHHH")
_QR_BIT = 1 << 15
_RD_BIT = 1 << 8
_RA_BIT = 1 << 7


@dataclass(frozen=True)
class DNSQuery:
    """One parsed AAAA question."""

    qid: int
    qname: str

    def __post_init__(self) -> None:
        if not 0 <= self.qid <= 0xFFFF:
            raise ValueError(f"query id out of range: {self.qid}")
        encode_fqdn(self.qname)  # validates


@dataclass(frozen=True)
class DNSResponse:
    """A parsed AAAA response."""

    qid: int
    qname: str
    addresses: Tuple[int, ...]
    ttl: int


def build_query(qname: str, qid: int) -> bytes:
    """Serialize a recursion-desired AAAA query."""
    if not 0 <= qid <= 0xFFFF:
        raise ValueError(f"query id out of range: {qid}")
    header = _HEADER.pack(qid, _RD_BIT, 1, 0, 0, 0)
    return header + encode_fqdn(qname) + struct.pack(
        ">HH", QTYPE_AAAA, QCLASS_IN
    )


def _read_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Read an uncompressed name; returns (name, next_offset)."""
    end = offset
    while True:
        if end >= len(data):
            raise ValueError("truncated name")
        length = data[end]
        if length & 0xC0:
            raise ValueError("compression pointers are not supported")
        end += 1 + length
        if length == 0:
            break
    return parse_fqdn(data[offset:end]), end


def parse_query(data: bytes) -> DNSQuery:
    """Parse a single-question AAAA query."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated DNS header")
    qid, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack_from(data)
    if flags & _QR_BIT:
        raise ValueError("message is a response, not a query")
    if qdcount != 1:
        raise ValueError(f"expected one question, got {qdcount}")
    if ancount != 0:
        raise ValueError("query carries answers")
    qname, offset = _read_name(data, _HEADER.size)
    if offset + 4 > len(data):
        raise ValueError("truncated question")
    qtype, qclass = struct.unpack_from(">HH", data, offset)
    if qtype != QTYPE_AAAA:
        raise ValueError(f"unsupported qtype: {qtype}")
    if qclass != QCLASS_IN:
        raise ValueError(f"unsupported qclass: {qclass}")
    return DNSQuery(qid=qid, qname=qname)


def build_response(
    query: DNSQuery, addresses: List[int], ttl: int = 150
) -> bytes:
    """Serialize an authoritative-style answer to ``query``.

    TTL defaults to 150 s — the short TTL the pool uses so round-robin
    answers actually rotate.
    """
    if not 0 <= ttl < (1 << 31):
        raise ValueError(f"ttl out of range: {ttl}")
    for address in addresses:
        if not 0 <= address < (1 << 128):
            raise ValueError(f"address out of range: {address:#x}")
    flags = _QR_BIT | _RD_BIT | _RA_BIT
    header = _HEADER.pack(query.qid, flags, 1, len(addresses), 0, 0)
    name = encode_fqdn(query.qname)
    question = name + struct.pack(">HH", QTYPE_AAAA, QCLASS_IN)
    answers = b""
    for address in addresses:
        answers += name
        answers += struct.pack(">HHIH", QTYPE_AAAA, QCLASS_IN, ttl, 16)
        answers += address.to_bytes(16, "big")
    return header + question + answers


def parse_response(data: bytes) -> DNSResponse:
    """Parse an AAAA response built by :func:`build_response`."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated DNS header")
    qid, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack_from(data)
    if not flags & _QR_BIT:
        raise ValueError("message is a query, not a response")
    if qdcount != 1:
        raise ValueError(f"expected one question, got {qdcount}")
    qname, offset = _read_name(data, _HEADER.size)
    offset += 4  # qtype + qclass
    addresses = []
    ttl = 0
    for _ in range(ancount):
        owner, offset = _read_name(data, offset)
        if owner != qname:
            raise ValueError("answer owner does not match the question")
        if offset + 10 > len(data):
            raise ValueError("truncated answer header")
        rtype, rclass, ttl, rdlength = struct.unpack_from(
            ">HHIH", data, offset
        )
        offset += 10
        if rtype != QTYPE_AAAA or rclass != QCLASS_IN:
            raise ValueError("unexpected answer type")
        if rdlength != 16 or offset + 16 > len(data):
            raise ValueError("bad AAAA rdata")
        addresses.append(int.from_bytes(data[offset:offset + 16], "big"))
        offset += 16
    if offset != len(data):
        raise ValueError("trailing bytes after answers")
    return DNSResponse(
        qid=qid, qname=qname, addresses=tuple(addresses), ttl=ttl
    )
