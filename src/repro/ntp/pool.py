"""The NTP Pool: membership, vendor zones, geo-aware DNS round-robin.

The NTP Pool Project directs clients to member servers via DNS answers
that combine coarse IP geolocation with round-robin rotation (§2.3): a
client resolving ``pool.ntp.org`` receives servers near it when the pool
has nearby members, falling back to continent- and then world-level
answers.  This is why the paper's 27 servers in 20 countries saw clients
from 175 countries.

Vendor zones (``android.pool.ntp.org`` etc.) are modelled as views over
the same membership — any pool member may be handed out for any zone —
which matches how volunteers' servers actually serve vendor zone traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .client import TimeSource
from .server import StratumTwoServer

__all__ = ["COUNTRY_CONTINENT", "continent_of", "NTPPool"]

#: ISO-3166-1 alpha-2 country → continent code, covering the countries the
#: world model and the paper's vantage list use.
COUNTRY_CONTINENT: Dict[str, str] = {
    # North America
    "US": "NA", "CA": "NA", "MX": "NA",
    # South America
    "BR": "SA", "AR": "SA", "CL": "SA", "CO": "SA", "PE": "SA",
    # Europe
    "DE": "EU", "GB": "EU", "FR": "EU", "NL": "EU", "PL": "EU",
    "ES": "EU", "SE": "EU", "BG": "EU", "IT": "EU", "CZ": "EU",
    "CH": "EU", "AT": "EU", "BE": "EU", "PT": "EU", "RO": "EU",
    "LU": "EU", "FI": "EU", "NO": "EU", "DK": "EU", "IE": "EU",
    "UA": "EU", "GR": "EU", "HU": "EU", "RU": "EU", "TR": "EU",
    # Asia
    "JP": "AS", "CN": "AS", "IN": "AS", "ID": "AS", "KR": "AS",
    "SG": "AS", "HK": "AS", "TW": "AS", "BH": "AS", "TH": "AS",
    "VN": "AS", "MY": "AS", "PH": "AS", "PK": "AS", "BD": "AS",
    "IR": "AS", "IQ": "AS", "SA": "AS", "AE": "AS", "IL": "AS",
    "KZ": "AS", "LK": "AS", "NP": "AS", "MM": "AS",
    # Africa
    "ZA": "AF", "NG": "AF", "EG": "AF", "KE": "AF", "MA": "AF",
    "GH": "AF", "TZ": "AF", "DZ": "AF",
    # Oceania
    "AU": "OC", "NZ": "OC",
}


def continent_of(country: str) -> Optional[str]:
    """Continent code for a country, or ``None`` when unmapped."""
    return COUNTRY_CONTINENT.get(country)


class NTPPool:
    """Pool membership plus the geo DNS resolution the Pool performs.

    Resolution is deterministic: each (zone, tier) keeps its own rotation
    cursor, so repeated queries walk the candidate list round-robin — the
    property that spreads clients across the paper's 27 vantages.
    """

    #: Number of A/AAAA records a pool DNS answer carries.
    ANSWER_SIZE = 4

    #: When a country zone has fewer members than this, the pool also
    #: hands out continent-zone servers (capacity spill, as the real
    #: pool does for under-served countries).
    SPILL_THRESHOLD = 10

    def __init__(self) -> None:
        self._members: Dict[int, StratumTwoServer] = {}
        self._by_country: Dict[str, List[int]] = defaultdict(list)
        self._by_continent: Dict[str, List[int]] = defaultdict(list)
        self._all: List[int] = []
        self._cursors: Dict[str, int] = defaultdict(int)
        self._rotation_filter: Optional[Callable[[int, float], bool]] = None

    def set_rotation_filter(
        self, rotation_filter: Optional[Callable[[int, float], bool]]
    ) -> None:
        """Install the monitor's rotation gate (or remove it with ``None``).

        ``rotation_filter(address, when) -> bool`` decides whether a
        member is currently handed out by the DNS rotation — the pool's
        monitoring system ejects members whose score has fallen below
        the join threshold.  The filter only applies to time-aware
        resolution (``resolve``/``handle_dns_query`` with ``now=``);
        membership itself (:meth:`members`, :meth:`tier_members`) is
        unaffected, exactly as a monitored-but-ejected server remains a
        registered pool member.
        """
        self._rotation_filter = rotation_filter

    def join(self, server: StratumTwoServer) -> None:
        """Add a member server (the paper's 'joining the NTP Pool')."""
        if server.address in self._members:
            raise ValueError(
                f"server already in pool: {server.address:#x}"
            )
        self._members[server.address] = server
        self._all.append(server.address)
        self._by_country[server.country].append(server.address)
        continent = continent_of(server.country)
        if continent is not None:
            self._by_continent[continent].append(server.address)

    def leave(self, address: int) -> None:
        """Remove a member server."""
        server = self._members.pop(address, None)
        if server is None:
            raise KeyError(f"server not in pool: {address:#x}")
        self._all.remove(address)
        self._by_country[server.country].remove(address)
        continent = continent_of(server.country)
        if continent is not None:
            self._by_continent[continent].remove(address)

    def member(self, address: int) -> Optional[StratumTwoServer]:
        """The member server at ``address``, or ``None``."""
        return self._members.get(address)

    def members(self) -> Sequence[StratumTwoServer]:
        """All member servers in join order."""
        return [self._members[address] for address in self._all]

    def __len__(self) -> int:
        return len(self._members)

    def resolve(
        self,
        zone: TimeSource,
        client_country: str,
        count: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[int]:
        """Answer a DNS query for a pool zone from a client in a country.

        Returns up to ``count`` member addresses, preferring same-country
        members, then same-continent, then the whole pool.  Non-pool time
        sources (``time.apple.com`` …) return an empty answer: those
        queries never reach pool vantage points.

        When a rotation filter is installed (:meth:`set_rotation_filter`)
        and the query carries a time (``now=``), members the monitor has
        ejected at that instant are excluded from the answer.
        """
        if not zone.is_pool_zone:
            return []
        if count is None:
            count = self.ANSWER_SIZE
        candidates, tier = self._candidate_tier(client_country)
        if self._rotation_filter is not None and now is not None:
            candidates = [
                address
                for address in candidates
                if self._rotation_filter(address, now)
            ]
        if not candidates:
            return []
        cursor_key = f"{zone.value}/{tier}"
        start = self._cursors[cursor_key]
        self._cursors[cursor_key] = (start + count) % len(candidates)
        answer = []
        for index in range(min(count, len(candidates))):
            answer.append(candidates[(start + index) % len(candidates)])
        return answer

    def handle_dns_query(
        self,
        query_bytes: bytes,
        client_country: str,
        now: Optional[float] = None,
    ) -> Optional[bytes]:
        """Answer one wire-format DNS query (the pool's actual interface).

        The question name selects the zone; the answer carries the
        geo-selected AAAA set.  Queries for names outside ``pool.ntp.org``
        (or malformed datagrams) get no answer, as the pool's
        authoritative servers would not be asked about them.
        """
        from .client import TimeSource
        from .dns import build_response, parse_query

        try:
            query = parse_query(query_bytes)
        except ValueError:
            return None
        try:
            zone = TimeSource(query.qname)
        except ValueError:
            return None
        if not zone.is_pool_zone:
            return None
        answer = self.resolve(zone, client_country, now=now)
        return build_response(query, answer)

    def tier_members(self, client_country: str) -> Tuple[List[int], str]:
        """The candidate member list and tier name a client's DNS query
        would draw from (country, continent, or world tier).

        Exposed so capture models can compute per-country selection
        probabilities without replaying every DNS exchange.
        """
        candidates, tier = self._candidate_tier(client_country)
        return list(candidates), tier

    def _candidate_tier(self, client_country: str):
        same_country = self._by_country.get(client_country)
        continent = continent_of(client_country)
        same_continent = (
            self._by_continent.get(continent) if continent is not None else None
        )
        if same_country:
            if len(same_country) >= self.SPILL_THRESHOLD or not same_continent:
                return same_country, f"country/{client_country}"
            # Under-served country: blend in the continent zone.
            merged = list(same_country)
            for address in same_continent:
                if address not in merged:
                    merged.append(address)
            return merged, f"country+continent/{client_country}"
        if same_continent:
            return same_continent, f"continent/{continent}"
        return self._all, "world"
