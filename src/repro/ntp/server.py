"""Stratum-2 NTP server with a passive observation sink.

Each of the paper's 27 vantage points is a minimally provisioned VPS
running a stratum-2 server joined to the NTP Pool (§3).  The server here
does two jobs, exactly like the paper's:

1. **Serve time** — validate the mode-3 request and produce a correct
   mode-4 response (origin ← client transmit, receive/transmit stamped
   from the server clock).
2. **Record the client** — every valid request's source address and
   arrival time is handed to an observation sink; that stream *is* the
   raw material of the 7.9B-address corpus.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from .packet import LeapIndicator, Mode, NTPPacket, NTP_VERSION
from .timestamps import ntp_short, unix_to_ntp

__all__ = ["ServerStats", "StratumTwoServer"]

#: Observation sink signature: (client_address, unix_time, server) -> None.
ObservationSink = Callable[[int, float, "StratumTwoServer"], None]


@dataclass
class ServerStats:
    """Counters a production server would export."""

    requests: int = 0
    responses: int = 0
    malformed: int = 0
    dropped_mode: int = 0


class StratumTwoServer:
    """A stratum-2 NTP server at one vantage point.

    Parameters
    ----------
    address:
        The server's own IPv6 address (128-bit int).
    country:
        ISO country code of the hosting VPS; the NTP Pool uses this for
        geo-aware DNS answers.
    sink:
        Called once per valid client request with ``(client_address,
        unix_time, server)``.  The campaign installs its corpus recorder
        here.
    refid:
        4-byte reference identifier; defaults to an upstream stratum-1
        pseudo-identifier.
    """

    STRATUM = 2

    def __init__(
        self,
        address: int,
        country: str,
        sink: Optional[ObservationSink] = None,
        refid: bytes = b"GPS\x00",
    ) -> None:
        if len(country) != 2 or not country.isupper():
            raise ValueError(f"country must be ISO alpha-2: {country!r}")
        self.address = address
        self.country = country
        self.stats = ServerStats()
        self._sink = sink
        self._refid = refid
        self._last_sync_unix = 0.0

    def set_sink(self, sink: Optional[ObservationSink]) -> None:
        """Install or remove the observation sink."""
        self._sink = sink

    def handle_datagram(
        self, data: bytes, client_address: int, unix_time: float
    ) -> Optional[bytes]:
        """Process one inbound UDP datagram; return the response or None.

        Malformed datagrams and non-client modes are counted and dropped
        — a public pool server must never reflect garbage (NTP reflection
        was a notorious amplification vector).  *Any* parse failure is
        contained here: one bad datagram — truncated, bit-flipped, or of
        the wrong type entirely — must never kill a vantage that the
        campaign depends on for weeks of collection.
        """
        self.stats.requests += 1
        try:
            request = NTPPacket.parse(data)
        except (ValueError, struct.error, TypeError):
            self.stats.malformed += 1
            return None
        if not request.is_valid_request():
            self.stats.dropped_mode += 1
            return None
        if self._sink is not None:
            self._sink(client_address, unix_time, self)
        response = self._build_response(request, unix_time)
        self.stats.responses += 1
        return response.pack()

    def _build_response(self, request: NTPPacket, unix_time: float) -> NTPPacket:
        now = unix_to_ntp(unix_time)
        return NTPPacket(
            leap=LeapIndicator.NO_WARNING,
            version=min(request.version, NTP_VERSION),
            mode=Mode.SERVER,
            stratum=self.STRATUM,
            poll=request.poll,
            precision=-23,
            root_delay=ntp_short(0.015),
            root_dispersion=ntp_short(0.005),
            reference_id=self._refid,
            reference_timestamp=unix_to_ntp(self._reference_time(unix_time)),
            origin_timestamp=request.transmit_timestamp,
            receive_timestamp=now,
            transmit_timestamp=now,
        )

    def _reference_time(self, unix_time: float) -> float:
        # A healthy stratum-2 syncs to its upstream every ~64 s; model the
        # reference timestamp as the most recent such boundary.
        self._last_sync_unix = unix_time - (unix_time % 64.0)
        return self._last_sync_unix
