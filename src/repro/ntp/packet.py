"""NTP v4 packet wire format (RFC 5905 §7.3).

The 48-byte NTP header, packed and parsed with :mod:`struct`.  The
collection pipeline operates on real mode-3 (client) and mode-4 (server)
packets so that the vantage-point code exercises genuine
serialize/validate/respond paths rather than passing Python objects
around.

Only the header is modelled; extension fields and the MAC trailer are out
of scope (the NTP Pool's public service does not require them, and the
paper records nothing beyond source addresses and timing).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum

__all__ = ["Mode", "LeapIndicator", "NTPPacket", "PACKET_LENGTH", "NTP_VERSION"]

#: Length of the fixed NTP header in bytes.
PACKET_LENGTH = 48

#: The protocol version this library speaks.
NTP_VERSION = 4

_HEADER = struct.Struct(">BBbb II 4s QQQQ")


class Mode(IntEnum):
    """NTP association modes (RFC 5905 figure 10)."""

    RESERVED = 0
    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5
    CONTROL = 6
    PRIVATE = 7


class LeapIndicator(IntEnum):
    """Leap-second warning field."""

    NO_WARNING = 0
    LAST_MINUTE_61 = 1
    LAST_MINUTE_59 = 2
    UNSYNCHRONIZED = 3


@dataclass(frozen=True)
class NTPPacket:
    """One parsed (or to-be-serialized) NTP header.

    Timestamps are 64-bit NTP format integers (see
    :mod:`repro.ntp.timestamps`); ``root_delay`` and ``root_dispersion``
    are 32-bit NTP shorts.
    """

    leap: LeapIndicator = LeapIndicator.NO_WARNING
    version: int = NTP_VERSION
    mode: Mode = Mode.CLIENT
    stratum: int = 0
    poll: int = 6
    precision: int = -20
    root_delay: int = 0
    root_dispersion: int = 0
    reference_id: bytes = b"\x00\x00\x00\x00"
    reference_timestamp: int = 0
    origin_timestamp: int = 0
    receive_timestamp: int = 0
    transmit_timestamp: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.version <= 7:
            raise ValueError(f"bad NTP version: {self.version}")
        if not 0 <= self.stratum <= 255:
            raise ValueError(f"bad stratum: {self.stratum}")
        if not -128 <= self.poll <= 127:
            raise ValueError(f"bad poll exponent: {self.poll}")
        if not -128 <= self.precision <= 127:
            raise ValueError(f"bad precision exponent: {self.precision}")
        if len(self.reference_id) != 4:
            raise ValueError("reference_id must be exactly 4 bytes")
        for name in (
            "root_delay",
            "root_dispersion",
        ):
            value = getattr(self, name)
            if not 0 <= value < (1 << 32):
                raise ValueError(f"{name} out of range: {value}")
        for name in (
            "reference_timestamp",
            "origin_timestamp",
            "receive_timestamp",
            "transmit_timestamp",
        ):
            value = getattr(self, name)
            if not 0 <= value < (1 << 64):
                raise ValueError(f"{name} out of range: {value}")

    def pack(self) -> bytes:
        """Serialize to the 48-byte wire form."""
        first = (int(self.leap) << 6) | (self.version << 3) | int(self.mode)
        return _HEADER.pack(
            first,
            self.stratum,
            self.poll,
            self.precision,
            self.root_delay,
            self.root_dispersion,
            self.reference_id,
            self.reference_timestamp,
            self.origin_timestamp,
            self.receive_timestamp,
            self.transmit_timestamp,
        )

    @classmethod
    def parse(cls, data: bytes) -> "NTPPacket":
        """Parse the first 48 bytes of ``data`` into a packet.

        Raises ``ValueError`` for short datagrams and for non-bytes
        input — never ``struct.error`` or ``TypeError``, so serve paths
        can treat ``ValueError`` as the complete "malformed datagram"
        contract.  Extra bytes (extension fields / MAC) are ignored, as
        a tolerant server would.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValueError(
                f"datagram must be bytes-like, not {type(data).__name__}"
            )
        if len(data) < PACKET_LENGTH:
            raise ValueError(
                f"datagram too short for NTP: {len(data)} < {PACKET_LENGTH}"
            )
        (
            first,
            stratum,
            poll,
            precision,
            root_delay,
            root_dispersion,
            reference_id,
            reference_timestamp,
            origin_timestamp,
            receive_timestamp,
            transmit_timestamp,
        ) = _HEADER.unpack_from(data)
        return cls(
            leap=LeapIndicator((first >> 6) & 0x3),
            version=(first >> 3) & 0x7,
            mode=Mode(first & 0x7),
            stratum=stratum,
            poll=poll,
            precision=precision,
            root_delay=root_delay,
            root_dispersion=root_dispersion,
            reference_id=reference_id,
            reference_timestamp=reference_timestamp,
            origin_timestamp=origin_timestamp,
            receive_timestamp=receive_timestamp,
            transmit_timestamp=transmit_timestamp,
        )

    def is_valid_request(self) -> bool:
        """True for a packet a public time server should answer."""
        return self.mode is Mode.CLIENT and 1 <= self.version <= NTP_VERSION

    def with_fields(self, **overrides) -> "NTPPacket":
        """Return a copy with the given header fields replaced."""
        return replace(self, **overrides)
