"""Wired-to-wireless MAC offset inference (Rye & Beverly, IPvSeeYou).

Vendors typically assign a device's WiFi BSSID at a small fixed offset
from its wired MAC within the same OUI.  Given (a) wired MACs recovered
from EUI-64 IIDs and (b) geolocated BSSIDs from a wardriving database,
the §5.3 technique infers, per OUI, the single most common offset between
the two populations and uses it to translate wired MACs into (geolocated)
BSSIDs.

Two tallying modes are provided:

* ``exhaustive`` — record the offset of *every* (MAC, BSSID) pair in the
  OUI, exactly as the paper describes.  O(n·m) per OUI.
* ``nearest`` (default) — for each wired MAC, record offsets only to the
  ``k`` nearest BSSIDs on either side (by NIC value).  The paper notes
  the winning offset is "often, but not always, the closest match";
  nearest-k tallying finds the same mode in O((n+m) log m).

The per-OUI offset is accepted only when at least ``min_pairs`` wired
MACs had some BSSID to pair with (the paper requires 500).
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..addr.mac import mac_offset, nic_of, oui_of

__all__ = ["OUIOffset", "infer_offsets", "MIN_PAIRS"]

#: The paper's minimum wired-MAC-to-BSSID pair count per OUI.
MIN_PAIRS = 500


@dataclass(frozen=True)
class OUIOffset:
    """The inferred wired→wireless offset for one OUI."""

    oui: int
    offset: int
    support: int  # tally of the winning offset
    pairs: int    # wired MACs that had at least one same-OUI BSSID


def _offsets_nearest(
    macs: List[int], bssids: List[int], neighbors: int
) -> Counter:
    tally: Counter = Counter()
    sorted_nics = sorted(nic_of(bssid) for bssid in bssids)
    oui = oui_of(bssids[0])
    for mac in macs:
        nic = nic_of(mac)
        index = bisect.bisect_left(sorted_nics, nic)
        lo = max(0, index - neighbors)
        hi = min(len(sorted_nics), index + neighbors)
        for candidate in sorted_nics[lo:hi]:
            tally[mac_offset(mac, (oui << 24) | candidate)] += 1
    return tally


def _offsets_exhaustive(macs: List[int], bssids: List[int]) -> Counter:
    tally: Counter = Counter()
    for mac in macs:
        for bssid in bssids:
            tally[mac_offset(mac, bssid)] += 1
    return tally


def infer_offsets(
    wired_macs: Iterable[int],
    bssid_lookup,
    min_pairs: int = MIN_PAIRS,
    mode: str = "nearest",
    neighbors: int = 3,
    min_support: int = 3,
) -> Dict[int, OUIOffset]:
    """Infer the per-OUI wired→wireless offset.

    Parameters
    ----------
    wired_macs:
        MACs recovered from EUI-64 IIDs (duplicates are deduplicated).
    bssid_lookup:
        Callable ``oui -> list of BSSIDs`` (a bound
        :meth:`repro.geo.bssid_db.BSSIDDatabase.bssids_in_oui` fits).
    min_pairs:
        Minimum wired MACs with same-OUI BSSID material required before
        an OUI's offset is trusted.
    mode:
        ``"nearest"`` (default) or ``"exhaustive"`` tallying.
    neighbors:
        Nearest-mode window half-width.
    min_support:
        Minimum tally the winning offset needs.  At the paper's 500-pair
        floor the winner always has ample support; scaled-down runs need
        an explicit floor so a coincidental offset between unrelated
        MACs and background APs cannot win with a tally of one.

    Returns a mapping of OUI → :class:`OUIOffset` for accepted OUIs.
    Zero offsets are legitimate (some vendors share the MAC between
    interfaces).
    """
    if mode not in ("nearest", "exhaustive"):
        raise ValueError(f"unknown mode: {mode!r}")
    if neighbors < 1:
        raise ValueError("neighbors must be >= 1")
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    by_oui: Dict[int, set] = defaultdict(set)
    for mac in wired_macs:
        by_oui[oui_of(mac)].add(mac)

    accepted: Dict[int, OUIOffset] = {}
    for oui, macs in by_oui.items():
        bssids = bssid_lookup(oui)
        if not bssids:
            continue
        mac_list = sorted(macs)
        if len(mac_list) < min_pairs:
            continue
        if mode == "exhaustive":
            tally = _offsets_exhaustive(mac_list, bssids)
        else:
            tally = _offsets_nearest(mac_list, bssids, neighbors)
        if not tally:
            continue
        # Deterministic winner: highest support, smallest |offset| breaks
        # ties (vendor offsets are small).
        offset, support = min(
            tally.items(), key=lambda item: (-item[1], abs(item[0]), item[0])
        )
        if support < min_support:
            continue
        accepted[oui] = OUIOffset(
            oui=oui, offset=offset, support=support, pairs=len(mac_list)
        )
    return accepted
