"""End-to-end EUI-64 geolocation pipeline (paper §5.3).

Chains the pieces of the attack:

1. extract wired MACs from the corpus's EUI-64 addresses;
2. infer per-OUI wired→wireless offsets against the wardriving DB;
3. translate each wired MAC by its OUI's offset and look the resulting
   BSSID up in the database;
4. report the geolocated MACs and their country distribution.

The paper geolocates 225,354 MACs this way, 75% of them in Germany
(AVM routers); the same concentration emerges from the world model's
vendor geography.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..addr.eui64 import extract_mac
from ..addr.mac import apply_offset, oui_of
from .bssid_db import BSSIDDatabase, GeoPoint
from .offsets import MIN_PAIRS, OUIOffset, infer_offsets

__all__ = ["GeolocatedMAC", "GeolocationReport", "geolocate_corpus"]


@dataclass(frozen=True)
class GeolocatedMAC:
    """One successfully geolocated wired MAC."""

    mac: int
    bssid: int
    point: GeoPoint


@dataclass
class GeolocationReport:
    """Outcome of running the attack over a corpus."""

    eui64_addresses: int
    unique_macs: int
    offsets: Dict[int, OUIOffset]
    located: List[GeolocatedMAC] = field(default_factory=list)

    @property
    def located_count(self) -> int:
        """Number of geolocated MACs."""
        return len(self.located)

    def country_distribution(self) -> Counter:
        """Geolocated MACs per country, descending by construction order."""
        return Counter(entry.point.country for entry in self.located)

    def top_countries(self, top: int = 5) -> List[Tuple[str, float]]:
        """Top countries with their fraction of all geolocations."""
        distribution = self.country_distribution()
        total = sum(distribution.values())
        if total == 0:
            return []
        return [
            (country, count / total)
            for country, count in distribution.most_common(top)
        ]


def geolocate_corpus(
    addresses: Iterable[int],
    database: BSSIDDatabase,
    min_pairs: int = MIN_PAIRS,
    mode: str = "nearest",
) -> GeolocationReport:
    """Run the full §5.3 pipeline over a corpus of IPv6 addresses.

    ``addresses`` may contain non-EUI-64 addresses; they are skipped.
    """
    eui64_count = 0
    macs = set()
    for address in addresses:
        mac = extract_mac(address)
        if mac is None:
            continue
        eui64_count += 1
        macs.add(mac)

    offsets = infer_offsets(
        macs, database.bssids_in_oui, min_pairs=min_pairs, mode=mode
    )

    located: List[GeolocatedMAC] = []
    for mac in sorted(macs):
        inferred = offsets.get(oui_of(mac))
        if inferred is None:
            continue
        bssid = apply_offset(mac, inferred.offset)
        point = database.lookup(bssid)
        if point is not None:
            located.append(GeolocatedMAC(mac=mac, bssid=bssid, point=point))

    return GeolocationReport(
        eui64_addresses=eui64_count,
        unique_macs=len(macs),
        offsets=offsets,
        located=located,
    )
