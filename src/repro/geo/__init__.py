"""Geolocation-attack substrate (paper §5.3).

A synthetic wardriving database (:mod:`repro.geo.bssid_db`), the per-OUI
wired→wireless offset inference (:mod:`repro.geo.offsets`) and the
end-to-end EUI-64 geolocation pipeline (:mod:`repro.geo.ipvseeyou`).
"""

from .bssid_db import BSSIDDatabase, GeoPoint
from .ipvseeyou import GeolocatedMAC, GeolocationReport, geolocate_corpus
from .offsets import MIN_PAIRS, OUIOffset, infer_offsets

__all__ = [
    "BSSIDDatabase",
    "GeoPoint",
    "GeolocatedMAC",
    "GeolocationReport",
    "MIN_PAIRS",
    "OUIOffset",
    "geolocate_corpus",
    "infer_offsets",
]
