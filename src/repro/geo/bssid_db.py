"""Synthetic wardriving database: WiFi BSSID → geolocation.

Stands in for WiGLE / Apple / Google WiFi location APIs (§5.3).  The
world model inserts the BSSIDs of access points that wardrivers would
plausibly have observed (coverage varies by country; Germany's density in
the paper is what makes AVM routers so geolocatable).

Only the lookup patterns the attack needs are provided: exact BSSID
lookup and per-OUI enumeration (the offset-inference step works one OUI
at a time).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..addr.mac import MAX_MAC, oui_of

__all__ = ["GeoPoint", "BSSIDDatabase"]


@dataclass(frozen=True)
class GeoPoint:
    """A geographic coordinate with its country."""

    latitude: float
    longitude: float
    country: str

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")
        if len(self.country) != 2 or not self.country.isupper():
            raise ValueError(f"country must be ISO alpha-2: {self.country!r}")


class BSSIDDatabase:
    """BSSID → :class:`GeoPoint` store with per-OUI indexing."""

    def __init__(self) -> None:
        self._points: Dict[int, GeoPoint] = {}
        self._by_oui: Dict[int, List[int]] = defaultdict(list)

    def add(self, bssid: int, point: GeoPoint) -> None:
        """Record an observed access point.

        Re-adding a BSSID updates its location (as a fresher wardriving
        observation would).
        """
        if not 0 <= bssid <= MAX_MAC:
            raise ValueError(f"BSSID out of range: {bssid}")
        if bssid not in self._points:
            self._by_oui[oui_of(bssid)].append(bssid)
        self._points[bssid] = point

    def lookup(self, bssid: int) -> Optional[GeoPoint]:
        """Location of a BSSID, or ``None`` when never observed."""
        return self._points.get(bssid)

    def bssids_in_oui(self, oui: int) -> List[int]:
        """All observed BSSIDs whose OUI matches, unsorted."""
        return list(self._by_oui.get(oui & 0xFFFFFF, ()))

    def ouis(self) -> Iterator[int]:
        """All OUIs with at least one observed BSSID."""
        return iter(self._by_oui)

    def items(self) -> Iterator[Tuple[int, GeoPoint]]:
        """All ``(bssid, point)`` pairs."""
        return iter(self._points.items())

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, bssid: int) -> bool:
        return bssid in self._points
