"""Passive outage detection from NTP observation time series.

One of the applications the paper cites for live-address knowledge
(§2.1, citing Enayet & Heidemann's DNS-backscatter work): a stream of
passive sightings doubles as an availability signal — when an AS's
clients suddenly stop appearing at the vantages, the AS is likely dark.

:class:`ASActivityRecorder` plugs into the campaign's ``extra_sinks`` and
tallies observations per (AS, day); :func:`detect_outages` flags runs of
days whose activity collapses below a fraction of the AS's median.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..world.clock import DAY

__all__ = ["ASActivityRecorder", "OutageEvent", "detect_outages"]


class ASActivityRecorder:
    """Per-(AS, day) observation counter fed by the campaign."""

    def __init__(
        self,
        origin: Callable[[int], Optional[int]],
        epoch: float,
    ) -> None:
        self._origin = origin
        self._epoch = epoch
        self._counts: Dict[int, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def __call__(self, client_address: int, when: float) -> None:
        """Record one observation (the campaign sink signature)."""
        asn = self._origin(client_address)
        if asn is None:
            return
        day = int((when - self._epoch) // DAY)
        self._counts[asn][day] += 1

    def series(self, asn: int, days: int) -> List[int]:
        """The daily observation counts of an AS over ``days`` days."""
        counts = self._counts.get(asn, {})
        return [counts.get(day, 0) for day in range(days)]

    def ases(self) -> List[int]:
        """All ASes with any recorded activity."""
        return sorted(self._counts)


@dataclass(frozen=True)
class OutageEvent:
    """A detected whole-AS connectivity loss."""

    asn: int
    start_day: int
    end_day: int  # exclusive
    baseline: float
    depth: float  # mean activity inside the event / baseline

    @property
    def duration_days(self) -> int:
        """Length of the event in days."""
        return self.end_day - self.start_day


def detect_outages(
    recorder: ASActivityRecorder,
    days: int,
    threshold: float = 0.2,
    min_baseline: float = 5.0,
    min_duration: int = 2,
) -> List[OutageEvent]:
    """Find collapse-below-baseline runs in every AS's activity series.

    Parameters
    ----------
    recorder:
        The filled activity recorder.
    days:
        Length of the observation window in days.
    threshold:
        A day is dark when its count <= ``threshold * median``.
    min_baseline:
        ASes whose median daily activity is below this are skipped — a
        handful of sightings per day cannot distinguish an outage from
        sampling noise (exactly why the paper wants *large* hitlists for
        this application).
    min_duration:
        Minimum consecutive dark days to report an event.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    if min_duration < 1:
        raise ValueError("min_duration must be >= 1")
    events: List[OutageEvent] = []
    for asn in recorder.ases():
        series = recorder.series(asn, days)
        ordered = sorted(series)
        median = float(ordered[len(ordered) // 2])
        if median < min_baseline:
            continue
        dark_run: List[Tuple[int, int]] = []
        run_start: Optional[int] = None
        for day, count in enumerate(series):
            if count <= threshold * median:
                if run_start is None:
                    run_start = day
            else:
                if run_start is not None:
                    dark_run.append((run_start, day))
                    run_start = None
        if run_start is not None:
            dark_run.append((run_start, days))
        for start, end in dark_run:
            if end - start < min_duration:
                continue
            inside = series[start:end]
            depth = (sum(inside) / len(inside)) / median if median else 0.0
            events.append(
                OutageEvent(
                    asn=asn,
                    start_day=start,
                    end_day=end,
                    baseline=median,
                    depth=depth,
                )
            )
    return events
