"""The passive NTP collection campaign (the paper's core methodology).

Reproduces §3's setup: 27 stratum-2 servers joined to the NTP Pool from
20 countries, collecting the source address of every NTP request for 31
weeks.  The pool also contains *background* members (the real pool has
thousands of volunteer servers); a client's query only lands on one of
our vantages when the pool's geo DNS hands it out — which is exactly why
most client addresses are observed only once (Fig. 2a).

Two layers:

* :class:`CaptureModel` — collapses the per-query DNS round-robin into a
  per-country capture probability plus a vantage chooser, computed from
  the *actual* pool membership, so the hot loop does not replay millions
  of DNS exchanges.
* :class:`NTPCampaign` — walks devices × days, samples captured queries,
  and pushes each captured query through the real mode-3/mode-4 packet
  path of the vantage server, whose sink records into the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..addr.ipv6 import format_address
from ..faults.injector import FaultInjector
from ..faults.monitor import AvailabilityTimeline
from ..faults.plan import FaultPlan
from ..ntp.client import TimeSource, build_request
from ..obs import MetricsRegistry
from ..ntp.packet import NTPPacket
from ..ntp.pool import NTPPool
from ..ntp.server import StratumTwoServer
from ..world.clock import DAY, WEEK
from ..world.rng import split_rng
from ..world.world import VantagePoint, World
from .corpus import AddressCorpus

__all__ = ["CampaignConfig", "CaptureModel", "NTPCampaign"]


@dataclass
class CampaignConfig:
    """Knobs of the collection campaign."""

    start: float
    weeks: int = 31
    seed: int = 0
    #: Background pool members per country that has any member at all.
    background_per_country: int = 3
    #: Extra background members spread across big pool countries.
    background_extra: int = 20
    #: Use the full NTP packet path per captured query (the honest mode);
    #: False skips serialization and records directly (ablation bench).
    full_packet_path: bool = True
    #: Injected-fault schedule; ``None`` (or a zero plan) keeps every
    #: code path byte-identical to a fault-free campaign.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.weeks < 1:
            raise ValueError("campaign needs at least one week")
        if self.background_per_country < 0 or self.background_extra < 0:
            raise ValueError("background counts must be non-negative")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, not {type(self.faults).__name__}"
            )

    @property
    def end(self) -> float:
        """One past the campaign's last instant."""
        return self.start + self.weeks * WEEK


#: Background volunteer-server counts per country.  The real pool's
#: membership is extremely skewed toward North America and Europe; a
#: vantage in a server-rich country therefore captures a *smaller* share
#: of local queries than one in a server-poor country — which is exactly
#: why the paper's corpus is dominated by India, China, Brazil and
#: Indonesia despite most vantages sitting in the US/EU.
_BACKGROUND_POOL_SIZES = {
    "US": 40, "DE": 25, "GB": 15, "FR": 15, "NL": 12, "SE": 10,
    "PL": 8, "ES": 8, "JP": 10, "AU": 8, "KR": 6, "SG": 5, "TW": 5,
    "HK": 4, "CN": 6, "IN": 3, "BR": 4, "ID": 3, "MX": 4, "ZA": 4,
    "BG": 4, "BH": 3,
}

#: Countries that host disproportionately many volunteer pool servers.
_BIG_POOL_COUNTRIES = ("US", "DE", "GB", "FR", "NL", "JP", "CN", "IN", "BR", "AU")

#: Reserved (unrouted) space background pool members are numbered from.
_BACKGROUND_BASE = 0x2C00 << 112


class CaptureModel:
    """Per-country capture probability against a concrete pool.

    For a client in country C, the pool answers from a tier (country /
    continent / world).  The client picks one record; the chance that
    record is one of our vantages is ``vantages_in_tier / tier_size``.
    """

    def __init__(self, pool: NTPPool, vantage_addresses: List[int]) -> None:
        self._pool = pool
        self._vantages = set(vantage_addresses)
        self._cache: Dict[str, Tuple[float, List[int]]] = {}

    def capture(self, country: str) -> Tuple[float, List[int]]:
        """(probability, eligible vantage addresses) for a client country."""
        cached = self._cache.get(country)
        if cached is not None:
            return cached
        members, _tier = self._pool.tier_members(country)
        if not members:
            result = (0.0, [])
        else:
            ours = [address for address in members if address in self._vantages]
            result = (len(ours) / len(members), ours)
        self._cache[country] = result
        return result


class NTPCampaign:
    """Run the passive collection and produce the NTP corpus."""

    def __init__(
        self,
        world: World,
        config: CampaignConfig,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not world.vantages:
            raise ValueError("world has no vantage points")
        self.world = world
        self.config = config
        self.corpus = AddressCorpus("ntp-pool")
        self.pool = NTPPool()
        self.servers: Dict[int, StratumTwoServer] = {}
        #: Extra per-observation callbacks ``(client_address, when)`` —
        #: e.g. the outage detector's activity recorder.
        self.extra_sinks: List = []
        #: Per-shard failure records appended by the parallel executor.
        self.shard_failures: List = []
        #: Telemetry sink.  Recording never touches the keyed RNG, so a
        #: campaign with a live registry stays bit-identical to one with
        #: ``NULL_REGISTRY`` (pinned by tests/core/test_metrics_determinism).
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._m_queries = self.metrics.counter(
            "repro_campaign_queries_total",
            "pool-client NTP queries evaluated by the capture model",
        )
        self._m_captured = self.metrics.counter(
            "repro_campaign_captured_total",
            "queries the geo-DNS round-robin landed on one of our vantages",
        )
        self._m_observations = self.metrics.counter(
            "repro_campaign_observations_total",
            "observations recorded into the corpus",
        )
        self._m_vantage_obs: Dict[int, object] = {}
        self._outages_active = bool(world.outages)
        plan = config.faults
        if plan is not None and plan.is_zero:
            plan = None  # zero plan takes the exact fault-free fast path
        self._injector: Optional[FaultInjector] = (
            None
            if plan is None
            else FaultInjector(
                plan, world.vantages, config.start, config.end,
                metrics=self.metrics,
            )
        )
        self._build_pool()
        if self._injector is not None:
            # DNS-level view of the same ejections the capture path
            # applies: time-aware resolve() skips out-of-rotation members.
            self.pool.set_rotation_filter(self._injector.in_rotation)
        self._capture_model = CaptureModel(
            self.pool, [vantage.address for vantage in world.vantages]
        )

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The live injector, or None on the fault-free fast path.

        Exposed so collaborators outside the capture loop (the segment
        store's write-fault hook, study reports) can consult the same
        keyed decisions without reaching into campaign internals.
        """
        return self._injector

    # -- pool assembly -----------------------------------------------------------

    def _record_observation(
        self, client_address: int, when: float, server: StratumTwoServer
    ) -> None:
        self.corpus.record(client_address, when)
        self._m_observations.inc()
        counter = self._m_vantage_obs.get(server.address)
        if counter is not None:
            counter.inc()
        for sink in self.extra_sinks:
            sink(client_address, when)

    def _build_pool(self) -> None:
        """Join our 27 vantages plus synthetic background members."""
        for vantage in self.world.vantages:
            server = StratumTwoServer(
                vantage.address, vantage.country, sink=self._record_observation
            )
            self.servers[vantage.address] = server
            self.pool.join(server)
            # Per-vantage capture-rate telemetry (the paper's weekly
            # per-vantage capture report, §3).
            self._m_vantage_obs[vantage.address] = self.metrics.counter(
                "repro_campaign_vantage_observations_total",
                "observations recorded, per vantage",
                labels={
                    "vantage": format_address(vantage.address),
                    "country": vantage.country,
                },
            )
        # Background volunteers: plain members with no sink.  Their
        # addresses come from reserved space; only their country matters.
        index = 0
        config = self.config
        countries = list(
            dict.fromkeys(
                [vantage.country for vantage in self.world.vantages]
                + list(_BIG_POOL_COUNTRIES)
            )
        )
        for country in countries:
            count = _BACKGROUND_POOL_SIZES.get(
                country, config.background_per_country
            )
            for _ in range(count):
                self.pool.join(
                    StratumTwoServer(_BACKGROUND_BASE | index, country)
                )
                index += 1
        for extra in range(config.background_extra):
            country = _BIG_POOL_COUNTRIES[extra % len(_BIG_POOL_COUNTRIES)]
            self.pool.join(StratumTwoServer(_BACKGROUND_BASE | index, country))
            index += 1

    # -- collection ---------------------------------------------------------------

    def run(
        self,
        start_week: int = 0,
        end_week: Optional[int] = None,
        *,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> AddressCorpus:
        """Collect observations for weeks ``[start_week, end_week)``.

        Calling repeatedly with adjacent windows accumulates into the
        same corpus, so studies can interleave collection with other
        campaign events.

        ``shard_index``/``shard_count`` restrict the walk to every
        ``shard_count``-th pool client (by position in the stable
        ``pool_client_devices`` order).  Because every capture decision
        draws from ``split_rng(seed, "capture", device_id, day)``, a
        device's outcomes are independent of which other devices ran, so
        merging the corpora of all shards reproduces the unsharded run
        exactly — this is what :func:`repro.core.parallel.run_campaign_parallel`
        builds on.
        """
        config = self.config
        if end_week is None:
            end_week = config.weeks
        if not 0 <= start_week < end_week <= config.weeks:
            raise ValueError(f"bad week window: [{start_week}, {end_week})")
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(
                f"bad shard: index {shard_index} of {shard_count}"
            )
        first_day = start_week * 7
        last_day = end_week * 7
        with self.metrics.span("ntp-collect"):
            for position, device in enumerate(self.world.pool_client_devices()):
                if position % shard_count != shard_index:
                    continue
                for day in range(first_day, last_day):
                    self._collect_device_day(device, day)
        return self.corpus

    def _collect_device_day(self, device, day: int) -> None:
        offsets = device.query_offsets_on(day)
        if not offsets:
            return
        config = self.config
        day_start = config.start + day * DAY
        rng = None
        self._m_queries.inc(len(offsets))
        for query_index, offset in enumerate(offsets):
            when = day_start + offset
            network = self.world.networks.get(device.current_network_id(when))
            if network is None:
                continue
            if self._outages_active and self.world.in_outage(
                network.asn, when
            ):
                continue
            probability, vantages = self._capture_model.capture(network.country)
            if probability <= 0.0:
                continue
            if rng is None:
                rng = split_rng(config.seed, "capture", device.device_id, day)
            if rng.random() >= probability:
                continue
            self._m_captured.inc()
            vantage_address = vantages[rng.randrange(len(vantages))]
            delivered, datagram = self._fault_gate(
                device.device_id, day, query_index, when,
                network.country, vantage_address,
            )
            if not delivered:
                continue
            client_address = network.device_address(device, when)
            if datagram is None:
                # Clean path: keep the historical 3-argument call shape
                # (tests and subclasses wrap `_deliver` with it).
                self._deliver(client_address, when, vantage_address)
            else:
                self._deliver(
                    client_address, when, vantage_address, datagram
                )

    def _fault_gate(
        self,
        device_id: int,
        day: int,
        query_index: int,
        when: float,
        country: str,
        vantage_address: int,
    ) -> Tuple[bool, Optional[bytes]]:
        """Apply the fault plan to one captured query.

        Returns ``(delivered, datagram)``: ``delivered`` is False when
        the query never reaches a recording vantage (ejected from the
        pool rotation, or the datagram was lost); a non-``None``
        ``datagram`` is the corrupted wire form the vantage must parse
        (only in full-packet-path mode).  All decisions are keyed by the
        query's identity, so :meth:`run` and
        :meth:`captured_events_on_day` observe identical faults.
        """
        injector = self._injector
        if injector is None:
            return True, None
        if injector.ejects(vantage_address, when):
            # Ejected from the DNS rotation: the pool hands the client a
            # background member instead, so the vantage captures nothing.
            return False, None
        if injector.packet_lost(country, device_id, day, query_index):
            return False, None
        if not injector.corrupts(device_id, day, query_index):
            return True, None
        if not self.config.full_packet_path:
            # Ablation mode has no wire bytes to mangle; approximate a
            # corrupted datagram as never recorded.
            return False, None
        datagram = injector.corrupt_bytes(
            build_request(when).pack(), device_id, day, query_index
        )
        return True, datagram

    def _deliver(
        self,
        client_address: int,
        when: float,
        vantage_address: int,
        datagram: Optional[bytes] = None,
    ) -> None:
        server = self.servers[vantage_address]
        if self.config.full_packet_path:
            corrupted = datagram is not None
            if datagram is None:
                datagram = build_request(when).pack()
            response = server.handle_datagram(datagram, client_address, when)
            # A well-formed request must always be answered; a corrupted
            # one is the server's call (counted in stats.malformed /
            # dropped_mode) and must never raise out of the hot loop.
            assert corrupted or response is not None
        else:
            # Ablation mode: skip serialization, record directly.
            self._record_observation(client_address, when, server)

    # -- capture events for other campaigns (backscanning) -------------------------

    def captured_events_on_day(
        self, day: int, vantage_addresses: Optional[List[int]] = None
    ):
        """Yield ``(when, client_address, vantage_address)`` for one day.

        Re-derives the same capture decisions :meth:`run` makes (the
        keyed RNG guarantees identical outcomes) — including the fault
        plan's drops: an event is yielded only if the vantage actually
        recorded the query, so a campaign rebuilt from these events
        matches the collected corpus under any plan.  Optionally
        filtered to a subset of vantages — used by the backscanning
        experiment, which watched five of the 27 servers (§3).
        """
        config = self.config
        vantage_filter = (
            None if vantage_addresses is None else set(vantage_addresses)
        )
        day_start = config.start + day * DAY
        for device in self.world.pool_client_devices():
            offsets = device.query_offsets_on(day)
            if not offsets:
                continue
            rng = None
            for query_index, offset in enumerate(offsets):
                when = day_start + offset
                network = self.world.networks.get(
                    device.current_network_id(when)
                )
                if network is None:
                    continue
                if self._outages_active and self.world.in_outage(
                    network.asn, when
                ):
                    continue
                probability, vantages = self._capture_model.capture(
                    network.country
                )
                if probability <= 0.0:
                    continue
                if rng is None:
                    rng = split_rng(
                        config.seed, "capture", device.device_id, day
                    )
                if rng.random() >= probability:
                    continue
                vantage_address = vantages[rng.randrange(len(vantages))]
                delivered, datagram = self._fault_gate(
                    device.device_id, day, query_index, when,
                    network.country, vantage_address,
                )
                if not delivered:
                    continue
                if datagram is not None and not self._records(datagram):
                    continue
                if vantage_filter is not None and (
                    vantage_address not in vantage_filter
                ):
                    continue
                client_address = network.device_address(device, when)
                yield when, client_address, vantage_address

    @staticmethod
    def _records(datagram: bytes) -> bool:
        """Would a vantage's serve path record this (corrupted) datagram?

        Mirrors :meth:`StratumTwoServer.handle_datagram`: the sink fires
        only for parseable, valid client-mode requests.
        """
        try:
            packet = NTPPacket.parse(datagram)
        except ValueError:
            return False
        return packet.is_valid_request()

    # -- substrate health ----------------------------------------------------------

    def vantage_availability(
        self,
    ) -> List[Tuple[VantagePoint, AvailabilityTimeline]]:
        """Per-vantage in-rotation timelines over the campaign span.

        Without a fault plan every vantage is available for the whole
        span; with one, the timelines come from the pool-monitor score
        model.  Deterministic, so the study report can render them even
        when collection ran in worker processes.
        """
        config = self.config
        if self._injector is None:
            full = AvailabilityTimeline(
                config.start, config.end, ((config.start, config.end),)
            )
            return [(vantage, full) for vantage in self.world.vantages]
        timelines = self._injector.availability()
        return [
            (vantage, timelines[vantage.address])
            for vantage in self.world.vantages
        ]
