"""Dataset comparison — the Table 1 axes.

Compares the passive NTP corpus with the active comparison datasets on
every axis Table 1 reports: address counts, overlap ("Common"), origin-AS
counts and overlap, /48 counts and overlap, and address density per /48.
Also computes the §4.1 side results: AS-category composition (the
phone-provider share) and the country histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.tables import format_table
from ..net.asn import ASRegistry
from .corpus import AddressCorpus

__all__ = ["DatasetRow", "DatasetComparison", "compare_datasets"]


@dataclass(frozen=True)
class DatasetRow:
    """One row of the Table 1 comparison."""

    name: str
    addresses: int
    common_addresses: Optional[int]
    asns: int
    common_asns: Optional[int]
    slash48s: int
    common_slash48s: Optional[int]
    avg_addresses_per_48: float


class DatasetComparison:
    """The assembled comparison, with the reference corpus first."""

    def __init__(self, rows: List[DatasetRow]) -> None:
        if not rows:
            raise ValueError("comparison needs at least one dataset")
        self.rows = rows

    @property
    def reference(self) -> DatasetRow:
        """The reference (NTP) dataset row."""
        return self.rows[0]

    def size_ratio(self, name: str) -> float:
        """Reference size divided by a comparison dataset's size.

        The paper's headline "370x the Hitlist / 681x CAIDA" numbers.
        """
        row = self._row(name)
        if row.addresses == 0:
            raise ValueError(f"dataset {name!r} is empty")
        return self.reference.addresses / row.addresses

    def overlap_fraction(self, name: str) -> float:
        """Fraction of a comparison dataset also present in the reference.

        The paper finds only 1.3% of the Hitlist and 0.02% of CAIDA in
        the NTP corpus — the datasets are nearly disjoint.
        """
        row = self._row(name)
        if row.addresses == 0:
            raise ValueError(f"dataset {name!r} is empty")
        if row.common_addresses is None:
            raise ValueError(f"dataset {name!r} has no overlap data")
        return row.common_addresses / row.addresses

    def _row(self, name: str) -> DatasetRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no dataset named {name!r}")

    def render(self) -> str:
        """Render as the paper's Table 1 layout."""
        headers = [
            "Dataset", "Addresses", "Common", "ASNs", "Common",
            "/48s", "Common", "Avg/48",
        ]
        rows = []
        for row in self.rows:
            rows.append([
                row.name,
                row.addresses,
                row.common_addresses,
                row.asns,
                row.common_asns,
                row.slash48s,
                row.common_slash48s,
                round(row.avg_addresses_per_48, 1),
            ])
        return format_table(
            headers, rows,
            title="Table 1: comparison of IPv6 datasets "
                  "(Common = intersection with the NTP corpus)",
        )


def _aggregates(
    corpus: AddressCorpus, origin: Callable[[int], Optional[int]]
):
    """(origin-AS set, /48 set) — from the columnar index when attached.

    The index's sets are memoized and shared; they are only read here
    (intersections and ``len``), never mutated.
    """
    index = getattr(corpus, "index", None)
    if index is not None:
        return index.asn_set(origin), index.slash48_set()
    return corpus.asn_set(origin), corpus.slash48_set()


def _build_row(
    corpus: AddressCorpus,
    origin: Callable[[int], Optional[int]],
    reference: Optional[AddressCorpus],
    reference_asns: Optional[set],
    reference_48s: Optional[set],
) -> DatasetRow:
    asns, slash48s = _aggregates(corpus, origin)
    if reference is None:
        common = common_asns = common_48s = None
    else:
        common = len(corpus.common_addresses(reference))
        common_asns = len(asns & reference_asns)
        common_48s = len(slash48s & reference_48s)
    return DatasetRow(
        name=corpus.name,
        addresses=len(corpus),
        common_addresses=common,
        asns=len(asns),
        common_asns=common_asns,
        slash48s=len(slash48s),
        common_slash48s=common_48s,
        avg_addresses_per_48=len(corpus) / len(slash48s) if slash48s else 0.0,
    )


def compare_datasets(
    reference: AddressCorpus,
    others: Sequence[AddressCorpus],
    origin: Callable[[int], Optional[int]],
) -> DatasetComparison:
    """Assemble the Table 1 comparison.

    ``reference`` is the NTP corpus; ``others`` are the active datasets.
    ``origin`` maps an address to its origin ASN.
    """
    reference_asns, reference_48s = _aggregates(reference, origin)
    rows = [_build_row(reference, origin, None, None, None)]
    for corpus in others:
        rows.append(
            _build_row(corpus, origin, reference, reference_asns, reference_48s)
        )
    return DatasetComparison(rows)


def phone_provider_shares(
    corpora: Sequence[AddressCorpus],
    registry: ASRegistry,
    origin: Callable[[int], Optional[int]],
) -> Dict[str, float]:
    """Phone-provider AS address share per dataset (§4.1).

    The paper: 14% of the NTP corpus vs 2% of the Hitlist originates in
    "Phone Provider" ASes.
    """
    shares = {}
    for corpus in corpora:
        index = getattr(corpus, "index", None)
        if index is not None:
            # Weight the per-AS address counts (one memoized origin
            # resolution per distinct /64) instead of streaming one
            # origin lookup per address.
            counts = index.asn_counts(origin)
            total = sum(counts.values())
            if total == 0:
                raise ValueError(
                    "cannot compute a fraction of zero addresses"
                )
            phone = 0
            for asn, count in counts.items():
                if asn is None:
                    continue
                record = registry.lookup(asn)
                if record is not None and record.is_phone_provider:
                    phone += count
            shares[corpus.name] = phone / total
        else:
            shares[corpus.name] = registry.phone_provider_fraction(
                origin(address) for address in corpus.addresses()
            )
    return shares
