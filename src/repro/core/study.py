"""Full-study orchestration: all three datasets over one world.

Runs the campaigns with the paper's relative timing (§3):

* **NTP collection** — weeks 0–31 (25 Jan → 31 Aug 2022);
* **IPv6 Hitlist** — weekly snapshots from week 3 (16 Feb) to week 31;
* **CAIDA routed /48** — weeks 1–10 (3 Feb → 6 Apr).

Returns the three corpora plus the service objects experiments interrogate
(the Hitlist's alias list, the campaign for backscanning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..faults.plan import FaultPlan
from ..obs import MetricsRegistry
from ..scan.caida import CAIDACampaign
from ..scan.hitlist_service import HitlistService
from ..world.clock import WEEK
from ..world.world import World
from .campaign import CampaignConfig, NTPCampaign
from .corpus import AddressCorpus
from .index import CachedOrigins, CorpusIndex
from .parallel import run_campaign_parallel

__all__ = ["StudyConfig", "StudyResults", "run_study"]

#: Week offsets of the comparison campaigns within the study (§3).
HITLIST_FIRST_WEEK = 3
CAIDA_FIRST_WEEK = 1
CAIDA_LAST_WEEK = 10


@dataclass
class StudyConfig:
    """Scale and seeding of a full study run."""

    start: float
    weeks: int = 31
    seed: int = 0
    hitlist_seed_fraction: float = 0.5
    hitlist_cpe_seed_fraction: float = 0.55
    caida_cycle_days: float = 14.0
    full_packet_path: bool = True
    #: Worker processes for the NTP collection; 1 keeps the serial path.
    workers: int = 1
    #: Path the NTP campaign snapshots atomically after each completed
    #: week window (and resumes from via ``resume_from``).
    checkpoint: Optional[str] = None
    checkpoint_interval_weeks: int = 1
    #: Previous checkpoint to resume the NTP collection from.
    resume_from: Optional[str] = None
    #: Fault-injection plan threaded into the NTP collection; ``None``
    #: (or a zero plan) keeps the fault-free behaviour byte-identical.
    faults: Optional[FaultPlan] = None
    #: Failed shards are resubmitted this many times before degrading
    #: to inline execution.
    max_shard_retries: int = 2
    #: Build one columnar :class:`CorpusIndex` per corpus after the
    #: campaigns finish; every downstream analysis then reads shared
    #: columns instead of re-scanning the corpora.
    build_index: bool = True

    def __post_init__(self) -> None:
        if self.weeks < CAIDA_LAST_WEEK:
            raise ValueError(
                f"study must span at least {CAIDA_LAST_WEEK} weeks"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0: {self.max_shard_retries}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, not {type(self.faults).__name__}"
            )


@dataclass
class StudyResults:
    """Everything a full study produces."""

    ntp: AddressCorpus
    hitlist: AddressCorpus
    caida: AddressCorpus
    campaign: NTPCampaign
    hitlist_service: HitlistService
    caida_campaign: CAIDACampaign
    #: The study's shared /64-memoized origin resolver (``None`` when
    #: indexing was disabled); analyses should prefer it over the
    #: world's raw per-address LPM lookup.
    origins: Optional[CachedOrigins] = None
    #: The study-wide telemetry registry: every stage span, campaign
    #: counter and fault counter recorded while the study ran.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds per recorded stage span, in execution
        order (the ``--profile`` dump) — a view over :attr:`metrics`."""
        return self.metrics.span_seconds()

    def corpora(self):
        """The three datasets in the paper's Table 1 order."""
        return [self.ntp, self.hitlist, self.caida]

    def index_for(self, name: str) -> Optional[CorpusIndex]:
        """The columnar index of the corpus called ``name``, if built."""
        for corpus in self.corpora():
            if corpus.name == name:
                return corpus.index
        raise KeyError(f"no dataset named {name!r}")


def run_study(
    world: World,
    config: StudyConfig,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> StudyResults:
    """Run all three campaigns against one world, then index the corpora.

    All stages share one :class:`MetricsRegistry` (a fresh one unless
    ``metrics`` is given); telemetry never feeds back into any keyed-RNG
    decision, so a metered study is bit-identical to an unmetered one.
    """
    registry = MetricsRegistry() if metrics is None else metrics
    campaign = NTPCampaign(
        world,
        CampaignConfig(
            start=config.start,
            weeks=config.weeks,
            seed=config.seed,
            full_packet_path=config.full_packet_path,
            faults=config.faults,
        ),
        metrics=registry,
    )
    with registry.span("ntp-collection"):
        if config.workers > 1 or config.checkpoint or config.resume_from:
            ntp_corpus = run_campaign_parallel(
                campaign,
                workers=config.workers,
                checkpoint=config.checkpoint,
                checkpoint_interval_weeks=config.checkpoint_interval_weeks,
                resume_from=config.resume_from,
                max_shard_retries=config.max_shard_retries,
            )
        else:
            ntp_corpus = campaign.run()

    vantage_asns = sorted({vantage.asn for vantage in world.vantages})
    hitlist_service = HitlistService(
        world,
        vantage_asns[0],
        seed_fraction=config.hitlist_seed_fraction,
        cpe_seed_fraction=config.hitlist_cpe_seed_fraction,
        seed=config.seed + 1,
        metrics=registry,
    )
    with registry.span("hitlist-snapshots"):
        hitlist_history = hitlist_service.run(
            config.start + HITLIST_FIRST_WEEK * WEEK,
            config.weeks - HITLIST_FIRST_WEEK,
        )
    hitlist_corpus = AddressCorpus.from_history("ipv6-hitlist", hitlist_history)

    caida_campaign = CAIDACampaign(world, vantage_asns, seed=config.seed + 2)
    with registry.span("caida-routed-48"):
        caida_history = caida_campaign.run(
            config.start + CAIDA_FIRST_WEEK * WEEK,
            config.start + CAIDA_LAST_WEEK * WEEK,
            cycle_days=config.caida_cycle_days,
        )
    caida_corpus = AddressCorpus.from_history("caida-routed-48", caida_history)

    origins: Optional[CachedOrigins] = None
    if config.build_index:
        with registry.span("corpus-index"):
            origins = CachedOrigins.from_world(world)
            for corpus in (ntp_corpus, hitlist_corpus, caida_corpus):
                corpus.build_index(origins)

    return StudyResults(
        ntp=ntp_corpus,
        hitlist=hitlist_corpus,
        caida=caida_corpus,
        campaign=campaign,
        hitlist_service=hitlist_service,
        caida_campaign=caida_campaign,
        origins=origins,
        metrics=registry,
    )
