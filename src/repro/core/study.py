"""Full-study orchestration: all three datasets over one world.

Runs the campaigns with the paper's relative timing (§3):

* **NTP collection** — weeks 0–31 (25 Jan → 31 Aug 2022);
* **IPv6 Hitlist** — weekly snapshots from week 3 (16 Feb) to week 31;
* **CAIDA routed /48** — weeks 1–10 (3 Feb → 6 Apr).

Returns the three corpora plus the service objects experiments interrogate
(the Hitlist's alias list, the campaign for backscanning).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from ..faults.plan import FaultPlan
from ..obs import MetricsRegistry
from ..scan.caida import CAIDACampaign
from ..scan.hitlist_service import HitlistService
from ..world.clock import WEEK
from ..world.world import World
from .campaign import CampaignConfig, NTPCampaign
from .corpus import AddressCorpus
from .index import CachedOrigins, CorpusIndex
from .parallel import run_campaign_parallel
from .segments import DEFAULT_SEGMENT_BYTES, SegmentStore

__all__ = ["ExecutionOptions", "StudyConfig", "StudyResults", "run_study"]

#: Week offsets of the comparison campaigns within the study (§3).
HITLIST_FIRST_WEEK = 3
CAIDA_FIRST_WEEK = 1
CAIDA_LAST_WEEK = 10


@dataclass
class ExecutionOptions:
    """How a study *executes* — everything orthogonal to the science.

    Scale-out, persistence, resume, fault injection, indexing and
    telemetry live here, in one value, so :class:`StudyConfig` keeps
    only what changes the simulated world's observations.  Two
    persistence modes are available and mutually exclusive:
    whole-corpus ``checkpoint`` snapshots, or a streaming
    ``segment_dir`` store whose memory footprint is bounded by
    ``segment_bytes`` however long the campaign runs.
    """

    #: Worker processes for the NTP collection; 1 keeps the serial path.
    workers: int = 1
    #: Path the NTP campaign snapshots atomically after each completed
    #: week window (and resumes from via ``resume_from``).
    checkpoint: Optional[str] = None
    checkpoint_interval_weeks: int = 1
    #: Previous checkpoint to resume the NTP collection from.
    resume_from: Optional[str] = None
    #: Segment-store directory: collection streams sealed segment files
    #: there instead of accumulating one monolithic in-memory corpus.
    segment_dir: Optional[str] = None
    #: Flush budget — a buffer is sealed into a segment file once its
    #: estimated serialized size crosses this many bytes.
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: Continue a segmented campaign from its committed manifest.
    resume_from_segments: bool = False
    #: Fault-injection plan threaded into the NTP collection; ``None``
    #: (or a zero plan) keeps the fault-free behaviour byte-identical.
    faults: Optional[FaultPlan] = None
    #: Failed shards are resubmitted this many times before degrading
    #: to inline execution.
    max_shard_retries: int = 2
    #: Wall-clock seconds one round of shard submissions may take
    #: before hung workers are killed and the shards retried (``None``
    #: disables the deadline).
    shard_timeout: Optional[float] = None
    #: Build one columnar :class:`CorpusIndex` per corpus after the
    #: campaigns finish; every downstream analysis then reads shared
    #: columns instead of re-scanning the corpora.
    build_index: bool = True
    #: Telemetry registry shared by every study stage (a fresh one is
    #: created per run when ``None``).
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0: {self.max_shard_retries}"
            )
        if self.segment_bytes < 1:
            raise ValueError(
                f"segment byte budget must be >= 1: {self.segment_bytes}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0: {self.shard_timeout}"
            )
        if self.checkpoint is not None and self.segment_dir is not None:
            raise ValueError(
                "checkpoint= and segment_dir= are mutually exclusive "
                "persistence modes"
            )
        if self.resume_from_segments and self.segment_dir is None:
            raise ValueError("resume_from_segments=True needs a segment_dir")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, not {type(self.faults).__name__}"
            )


#: Names StudyConfig/run_study accept as deprecated loose keywords.
_EXECUTION_FIELDS = tuple(
    spec.name for spec in fields(ExecutionOptions)
)

_legacy_kwargs_warned = False


def _warn_legacy_execution_kwargs(names, where: str) -> None:
    """One :class:`DeprecationWarning` per process, then silence."""
    global _legacy_kwargs_warned
    if _legacy_kwargs_warned:
        return
    _legacy_kwargs_warned = True
    warnings.warn(
        f"passing execution options to {where} as loose keywords "
        f"({', '.join(names)}) is deprecated; wrap them in "
        "ExecutionOptions(...) and pass execution=",
        DeprecationWarning,
        stacklevel=3,
    )


class StudyConfig:
    """Scale and seeding of a full study run.

    Science knobs (study span, seeds, model fractions) are direct
    parameters; everything about *how* the study executes travels in
    one :class:`ExecutionOptions` value::

        StudyConfig(start=EPOCH, seed=7,
                    execution=ExecutionOptions(workers=4, segment_dir="seg"))

    The pre-consolidation spelling — execution options as loose
    keywords (``StudyConfig(start=..., workers=4)``) — still works but
    emits one :class:`DeprecationWarning` per process, and the old
    attribute surface (``config.workers`` etc.) remains readable as
    delegating properties.
    """

    def __init__(
        self,
        start: float,
        weeks: int = 31,
        seed: int = 0,
        hitlist_seed_fraction: float = 0.5,
        hitlist_cpe_seed_fraction: float = 0.55,
        caida_cycle_days: float = 14.0,
        full_packet_path: bool = True,
        execution: Optional[ExecutionOptions] = None,
        **legacy_execution,
    ) -> None:
        if weeks < CAIDA_LAST_WEEK:
            raise ValueError(
                f"study must span at least {CAIDA_LAST_WEEK} weeks"
            )
        self.start = start
        self.weeks = weeks
        self.seed = seed
        self.hitlist_seed_fraction = hitlist_seed_fraction
        self.hitlist_cpe_seed_fraction = hitlist_cpe_seed_fraction
        self.caida_cycle_days = caida_cycle_days
        self.full_packet_path = full_packet_path
        if legacy_execution:
            unknown = sorted(
                set(legacy_execution) - set(_EXECUTION_FIELDS)
            )
            if unknown:
                raise TypeError(
                    f"StudyConfig() got unexpected keyword arguments: "
                    f"{', '.join(unknown)}"
                )
            if execution is not None:
                raise TypeError(
                    "pass execution options either via execution= or as "
                    "legacy keywords, not both"
                )
            _warn_legacy_execution_kwargs(
                sorted(legacy_execution), "StudyConfig()"
            )
            execution = ExecutionOptions(**legacy_execution)
        self.execution = (
            ExecutionOptions() if execution is None else execution
        )

    def __repr__(self) -> str:
        return (
            f"StudyConfig(start={self.start!r}, weeks={self.weeks}, "
            f"seed={self.seed}, execution={self.execution!r})"
        )

    # -- read-compat surface of the pre-consolidation dataclass ------------------

    @property
    def workers(self) -> int:
        return self.execution.workers

    @property
    def checkpoint(self) -> Optional[str]:
        return self.execution.checkpoint

    @property
    def checkpoint_interval_weeks(self) -> int:
        return self.execution.checkpoint_interval_weeks

    @property
    def resume_from(self) -> Optional[str]:
        return self.execution.resume_from

    @property
    def segment_dir(self) -> Optional[str]:
        return self.execution.segment_dir

    @property
    def segment_bytes(self) -> int:
        return self.execution.segment_bytes

    @property
    def resume_from_segments(self) -> bool:
        return self.execution.resume_from_segments

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.execution.faults

    @property
    def max_shard_retries(self) -> int:
        return self.execution.max_shard_retries

    @property
    def shard_timeout(self) -> Optional[float]:
        return self.execution.shard_timeout

    @property
    def build_index(self) -> bool:
        return self.execution.build_index


@dataclass
class StudyResults:
    """Everything a full study produces."""

    ntp: AddressCorpus
    hitlist: AddressCorpus
    caida: AddressCorpus
    campaign: NTPCampaign
    hitlist_service: HitlistService
    caida_campaign: CAIDACampaign
    #: The study's shared /64-memoized origin resolver (``None`` when
    #: indexing was disabled); analyses should prefer it over the
    #: world's raw per-address LPM lookup.
    origins: Optional[CachedOrigins] = None
    #: The study-wide telemetry registry: every stage span, campaign
    #: counter and fault counter recorded while the study ran.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds per recorded stage span, in execution
        order (the ``--profile`` dump) — a view over :attr:`metrics`."""
        return self.metrics.span_seconds()

    def corpora(self):
        """The three datasets in the paper's Table 1 order."""
        return [self.ntp, self.hitlist, self.caida]

    def index_for(self, name: str) -> Optional[CorpusIndex]:
        """The columnar index of the corpus called ``name``, if built."""
        for corpus in self.corpora():
            if corpus.name == name:
                return corpus.index
        raise KeyError(f"no dataset named {name!r}")


def run_study(
    world: World,
    config: StudyConfig,
    *,
    metrics: Optional[MetricsRegistry] = None,
    **legacy_execution,
) -> StudyResults:
    """Run all three campaigns against one world, then index the corpora.

    All stages share one :class:`MetricsRegistry` (``metrics``, else
    ``config.execution.metrics``, else a fresh one); telemetry never
    feeds back into any keyed-RNG decision, so a metered study is
    bit-identical to an unmetered one.

    Execution options come from ``config.execution``.  The deprecated
    spelling ``run_study(world, config, workers=4, ...)`` still works —
    the loose keywords override the config's options for this run and
    emit one :class:`DeprecationWarning` per process.
    """
    execution = config.execution
    if legacy_execution:
        unknown = sorted(set(legacy_execution) - set(_EXECUTION_FIELDS))
        if unknown:
            raise TypeError(
                f"run_study() got unexpected keyword arguments: "
                f"{', '.join(unknown)}"
            )
        _warn_legacy_execution_kwargs(
            sorted(legacy_execution), "run_study()"
        )
        execution = replace(execution, **legacy_execution)
    registry = metrics if metrics is not None else execution.metrics
    if registry is None:
        registry = MetricsRegistry()
    campaign = NTPCampaign(
        world,
        CampaignConfig(
            start=config.start,
            weeks=config.weeks,
            seed=config.seed,
            full_packet_path=config.full_packet_path,
            faults=execution.faults,
        ),
        metrics=registry,
    )
    segment_store = None
    with registry.span("ntp-collection"):
        if (
            execution.workers > 1
            or execution.checkpoint
            or execution.resume_from
            or execution.segment_dir
        ):
            if execution.segment_dir is not None:
                segment_store = SegmentStore(
                    execution.segment_dir,
                    name=campaign.corpus.name,
                    segment_bytes=execution.segment_bytes,
                    metrics=registry,
                )
            ntp_corpus = run_campaign_parallel(
                campaign,
                workers=execution.workers,
                checkpoint=execution.checkpoint,
                checkpoint_interval_weeks=execution.checkpoint_interval_weeks,
                resume_from=execution.resume_from,
                segment_store=segment_store,
                resume_from_segments=execution.resume_from_segments,
                max_shard_retries=execution.max_shard_retries,
                shard_timeout=execution.shard_timeout,
            )
        else:
            ntp_corpus = campaign.run()

    vantage_asns = sorted({vantage.asn for vantage in world.vantages})
    hitlist_service = HitlistService(
        world,
        vantage_asns[0],
        seed_fraction=config.hitlist_seed_fraction,
        cpe_seed_fraction=config.hitlist_cpe_seed_fraction,
        seed=config.seed + 1,
        metrics=registry,
    )
    with registry.span("hitlist-snapshots"):
        hitlist_history = hitlist_service.run(
            config.start + HITLIST_FIRST_WEEK * WEEK,
            config.weeks - HITLIST_FIRST_WEEK,
        )
    hitlist_corpus = AddressCorpus.from_history("ipv6-hitlist", hitlist_history)

    caida_campaign = CAIDACampaign(world, vantage_asns, seed=config.seed + 2)
    with registry.span("caida-routed-48"):
        caida_history = caida_campaign.run(
            config.start + CAIDA_FIRST_WEEK * WEEK,
            config.start + CAIDA_LAST_WEEK * WEEK,
            cycle_days=config.caida_cycle_days,
        )
    caida_corpus = AddressCorpus.from_history("caida-routed-48", caida_history)

    origins: Optional[CachedOrigins] = None
    if execution.build_index:
        with registry.span("corpus-index"):
            origins = CachedOrigins.from_world(world)
            if segment_store is not None:
                # Incremental path: fold the seal-time partial indexes
                # instead of rescanning every sealed segment the
                # campaign just wrote (repro_index_segments_reused_total
                # counts the segments answered without a re-read).
                ntp_corpus.attach_index(
                    segment_store.reader().build_index(
                        origins, name=ntp_corpus.name
                    )
                )
            else:
                ntp_corpus.build_index(origins, metrics=registry)
            for corpus in (hitlist_corpus, caida_corpus):
                corpus.build_index(origins, metrics=registry)

    return StudyResults(
        ntp=ntp_corpus,
        hitlist=hitlist_corpus,
        caida=caida_corpus,
        campaign=campaign,
        hitlist_service=hitlist_service,
        caida_campaign=caida_campaign,
        origins=origins,
        metrics=registry,
    )
