"""Columnar analysis kernels: numpy-vectorized, array-module fallback.

The per-address work of a :class:`~repro.core.index.CorpusIndex` build —
IID entropy, structural pattern code, EUI-64 MAC extraction, lifetime
and per-IID interval folds — is embarrassingly parallel over columns.
This module holds the vectorized implementations, with a pure-Python
fallback path so the pipeline keeps working when :mod:`numpy` is not
installed (CI's minimal environments).

The contract every kernel honours: **bit-identical results on both
paths.**  The vectorized entropy kernel reproduces the scalar
:func:`~repro.addr.entropy.normalized_iid_entropy` sum order exactly
(per-nibble terms added in first-occurrence order, non-first positions
contributing an exact ``+0.0``); min/max folds use the same
keep-the-accumulator-on-ties semantics as ``AddressCorpus.record``
(``np.minimum``/``np.maximum`` are ``where(x1 <= x2, x1, x2)`` /
``where(x1 >= x2, x1, x2)``, matching the scalar ``<``/``>`` guards even
for signed zeros); count sums are exact integer arithmetic.  The
equivalence is pinned by the forced-fallback tests in
``tests/core/test_partial_index.py``.

Columns cross this boundary as :mod:`array` arrays (``'d'``/``'Q'``/
``'B'``) plus plain lists for 128-bit values; numpy is an internal
acceleration detail and never leaks numpy scalars to consumers.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence, Tuple

from ..addr.entropy import (
    HIGH_THRESHOLD,
    LOW_THRESHOLD,
    _NIBBLE_TERMS,
    normalized_iid_entropy,
)
from ..addr.eui64 import EUI64_MARKER, iid_to_mac, looks_like_eui64
from ..addr.patterns import AddressCategory, STRUCTURAL_CODES

try:  # pragma: no cover - exercised via both-path equivalence tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "NO_MAC",
    "iid_feature_columns",
    "lifetime_column",
    "iid_interval_map",
    "fold_record_columns",
    "pair_searchsorted",
    "pair_searchsorted_array",
    "sorted_contains_u64",
]

#: Whether the vectorized (numpy) path is active.  Tests monkeypatch the
#: private ``_np`` module handle to force the fallback.
HAVE_NUMPY = _np is not None

#: Sentinel in MAC columns for rows whose IID is not EUI-64 (MACs are
#: 48-bit, so this 64-bit value can never collide with a real one).
NO_MAC = (1 << 64) - 1

_ZEROES = STRUCTURAL_CODES[AddressCategory.ZEROES]
_LOW_BYTE = STRUCTURAL_CODES[AddressCategory.LOW_BYTE]
_LOW_2_BYTES = STRUCTURAL_CODES[AddressCategory.LOW_2_BYTES]
_LOW_ENTROPY = STRUCTURAL_CODES[AddressCategory.LOW_ENTROPY]
_MEDIUM_ENTROPY = STRUCTURAL_CODES[AddressCategory.MEDIUM_ENTROPY]
_HIGH_ENTROPY = STRUCTURAL_CODES[AddressCategory.HIGH_ENTROPY]

_IID_UL_BIT = 1 << 57
_NIBBLE_COUNT = 16


def structural_code(iid: int, entropy: float) -> int:
    """Structural pattern code of an IID given its precomputed entropy.

    Mirrors :func:`repro.addr.patterns.classify_iid_structurally` with
    ``ipv4_embedded=False``, reusing an already-computed entropy.
    """
    if iid == 0:
        return _ZEROES
    if iid <= 0xFF:
        return _LOW_BYTE
    if iid <= 0xFFFF:
        return _LOW_2_BYTES
    if entropy >= HIGH_THRESHOLD:
        return _HIGH_ENTROPY
    if entropy >= LOW_THRESHOLD:
        return _MEDIUM_ENTROPY
    return _LOW_ENTROPY


def iid_features(iid: int) -> Tuple[float, int, int]:
    """Scalar ``(entropy, pattern_code, mac)`` of one IID."""
    entropy = normalized_iid_entropy(iid)
    return (
        entropy,
        structural_code(iid, entropy),
        iid_to_mac(iid) if looks_like_eui64(iid) else NO_MAC,
    )


# -- per-IID feature columns ---------------------------------------------------


def _iid_features_scalar(
    iids: Sequence[int],
) -> Tuple[array, array, array, Dict[int, float]]:
    entropies = array("d", bytes(8 * len(iids)))
    codes = array("B", bytes(len(iids)))
    macs = array("Q", bytes(8 * len(iids)))
    # Entropy, pattern class and MAC extraction depend only on the IID;
    # memoizing per distinct IID collapses repeated IIDs (::1 in
    # thousands of /64s, EUI-64 IIDs surviving prefix rotation) to one
    # computation.
    info_of: Dict[int, Tuple[float, int, int]] = {}
    info_get = info_of.get
    for row, iid in enumerate(iids):
        info = info_get(iid)
        if info is None:
            info = iid_features(iid)
            info_of[iid] = info
        entropies[row] = info[0]
        codes[row] = info[1]
        macs[row] = info[2]
    return entropies, codes, macs, {
        iid: info[0] for iid, info in info_of.items()
    }


def _entropy_of_distinct(iids):
    """Normalized nibble entropy per distinct IID (numpy path).

    Reproduces :func:`normalized_iid_entropy` bit-for-bit: the per-count
    terms come from the same ``_NIBBLE_TERMS`` table and are accumulated
    left-to-right over the 16 nibble positions (MSB first), which *is*
    the scalar function's first-occurrence order once non-first
    positions contribute an exact ``+0.0`` (an exact no-op for the
    non-negative partial sums involved).
    """
    np = _np
    n = len(iids)
    terms = np.asarray(_NIBBLE_TERMS, dtype=np.float64)
    rows = np.arange(n)
    counts = np.zeros((n, _NIBBLE_COUNT), dtype=np.int64)
    nibble_at = []
    for position in range(_NIBBLE_COUNT):
        shift = 60 - 4 * position
        nibble = ((iids >> np.uint64(shift)) & np.uint64(0xF)).astype(
            np.int64
        )
        nibble_at.append(nibble)
        np.add.at(counts, (rows, nibble), 1)
    seen = np.zeros(n, dtype=np.int64)
    acc = np.zeros(n, dtype=np.float64)
    zero = np.float64(0.0)
    for position in range(_NIBBLE_COUNT):
        nibble = nibble_at[position]
        bit = np.left_shift(np.int64(1), nibble)
        is_first = (seen & bit) == 0
        seen |= bit
        acc = acc + np.where(
            is_first, terms[counts[rows, nibble] - 1], zero
        )
    return acc / 4.0


def _iid_features_numpy(
    iids: array,
) -> Tuple[array, array, array, Dict[int, float]]:
    np = _np
    column = np.frombuffer(iids, dtype=np.uint64)
    distinct, first_row, inverse = np.unique(
        column, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)  # numpy 2.x may return the input shape
    entropy_d = _entropy_of_distinct(distinct)

    # Structural pattern code: same threshold cascade as structural_code.
    code_d = np.where(
        distinct == 0,
        np.uint8(_ZEROES),
        np.where(
            distinct <= 0xFF,
            np.uint8(_LOW_BYTE),
            np.where(
                distinct <= 0xFFFF,
                np.uint8(_LOW_2_BYTES),
                np.where(
                    entropy_d >= HIGH_THRESHOLD,
                    np.uint8(_HIGH_ENTROPY),
                    np.where(
                        entropy_d >= LOW_THRESHOLD,
                        np.uint8(_MEDIUM_ENTROPY),
                        np.uint8(_LOW_ENTROPY),
                    ),
                ),
            ),
        ),
    ).astype(np.uint8)

    # EUI-64 MAC extraction: marker test + U/L-bit flip, as iid_to_mac.
    marker = (distinct >> np.uint64(24)) & np.uint64(0xFFFF)
    is_eui64 = marker == np.uint64(EUI64_MARKER)
    flipped = distinct ^ np.uint64(_IID_UL_BIT)
    high = (flipped >> np.uint64(40)) & np.uint64(0xFFFFFF)
    low = flipped & np.uint64(0xFFFFFF)
    mac_d = np.where(
        is_eui64, (high << np.uint64(24)) | low, np.uint64(NO_MAC)
    )

    entropies = array("d")
    entropies.frombytes(entropy_d[inverse].tobytes())
    codes = array("B")
    codes.frombytes(code_d[inverse].tobytes())
    macs = array("Q")
    macs.frombytes(np.ascontiguousarray(mac_d[inverse]).tobytes())
    # Emit the distinct-IID entropy map in first-occurrence order so its
    # iteration order matches the scalar memo's insertion order.
    occurrence = np.argsort(first_row, kind="stable")
    iid_entropies = dict(
        zip(
            distinct[occurrence].tolist(),
            entropy_d[occurrence].tolist(),
        )
    )
    return entropies, codes, macs, iid_entropies


def iid_feature_columns(
    iids: array,
) -> Tuple[array, array, array, Dict[int, float]]:
    """Per-row ``(entropies, pattern_codes, macs)`` columns plus the
    distinct-IID entropy map, from a ``'Q'`` column of IIDs.

    Vectorized over distinct IIDs when numpy is available; otherwise a
    memoized scalar loop.  Both paths return identical values.
    """
    if _np is not None and len(iids):
        return _iid_features_numpy(iids)
    return _iid_features_scalar(iids)


# -- interval and lifetime folds -----------------------------------------------


def lifetime_column(first: array, last: array) -> List[float]:
    """Per-row lifetimes ``last - first`` (row order preserved)."""
    if _np is not None and len(first):
        np = _np
        deltas = np.frombuffer(last, dtype=np.float64) - np.frombuffer(
            first, dtype=np.float64
        )
        return deltas.tolist()
    return [last[row] - first[row] for row in range(len(first))]


def iid_interval_map(
    iids: array, first: array, last: array
) -> Dict[int, Tuple[float, float]]:
    """Per-IID union sighting intervals, keyed in first-occurrence order.

    The grouped fold is ``(min(first), max(last))`` per distinct IID —
    order-independent operations, so the vectorized scatter-reduce
    equals the scalar running fold exactly.
    """
    if _np is None or not len(iids):
        intervals: Dict[int, List[float]] = {}
        get = intervals.get
        for row, iid in enumerate(iids):
            existing = get(iid)
            if existing is None:
                intervals[iid] = [first[row], last[row]]
            else:
                if first[row] < existing[0]:
                    existing[0] = first[row]
                if last[row] > existing[1]:
                    existing[1] = last[row]
        return {
            iid: (interval[0], interval[1])
            for iid, interval in intervals.items()
        }
    np = _np
    column = np.frombuffer(iids, dtype=np.uint64)
    first_np = np.frombuffer(first, dtype=np.float64)
    last_np = np.frombuffer(last, dtype=np.float64)
    distinct, first_row, inverse = np.unique(
        column, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    group_count = len(distinct)
    lo = np.full(group_count, np.inf)
    hi = np.full(group_count, -np.inf)
    np.minimum.at(lo, inverse, first_np)
    np.maximum.at(hi, inverse, last_np)
    # Emit in first-occurrence order so downstream consumers that
    # iterate the mapping see the same order the scalar fold produces.
    order = np.argsort(first_row, kind="stable")
    keys = distinct[order].tolist()
    lows = lo[order].tolist()
    highs = hi[order].tolist()
    return {
        key: (low, high) for key, low, high in zip(keys, lows, highs)
    }


# -- associative record fold (the partial-index merge) -------------------------


def _fold_record_columns_scalar(partials):
    addresses: List[int] = []
    first = array("d")
    last = array("d")
    counts = array("Q")
    entropies = array("d")
    codes = array("B")
    macs = array("Q")
    row_of: Dict[int, int] = {}
    get = row_of.get
    for part in partials:
        p_hi = part.hi
        p_lo = part.lo
        p_first = part.first
        p_last = part.last
        p_counts = part.counts
        p_entropies = part.entropies
        p_codes = part.codes
        p_macs = part.macs
        for i in range(len(p_lo)):
            address = (p_hi[i] << 64) | p_lo[i]
            row = get(address)
            if row is None:
                row_of[address] = len(addresses)
                addresses.append(address)
                first.append(p_first[i])
                last.append(p_last[i])
                counts.append(p_counts[i])
                entropies.append(p_entropies[i])
                codes.append(p_codes[i])
                macs.append(p_macs[i])
            else:
                if p_first[i] < first[row]:
                    first[row] = p_first[i]
                if p_last[i] > last[row]:
                    last[row] = p_last[i]
                counts[row] += p_counts[i]
    return addresses, first, last, counts, entropies, codes, macs


def _fold_record_columns_numpy(partials):
    np = _np
    hi_all = np.concatenate(
        [np.frombuffer(part.hi, dtype=np.uint64) for part in partials]
    )
    lo_all = np.concatenate(
        [np.frombuffer(part.lo, dtype=np.uint64) for part in partials]
    )
    first_all = np.concatenate(
        [np.frombuffer(part.first, dtype=np.float64) for part in partials]
    )
    last_all = np.concatenate(
        [np.frombuffer(part.last, dtype=np.float64) for part in partials]
    )
    counts_all = np.concatenate(
        [np.frombuffer(part.counts, dtype=np.uint64) for part in partials]
    )
    entropies_all = np.concatenate(
        [np.frombuffer(part.entropies, dtype=np.float64) for part in partials]
    )
    codes_all = np.concatenate(
        [np.frombuffer(part.codes, dtype=np.uint8) for part in partials]
    )
    macs_all = np.concatenate(
        [np.frombuffer(part.macs, dtype=np.uint64) for part in partials]
    )
    total = len(lo_all)

    # Group rows by 128-bit address (hi, lo) without a structured dtype:
    # lexsort, detect group starts, then scatter group ids back.
    sort_order = np.lexsort((lo_all, hi_all))
    hi_sorted = hi_all[sort_order]
    lo_sorted = lo_all[sort_order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    boundary[1:] = (hi_sorted[1:] != hi_sorted[:-1]) | (
        lo_sorted[1:] != lo_sorted[:-1]
    )
    group_sorted = np.cumsum(boundary) - 1
    groups = len(group_sorted) and int(group_sorted[-1]) + 1
    group_of = np.empty(total, dtype=np.int64)
    group_of[sort_order] = group_sorted

    # First-occurrence input position per group orders the output rows
    # exactly as the scalar first-seen fold does.
    first_position = np.full(groups, total, dtype=np.int64)
    np.minimum.at(first_position, group_of, np.arange(total))
    emit_order = np.argsort(first_position, kind="stable")
    out_row_of_group = np.empty(groups, dtype=np.int64)
    out_row_of_group[emit_order] = np.arange(groups)
    out_rows = out_row_of_group[group_of]

    first_out = np.full(groups, np.inf)
    np.minimum.at(first_out, out_rows, first_all)
    last_out = np.full(groups, -np.inf)
    np.maximum.at(last_out, out_rows, last_all)
    counts_out = np.zeros(groups, dtype=np.uint64)
    np.add.at(counts_out, out_rows, counts_all)

    source = first_position[emit_order]
    hi_out = hi_all[source]
    lo_out = lo_all[source]

    addresses = [
        (hi << 64) | lo
        for hi, lo in zip(hi_out.tolist(), lo_out.tolist())
    ]
    first = array("d")
    first.frombytes(first_out.tobytes())
    last = array("d")
    last.frombytes(last_out.tobytes())
    counts = array("Q")
    counts.frombytes(counts_out.tobytes())
    entropies = array("d")
    entropies.frombytes(np.ascontiguousarray(entropies_all[source]).tobytes())
    codes = array("B")
    codes.frombytes(np.ascontiguousarray(codes_all[source]).tobytes())
    macs = array("Q")
    macs.frombytes(np.ascontiguousarray(macs_all[source]).tobytes())
    return addresses, first, last, counts, entropies, codes, macs


def fold_record_columns(partials):
    """Fold per-segment partial-index columns into merged index columns.

    ``partials`` is a sequence of objects exposing ``hi``/``lo``/
    ``first``/``last``/``counts``/``entropies``/``codes``/``macs``
    columns (:class:`repro.core.index.PartialIndexColumns`).  Rows for
    the same 128-bit address fold as ``(min(first), max(last),
    sum(count))`` — the same associative, commutative fold
    ``AddressCorpus.merge`` applies — and output rows appear in
    first-occurrence order across the partials, which is exactly the
    record order of the merged corpus.  Returns ``(addresses, first,
    last, counts, entropies, codes, macs)``.
    """
    live = [part for part in partials if len(part.lo)]
    if not live:
        return (
            [],
            array("d"),
            array("d"),
            array("Q"),
            array("d"),
            array("B"),
            array("Q"),
        )
    if _np is not None:
        return _fold_record_columns_numpy(live)
    return _fold_record_columns_scalar(live)


# -- sorted-column binary search (the serving-index query kernels) -------------

#: Below this batch size the scalar bisect path beats the vectorized one
#: (per-call numpy setup dominates), so single queries stay cheap even
#: when numpy is installed.
_VECTOR_MIN_QUERIES = 8


def _pair_searchsorted_scalar(hi_col, lo_col, q_hi, q_lo, side):
    if side == "left":
        inner = bisect_left
    else:
        inner = bisect_right
    out = []
    append = out.append
    for qh, ql in zip(q_hi, q_lo):
        low = bisect_left(hi_col, qh)
        high = bisect_right(hi_col, qh, low)
        append(inner(lo_col, ql, low, high))
    return out


def _as_u64_queries(values, count):
    """Queries as a u64 ndarray: zero-copy when they already are one (a
    strided view over a received wire payload), fromiter otherwise."""
    if isinstance(values, _np.ndarray):
        return values
    return _np.fromiter(values, dtype=_np.uint64, count=count)


def pair_searchsorted_array(hi_col, lo_col, q_hi, q_lo, side="left"):
    """:func:`pair_searchsorted` returning an int64 **ndarray**.

    The one deliberate exception to "numpy never leaks": the serving
    layer's columnar batch path stays in numpy end to end (index lookup
    through RSB1 reply encode), so forcing a ``tolist`` here would undo
    the point.  Requires numpy; list-returning callers should use
    :func:`pair_searchsorted`.
    """
    np = _np
    hi_arr = np.asarray(hi_col, dtype=np.uint64)
    lo_arr = np.asarray(lo_col, dtype=np.uint64)
    count = len(q_hi)
    qh = _as_u64_queries(q_hi, count)
    ql = _as_u64_queries(q_lo, count)
    # The run of rows sharing the query's hi half is [left, right); a
    # batched manual bisection over the lo column inside each run turns
    # the composite 128-bit search into O(log max-run) vector steps.
    left = np.searchsorted(hi_arr, qh, side="left").astype(np.int64)
    right = np.searchsorted(hi_arr, qh, side="right").astype(np.int64)
    take_left = side == "left"
    while True:
        active = left < right
        if not active.any():
            break
        mid = (left + right) >> 1
        mid_vals = lo_arr[np.where(active, mid, 0)]
        if take_left:
            go_right = mid_vals < ql
        else:
            go_right = mid_vals <= ql
        left = np.where(active & go_right, mid + 1, left)
        right = np.where(active & ~go_right, mid, right)
    return left


def _pair_searchsorted_numpy(hi_col, lo_col, q_hi, q_lo, side):
    return pair_searchsorted_array(hi_col, lo_col, q_hi, q_lo, side).tolist()


def pair_searchsorted(
    hi_col, lo_col, q_hi: Sequence[int], q_lo: Sequence[int], side="left"
) -> List[int]:
    """Insertion points of 128-bit queries in a sorted ``(hi, lo)`` pair
    of u64 columns — ``searchsorted`` over a composite key numpy has no
    dtype for.

    ``hi_col``/``lo_col`` are row-aligned columns sorted
    lexicographically by ``(hi, lo)`` (numpy arrays, ``array('Q')`` or
    ``memoryview`` casts all work); queries arrive pre-split into hi/lo
    halves.  ``side`` follows :func:`bisect.bisect_left` /
    ``bisect_right`` semantics.  Both paths return identical plain-int
    lists; tiny batches always take the scalar path, where per-query
    bisect beats vectorization setup.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', not {side!r}")
    if not len(q_hi):
        return []
    if _np is None or len(q_hi) < _VECTOR_MIN_QUERIES:
        return _pair_searchsorted_scalar(hi_col, lo_col, q_hi, q_lo, side)
    return _pair_searchsorted_numpy(hi_col, lo_col, q_hi, q_lo, side)


def sorted_contains_u64(column, queries: Sequence[int]) -> List[bool]:
    """Membership of each query in a sorted u64 column (plain bools).

    Vectorized ``searchsorted`` + equality check when numpy is
    available and the batch is big enough to amortize it; scalar bisect
    otherwise.  Both paths return identical results.
    """
    if not len(queries):
        return []
    size = len(column)
    if _np is None or len(queries) < _VECTOR_MIN_QUERIES:
        out = []
        append = out.append
        for query in queries:
            position = bisect_left(column, query, 0, size)
            append(position < size and column[position] == query)
        return out
    np = _np
    col = np.asarray(column, dtype=np.uint64)
    probes = _as_u64_queries(queries, len(queries))
    positions = np.searchsorted(col, probes)
    found = positions < size
    clipped = np.where(found, positions, 0)
    if size:
        found &= col[clipped] == probes
    return found.tolist()
