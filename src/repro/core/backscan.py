"""Backscanning: active probes back to passive NTP clients (§3, §4.2).

For one week, five of the 27 vantage servers record their NTP clients in
ten-minute intervals; when an interval closes, each distinct client
address is probed (Yarrp trace + ZMap6 ICMPv6 echo), along with one
random address inside the same /64.  No address is probed twice within
an interval.

The experiment answers three questions:

* **Responsiveness** — are passively learned addresses usable as scan
  targets?  (paper: about two-thirds respond);
* **Aliasing** — random same-/64 targets respond only in aliased space
  (paper: 3.5% respond, almost all in networks the Hitlist also marks
  aliased, plus tens of thousands it misses);
* **Entropy vs responsiveness** — responders skew toward lower-entropy
  IIDs (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..addr.entropy import normalized_iid_entropy
from ..addr.ipv6 import iid_of, random_iid_address, slash64_of
from ..world.clock import DAY, MINUTE
from ..world.rng import split_rng
from ..world.world import World
from .campaign import NTPCampaign

__all__ = ["BackscanReport", "BackscanCampaign"]

#: Interval between probe rounds (the paper used ten minutes).
INTERVAL = 10 * MINUTE


@dataclass
class BackscanReport:
    """Aggregated outcome of the backscanning week."""

    probed_clients: int = 0
    responsive_clients: int = 0
    random_probed: int = 0
    random_responsive: int = 0
    hit_entropies: List[float] = field(default_factory=list)
    miss_entropies: List[float] = field(default_factory=list)
    random_responsive_entropies: List[float] = field(default_factory=list)
    #: /64s whose *random* probe answered — inferred aliased networks.
    aliased_slash64s: Set[int] = field(default_factory=set)
    #: client addresses observed inside those aliased /64s.
    clients_in_aliased_64s: Set[int] = field(default_factory=set)

    @property
    def client_responsive_fraction(self) -> float:
        """Fraction of probed NTP clients that answered (paper ~2/3)."""
        if self.probed_clients == 0:
            raise ValueError("no clients probed")
        return self.responsive_clients / self.probed_clients

    @property
    def random_responsive_fraction(self) -> float:
        """Fraction of random same-/64 targets that answered (paper 3.5%)."""
        if self.random_probed == 0:
            raise ValueError("no random targets probed")
        return self.random_responsive / self.random_probed


class BackscanCampaign:
    """Run the one-week backscanning experiment."""

    def __init__(
        self,
        world: World,
        campaign: NTPCampaign,
        vantage_count: int = 5,
        seed: int = 0,
    ) -> None:
        if vantage_count < 1:
            raise ValueError("need at least one backscanning vantage")
        if vantage_count > len(world.vantages):
            raise ValueError("more backscan vantages than exist")
        self.world = world
        self.campaign = campaign
        self.seed = seed
        # The paper picked five of its servers; we take a deterministic
        # spread across the vantage list.
        step = max(1, len(world.vantages) // vantage_count)
        self.vantage_addresses = [
            world.vantages[index].address
            for index in range(0, step * vantage_count, step)
        ][:vantage_count]

    def run(self, start_day: int, days: int = 7) -> BackscanReport:
        """Backscan clients seen on ``days`` days starting at ``start_day``."""
        if days < 1:
            raise ValueError("need at least one day")
        report = BackscanReport()
        probed_ever: Dict[int, bool] = {}
        rng = split_rng(self.seed, "backscan")
        for day in range(start_day, start_day + days):
            self._run_day(day, report, probed_ever, rng)
        # A client counts as "in an aliased /64" regardless of whether it
        # was sighted before or after the /64's alias verdict.
        report.clients_in_aliased_64s = {
            client
            for client in probed_ever
            if slash64_of(client) in report.aliased_slash64s
        }
        return report

    def _run_day(self, day, report, probed_ever, rng) -> None:
        # Bucket the day's captured clients into 10-minute intervals.
        intervals: Dict[int, Set[int]] = {}
        for when, client_address, _vantage in (
            self.campaign.captured_events_on_day(day, self.vantage_addresses)
        ):
            bucket = int(when // INTERVAL)
            intervals.setdefault(bucket, set()).add(client_address)
        for bucket in sorted(intervals):
            probe_time = (bucket + 1) * INTERVAL  # interval close
            for client_address in sorted(intervals[bucket]):
                self._probe_client(
                    client_address, probe_time, report, probed_ever, rng
                )

    def _probe_client(
        self, client_address, probe_time, report, probed_ever, rng
    ) -> None:
        # Each distinct client is counted once over the whole experiment;
        # re-sightings in later intervals re-probe but do not re-count.
        first_sighting = client_address not in probed_ever
        responsive = self.world.is_responsive(client_address, probe_time)
        if first_sighting:
            probed_ever[client_address] = responsive
            report.probed_clients += 1
            entropy = normalized_iid_entropy(iid_of(client_address))
            if responsive:
                report.responsive_clients += 1
                report.hit_entropies.append(entropy)
            else:
                report.miss_entropies.append(entropy)
        elif responsive and not probed_ever[client_address]:
            # A later probe can succeed where the first failed (device
            # back home); upgrade the verdict like the paper's weekly
            # aggregation does.
            probed_ever[client_address] = True
            report.responsive_clients += 1
            report.hit_entropies.append(
                normalized_iid_entropy(iid_of(client_address))
            )
            report.miss_entropies.remove(
                normalized_iid_entropy(iid_of(client_address))
            )

        # The random same-/64 companion probe.
        prefix = slash64_of(client_address)
        random_target = random_iid_address(prefix, rng)
        report.random_probed += 1
        if self.world.is_responsive(random_target, probe_time):
            report.random_responsive += 1
            report.random_responsive_entropies.append(
                normalized_iid_entropy(iid_of(random_target))
            )
            report.aliased_slash64s.add(prefix)
