"""Streaming segment store: corpus persistence that scales with time.

The paper's headline artifact is a 7.9B-address corpus accumulated
*passively over seven months* — the corpus outlives any single process
and outgrows any single machine's RAM long before the campaign ends.
The monolithic pipeline (one in-memory :class:`AddressCorpus`, one
whole-corpus checkpoint) therefore bounds campaign length by memory,
not by hardware.  This module inverts that: collection **flushes
sealed, append-only segment files** as soon as an in-memory buffer
crosses a byte budget, and a small atomically-replaced manifest is the
single source of truth about which segments make up the corpus.

Three invariants carry the design:

* **Fold equivalence** — a corpus record is ``[first, last, count]``
  and folding two records for the same address (min/max/sum) is
  associative and commutative.  However the observation stream is cut
  into segments — per record, per 4 KiB, per week window, per shard —
  folding every segment back together reproduces the monolithic
  in-memory corpus *bit-identically* (the property tests pin all of
  serial, sharded and compacted layouts against one monolithic run).
* **Sealed segments are immutable** — a segment file is written to a
  sibling temp file, fsynced, then atomically renamed into place, and
  carries a CRC32 footer.  A crash mid-flush leaves at most a stray
  temp file; the manifest can never reference a torn segment because
  it is only rewritten (atomically, via :func:`os.replace`) *after*
  its segments are durably on disk.
* **The manifest is the corpus** — ``MANIFEST.json`` records every
  live segment's id, day range, address count, byte size and checksum
  plus the campaign's completed-week watermark and a cumulative
  telemetry snapshot.  Readers ignore any file the manifest does not
  name (orphans from crashed attempts are harmless), resume restarts
  from the watermark without materializing anything, and
  :meth:`SegmentStore.compact` folds small segments into bigger ones
  without changing what any reader observes.

Segment files reuse the binary corpus **v2** record layout
(:mod:`repro.core.storage`) behind a small day-range header::

    RPS1 | uint32 start_day | uint32 end_day | RPC2 corpus | RPSF crc32

``crc32`` covers every prior byte of the file.

Every seal additionally persists a **partial index** next to the
segment (same stem, ``.idx`` suffix): the segment's
:class:`~repro.core.index.PartialIndexColumns`, CRC-footed like the
segment itself and bound to it by the segment's checksum::

    RPI1 | uint32 segment_crc32 | uint64 rows | columns | RPIF crc32

Partials let :meth:`SegmentedCorpusReader.build_index` fold an index
for the whole corpus **without re-reading any sealed segment** (DESIGN.md
§12).  They are pure accelerators: a missing or corrupt ``.idx`` only
costs a rescan of its segment (counted by
``repro_index_segments_rescanned_total``), never correctness.
"""

from __future__ import annotations

import contextlib
import copy
import io
import json
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..obs import DEFAULT_SIZE_BUCKETS, MetricsRegistry, NULL_REGISTRY
from .corpus import AddressCorpus
from .index import CachedOrigins, CorpusIndex, PartialIndexColumns
from .storage import (
    BINARY_RECORD_BYTES,
    CorpusFormatError,
    load_corpus_binary,
    save_corpus_binary,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "MANIFEST_NAME",
    "PARTIAL_INDEX_SUFFIX",
    "Manifest",
    "SegmentError",
    "SegmentMeta",
    "SegmentStore",
    "SegmentBufferedCorpus",
    "SegmentedCorpusReader",
    "clear_manifest_cache",
    "manifest_cache_info",
]

#: Default flush budget: a buffered shard seals a segment once its
#: estimated serialized size crosses this many bytes (~100k records).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: The manifest file name inside a segment directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest schema identifier (DESIGN.md §11).
MANIFEST_FORMAT = "repro-segments-v1"

#: Suffix of sealed segment files.
SEGMENT_SUFFIX = ".seg"

#: Suffix of per-segment partial index files.
PARTIAL_INDEX_SUFFIX = ".idx"

_SEGMENT_MAGIC = b"RPS1"
_SEGMENT_FOOTER_MAGIC = b"RPSF"
_SEGMENT_FOOTER_SIZE = 8

_PARTIAL_MAGIC = b"RPI1"
_PARTIAL_FOOTER_MAGIC = b"RPIF"
#: Fixed bytes before the columns: magic + segment crc32 + uint64 rows.
_PARTIAL_HEADER_SIZE = 16
_PARTIAL_FOOTER_SIZE = 8
#: Fixed bytes before the embedded corpus: magic + two uint32 day bounds.
_SEGMENT_HEADER_SIZE = 12
#: Conservative per-segment overhead used by the flush estimator
#: (header + corpus header + footer); exactness does not matter, only
#: determinism — the same record stream always seals at the same points.
SEGMENT_OVERHEAD_BYTES = 64

#: Times a fault-injected segment write is retried before giving up.
MAX_SEGMENT_WRITE_RETRIES = 3

#: Process-wide parsed-manifest cache bound.  Each entry holds one
#: parsed :class:`Manifest`; 64 distinct segment directories per process
#: is far beyond any workload here.
MANIFEST_CACHE_MAX_ENTRIES = 64


class SegmentError(CorpusFormatError):
    """A segment file or manifest is torn, corrupt, or inconsistent."""


@dataclass(frozen=True)
class SegmentMeta:
    """One sealed segment, exactly as the manifest records it."""

    segment_id: str
    file: str
    start_day: int
    end_day: int
    records: int
    size_bytes: int
    crc32: int

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.segment_id,
            "file": self.file,
            "start_day": self.start_day,
            "end_day": self.end_day,
            "records": self.records,
            "bytes": self.size_bytes,
            "crc32": f"{self.crc32:#010x}",
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "SegmentMeta":
        try:
            return cls(
                segment_id=str(doc["id"]),
                file=str(doc["file"]),
                start_day=int(doc["start_day"]),
                end_day=int(doc["end_day"]),
                records=int(doc["records"]),
                size_bytes=int(doc["bytes"]),
                crc32=int(str(doc["crc32"]), 16),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SegmentError(f"bad segment manifest entry: {error}") from error


@dataclass
class Manifest:
    """The manifest document: the authoritative index of live segments."""

    name: str
    completed_weeks: int = 0
    segments: List[SegmentMeta] = field(default_factory=list)
    #: Cumulative telemetry snapshot at the last commit (or ``None``) —
    #: the manifest-based analogue of the checkpoint RPCM block, so a
    #: resumed campaign reports whole-campaign counters.
    metrics: Optional[Dict[str, object]] = None
    #: Completed compaction generations (ids new compactions draw from).
    compactions: int = 0

    @property
    def total_records(self) -> int:
        """Records across all segments (>= distinct addresses)."""
        return sum(meta.records for meta in self.segments)

    @property
    def total_bytes(self) -> int:
        return sum(meta.size_bytes for meta in self.segments)

    @property
    def completed_days(self) -> int:
        """Collection days durably covered (the resume watermark)."""
        return self.completed_weeks * 7

    def to_json(self) -> Dict[str, object]:
        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "completed_weeks": self.completed_weeks,
            "compactions": self.compactions,
            "segments": [meta.to_json() for meta in self.segments],
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "Manifest":
        if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
            raise SegmentError(
                f"not a {MANIFEST_FORMAT} manifest: "
                f"format={doc.get('format') if isinstance(doc, dict) else doc!r}"
            )
        metrics = doc.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            raise SegmentError("manifest metrics block is not a JSON object")
        return cls(
            name=str(doc.get("name") or "corpus"),
            completed_weeks=int(doc.get("completed_weeks", 0)),
            segments=[
                SegmentMeta.from_json(entry) for entry in doc.get("segments", ())
            ],
            metrics=metrics,
            compactions=int(doc.get("compactions", 0)),
        )


# -- parsed-manifest cache -----------------------------------------------------
#
# Every open of a segment directory — and every commit, which reloads
# before appending — used to re-read and re-parse MANIFEST.json from
# scratch.  A serving process re-opening the same store thousands of
# times pays JSON parsing of a potentially multi-thousand-entry segment
# list each time.  The cache below keys parsed manifests by absolute
# path and validates each hit against the file's current (mtime_ns,
# size); when the stat changed but the bytes did not (rewrites of
# identical content, coarse-timestamp filesystems), a CRC32 of the
# re-read bytes still skips the JSON parse.  Any watermark or segment
# change rewrites the file via os.replace, which changes the stat and
# invalidates the entry — cross-process writers are caught the same way.

_MANIFEST_CACHE: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
_MANIFEST_CACHE_STATS = {"hits": 0, "misses": 0}


def _manifest_copy(manifest: Manifest) -> Manifest:
    """A mutation-safe copy of a parsed manifest.

    ``commit()`` appends to ``manifest.segments`` and callers may merge
    into ``manifest.metrics``, so the cache never hands out (or keeps) an
    aliased instance.  ``SegmentMeta`` rows are frozen and shared; only
    the mutable containers are copied.
    """
    return Manifest(
        name=manifest.name,
        completed_weeks=manifest.completed_weeks,
        segments=list(manifest.segments),
        metrics=copy.deepcopy(manifest.metrics),
        compactions=manifest.compactions,
    )


def _manifest_cache_put(
    key: str, stat: os.stat_result, crc: int, manifest: Manifest
) -> None:
    _MANIFEST_CACHE[key] = {
        "mtime_ns": stat.st_mtime_ns,
        "size": stat.st_size,
        "crc32": crc,
        "manifest": _manifest_copy(manifest),
    }
    _MANIFEST_CACHE.move_to_end(key)
    while len(_MANIFEST_CACHE) > MANIFEST_CACHE_MAX_ENTRIES:
        _MANIFEST_CACHE.popitem(last=False)


def manifest_cache_info() -> Dict[str, int]:
    """Cache shape for tests and profiling: entries, hits, misses."""
    return {
        "entries": len(_MANIFEST_CACHE),
        "hits": _MANIFEST_CACHE_STATS["hits"],
        "misses": _MANIFEST_CACHE_STATS["misses"],
    }


def clear_manifest_cache() -> None:
    """Drop every cached manifest (tests; also resets hit/miss counts)."""
    _MANIFEST_CACHE.clear()
    _MANIFEST_CACHE_STATS["hits"] = 0
    _MANIFEST_CACHE_STATS["misses"] = 0


class SegmentStore:
    """One segment directory: sealed segment files plus their manifest.

    Worker processes use a store purely as a **segment writer** (they
    never touch the manifest — only the coordinating process commits);
    the coordinator additionally owns :meth:`commit`, :meth:`compact`
    and :meth:`reader`.  All writes are atomic (temp + fsync +
    ``os.replace``), so any instant of crash leaves the previous
    manifest and every committed segment intact.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        name: str = "corpus",
        segment_bytes: float = DEFAULT_SEGMENT_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_bytes < 1:
            raise ValueError(
                f"segment byte budget must be >= 1: {segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.segment_bytes = segment_bytes
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._m_flushed = self.metrics.counter(
            "repro_segments_flushed_total", "segment files sealed"
        )
        self._m_flush_retries = self.metrics.counter(
            "repro_segment_flush_retries_total",
            "segment flushes retried after an injected write fault",
        )
        self._m_compacted = self.metrics.counter(
            "repro_segments_compacted_total",
            "small segments folded away by compaction",
        )
        self._m_commits = self.metrics.counter(
            "repro_manifest_commits_total", "manifest replacements"
        )
        self._m_bytes = self.metrics.histogram(
            "repro_segment_bytes",
            "sealed segment file sizes in bytes",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_partials = self.metrics.counter(
            "repro_index_partials_written_total",
            "per-segment partial indexes sealed",
        )
        self._m_index_reused = self.metrics.counter(
            "repro_index_segments_reused_total",
            "sealed segments indexed from their partial index (no rescan)",
        )
        self._m_index_rescanned = self.metrics.counter(
            "repro_index_segments_rescanned_total",
            "sealed segments rescanned for a missing or invalid partial index",
        )

    # -- paths -------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def segment_path(self, meta: SegmentMeta) -> Path:
        return self.directory / meta.file

    def partial_index_path(self, meta: SegmentMeta) -> Path:
        return self.directory / f"{meta.segment_id}{PARTIAL_INDEX_SUFFIX}"

    # -- manifest ----------------------------------------------------------------

    def load_manifest(self) -> Optional[Manifest]:
        """The committed manifest, or ``None`` when none exists yet.

        Parses are cached process-wide keyed by (path, mtime, CRC):
        repeated opens of an unchanged store skip the JSON parse
        entirely, and any rewrite — watermark bump, commit, compaction,
        even by another process — changes the stat (or failing that the
        CRC re-check) and invalidates the entry.  Callers always get a
        private, mutation-safe :class:`Manifest` copy.
        """
        key = os.path.abspath(self.manifest_path)
        try:
            stat = os.stat(self.manifest_path)
        except FileNotFoundError:
            _MANIFEST_CACHE.pop(key, None)
            return None
        entry = _MANIFEST_CACHE.get(key)
        if (
            entry is not None
            and entry["mtime_ns"] == stat.st_mtime_ns
            and entry["size"] == stat.st_size
        ):
            _MANIFEST_CACHE_STATS["hits"] += 1
            _MANIFEST_CACHE.move_to_end(key)
            return _manifest_copy(entry["manifest"])
        try:
            raw = self.manifest_path.read_bytes()
        except FileNotFoundError:  # pragma: no cover - stat/read race
            _MANIFEST_CACHE.pop(key, None)
            return None
        crc = zlib.crc32(raw)
        if (
            entry is not None
            and entry["crc32"] == crc
            and entry["size"] == len(raw)
        ):
            # Same bytes under a new stat (atomic rewrite of identical
            # content): refresh the stat key, skip the parse.
            entry["mtime_ns"] = stat.st_mtime_ns
            _MANIFEST_CACHE_STATS["hits"] += 1
            _MANIFEST_CACHE.move_to_end(key)
            return _manifest_copy(entry["manifest"])
        _MANIFEST_CACHE.pop(key, None)
        _MANIFEST_CACHE_STATS["misses"] += 1
        try:
            manifest = Manifest.from_json(json.loads(raw))
        except (json.JSONDecodeError, SegmentError) as error:
            raise SegmentError(
                f"unreadable segment manifest: {error}",
                path=self.manifest_path,
            ) from error
        _manifest_cache_put(key, stat, crc, manifest)
        return manifest

    def commit(
        self,
        new_segments: List[SegmentMeta],
        *,
        completed_weeks: Optional[int] = None,
        metrics: Optional[Dict[str, object]] = None,
        replace: bool = False,
    ) -> Manifest:
        """Atomically publish segments (and the progress watermark).

        ``replace=True`` swaps the whole segment list (compaction and
        checkpoint-import use it); the default appends.  The completed
        week watermark is monotonic — a commit can never move it
        backwards.  Only call this after every segment in
        ``new_segments`` is durably on disk: the ordering is what makes
        "the manifest never references a torn segment" a structural
        property rather than a hope.
        """
        manifest = self.load_manifest()
        if manifest is None:
            manifest = Manifest(name=self.name)
        if replace:
            manifest.segments = list(new_segments)
        else:
            live = {meta.segment_id for meta in manifest.segments}
            for meta in new_segments:
                if meta.segment_id in live:
                    raise ValueError(
                        f"segment {meta.segment_id!r} is already committed"
                    )
                manifest.segments.append(meta)
        if completed_weeks is not None:
            if completed_weeks < 0:
                raise ValueError(
                    f"bad completed week count: {completed_weeks}"
                )
            manifest.completed_weeks = max(
                manifest.completed_weeks, completed_weeks
            )
        if metrics is not None:
            manifest.metrics = metrics
        self._write_manifest(manifest)
        self._m_commits.inc()
        return manifest

    def _write_manifest(self, manifest: Manifest) -> None:
        blob = json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n"
        data = blob.encode("utf-8")
        self._atomic_write(self.manifest_path, data)
        # Prime the cache with what we just wrote: the writing process
        # never pays a re-parse for its own commit.
        try:
            stat = os.stat(self.manifest_path)
        except FileNotFoundError:  # pragma: no cover - concurrent unlink
            return
        _manifest_cache_put(
            os.path.abspath(self.manifest_path),
            stat,
            zlib.crc32(data),
            manifest,
        )

    def _atomic_write(self, path: Path, data: bytes) -> None:
        temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with temp.open("wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp, path)
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                temp.unlink()
            raise

    # -- segment I/O -------------------------------------------------------------

    def write_segment(
        self,
        corpus: AddressCorpus,
        *,
        segment_id: str,
        start_day: int,
        end_day: int,
    ) -> SegmentMeta:
        """Seal one segment file; returns its manifest entry.

        The file is not part of the corpus until a later
        :meth:`commit` names it — rewriting the same ``segment_id``
        (a retried shard) atomically overwrites the previous attempt
        with identical bytes, so overwrites are always safe.

        Each seal also persists the segment's partial index (same stem,
        ``.idx``) so later analysis folds it instead of rescanning the
        segment.  The partial is written *after* the segment: at any
        crash instant the ``.idx`` on disk matches a durable ``.seg``
        (or is absent, which merely costs a rescan).
        """
        if not 0 <= start_day < end_day <= 0xFFFFFFFF:
            raise ValueError(f"bad segment day range: [{start_day}, {end_day})")
        if "/" in segment_id or segment_id.startswith("."):
            raise ValueError(f"bad segment id: {segment_id!r}")
        payload = io.BytesIO()
        payload.write(_SEGMENT_MAGIC)
        payload.write(start_day.to_bytes(4, "big"))
        payload.write(end_day.to_bytes(4, "big"))
        records = save_corpus_binary(corpus, payload)
        data = payload.getvalue()
        crc = zlib.crc32(data) & 0xFFFFFFFF
        blob = data + _SEGMENT_FOOTER_MAGIC + crc.to_bytes(4, "big")
        filename = f"{segment_id}{SEGMENT_SUFFIX}"
        self._atomic_write(self.directory / filename, blob)
        self._m_flushed.inc()
        self._m_bytes.observe(len(blob))
        self._write_partial_index(segment_id, corpus, crc)
        return SegmentMeta(
            segment_id=segment_id,
            file=filename,
            start_day=start_day,
            end_day=end_day,
            records=records,
            size_bytes=len(blob),
            crc32=crc,
        )

    def _write_partial_index(
        self, segment_id: str, corpus: AddressCorpus, segment_crc: int
    ) -> None:
        """Seal the segment's partial index next to its ``.seg`` file."""
        partial = PartialIndexColumns.from_corpus(corpus)
        header = (
            _PARTIAL_MAGIC
            + segment_crc.to_bytes(4, "big")
            + len(partial).to_bytes(8, "big")
        )
        body = header + partial.to_payload()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        blob = body + _PARTIAL_FOOTER_MAGIC + crc.to_bytes(4, "big")
        self._atomic_write(
            self.directory / f"{segment_id}{PARTIAL_INDEX_SUFFIX}", blob
        )
        self._m_partials.inc()

    def load_partial_index(self, meta: SegmentMeta) -> PartialIndexColumns:
        """Load and integrity-check one segment's partial index.

        Raises ``FileNotFoundError`` when the partial was never written
        and :class:`SegmentError` when it is torn, corrupt, or belongs
        to a different generation of the segment (checksum binding) —
        in every case the caller falls back to rescanning the segment
        itself, so partials can never change what analysis observes.
        """
        path = self.partial_index_path(meta)
        data = path.read_bytes()
        if data[:4] != _PARTIAL_MAGIC:
            raise SegmentError(
                f"not a partial index: magic {data[:4]!r}", path=path, offset=0
            )
        if len(data) < _PARTIAL_HEADER_SIZE + _PARTIAL_FOOTER_SIZE:
            raise SegmentError(
                f"partial index truncated to {len(data)} bytes",
                path=path,
                offset=len(data),
            )
        body = data[:-_PARTIAL_FOOTER_SIZE]
        footer = data[-_PARTIAL_FOOTER_SIZE:]
        if footer[:4] != _PARTIAL_FOOTER_MAGIC:
            raise SegmentError(
                "partial index integrity footer missing (torn write?)",
                path=path,
                offset=len(body),
            )
        stored = int.from_bytes(footer[4:], "big")
        computed = zlib.crc32(body) & 0xFFFFFFFF
        if stored != computed:
            raise SegmentError(
                f"partial index CRC mismatch: stored {stored:#010x}, "
                f"computed {computed:#010x}",
                path=path,
                offset=len(body),
            )
        segment_crc = int.from_bytes(data[4:8], "big")
        if segment_crc != meta.crc32:
            raise SegmentError(
                f"partial index is bound to segment checksum "
                f"{segment_crc:#010x}, manifest says {meta.crc32:#010x}",
                path=path,
            )
        rows = int.from_bytes(data[8:16], "big")
        if rows != meta.records:
            raise SegmentError(
                f"partial index holds {rows} rows, manifest says "
                f"{meta.records} records",
                path=path,
            )
        try:
            return PartialIndexColumns.from_payload(
                body[_PARTIAL_HEADER_SIZE:], rows
            )
        except ValueError as error:
            raise SegmentError(str(error), path=path) from error

    def load_segment(self, meta: SegmentMeta) -> AddressCorpus:
        """Load and integrity-check one committed segment.

        Raises :class:`SegmentError` naming the file when the segment is
        torn (truncated), corrupt (CRC mismatch) or does not match its
        manifest entry.
        """
        path = self.segment_path(meta)
        try:
            data = path.read_bytes()
        except FileNotFoundError as error:
            raise SegmentError(
                f"manifest references a missing segment {meta.segment_id!r}",
                path=path,
            ) from error
        try:
            corpus, start_day, end_day = _parse_segment(data)
        except CorpusFormatError as error:
            raise SegmentError(error.reason, path=path, offset=error.offset) from error
        if (start_day, end_day) != (meta.start_day, meta.end_day):
            raise SegmentError(
                f"segment day range [{start_day}, {end_day}) does not match "
                f"its manifest entry [{meta.start_day}, {meta.end_day})",
                path=path,
            )
        if len(corpus) != meta.records:
            raise SegmentError(
                f"segment holds {len(corpus)} records, manifest says "
                f"{meta.records}",
                path=path,
            )
        stored_crc = int.from_bytes(data[-4:], "big")
        if stored_crc != meta.crc32:
            raise SegmentError(
                f"segment checksum {stored_crc:#010x} does not match its "
                f"manifest entry {meta.crc32:#010x}",
                path=path,
            )
        return corpus

    # -- reading and compaction --------------------------------------------------

    def reader(self) -> "SegmentedCorpusReader":
        """A reader over the committed manifest."""
        return SegmentedCorpusReader(self)

    def compact(
        self, *, small_bytes: Optional[float] = None
    ) -> Manifest:
        """Fold small segments together; observable corpus is unchanged.

        Segments smaller than ``small_bytes`` (default: the store's
        flush budget) are loaded, folded per-address (min first / max
        last / summed count — the same fold every reader applies), and
        rewritten as one consolidated segment spanning their combined
        day range.  Because the fold is associative and commutative,
        the materialized corpus after compaction is bit-identical to
        before (test-pinned).  Crash-safe: the consolidated segment is
        durably written *before* the manifest swap, and the obsolete
        files are unlinked only after it; a crash in between leaves
        harmless orphans.
        """
        manifest = self.load_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no manifest to compact at {self.manifest_path}"
            )
        threshold = self.segment_bytes if small_bytes is None else small_bytes
        small = [
            meta for meta in manifest.segments if meta.size_bytes < threshold
        ]
        if len(small) < 2:
            return manifest
        with self.metrics.span("segment-compaction"):
            folded = AddressCorpus(manifest.name)
            for meta in small:
                folded.merge(self.load_segment(meta))
            generation = manifest.compactions + 1
            merged = self.write_segment(
                folded,
                segment_id=f"compact-{generation:04d}",
                start_day=min(meta.start_day for meta in small),
                end_day=max(meta.end_day for meta in small),
            )
            small_ids = {meta.segment_id for meta in small}
            kept = [
                meta
                for meta in manifest.segments
                if meta.segment_id not in small_ids
            ]
            segments = sorted(
                kept + [merged],
                key=lambda meta: (meta.start_day, meta.end_day, meta.segment_id),
            )
            manifest.segments = segments
            manifest.compactions = generation
            self._write_manifest(manifest)
            self._m_commits.inc()
            self._m_compacted.inc(len(small))
            for meta in small:
                with contextlib.suppress(FileNotFoundError):
                    self.segment_path(meta).unlink()
                with contextlib.suppress(FileNotFoundError):
                    self.partial_index_path(meta).unlink()
        return manifest


def _parse_segment(data: bytes) -> Tuple[AddressCorpus, int, int]:
    if data[:4] != _SEGMENT_MAGIC:
        raise CorpusFormatError(
            f"not a repro corpus segment: magic {data[:4]!r}", offset=0
        )
    if len(data) < _SEGMENT_HEADER_SIZE + _SEGMENT_FOOTER_SIZE:
        raise CorpusFormatError(
            f"segment truncated to {len(data)} bytes (torn flush?)",
            offset=len(data),
        )
    body, footer = data[:-_SEGMENT_FOOTER_SIZE], data[-_SEGMENT_FOOTER_SIZE:]
    if footer[:4] != _SEGMENT_FOOTER_MAGIC:
        raise CorpusFormatError(
            "segment integrity footer missing (torn flush?)", offset=len(body)
        )
    stored = int.from_bytes(footer[4:], "big")
    computed = zlib.crc32(body) & 0xFFFFFFFF
    if stored != computed:
        raise CorpusFormatError(
            f"segment CRC mismatch: stored {stored:#010x}, "
            f"computed {computed:#010x}",
            offset=len(body),
        )
    start_day = int.from_bytes(data[4:8], "big")
    end_day = int.from_bytes(data[8:12], "big")
    corpus = load_corpus_binary(io.BytesIO(body[_SEGMENT_HEADER_SIZE:]))
    return corpus, start_day, end_day


class SegmentBufferedCorpus(AddressCorpus):
    """An :class:`AddressCorpus` whose memory footprint is the budget.

    Drop-in for a campaign's accumulation corpus: recording folds into
    the in-memory buffer exactly as before, but once the buffer's
    estimated serialized size crosses the store's byte budget the
    buffer is sealed into a segment file and cleared.  Sealing points
    are a pure function of the record stream and the budget, so a
    retried shard regenerates byte-identical segments under identical
    ids.

    ``write_fault`` is an optional
    :class:`~repro.faults.injector.FaultInjector`; each seal asks it
    :meth:`fails_segment_write` first and retries (counting
    ``repro_segment_flush_retries_total``) up to
    :data:`MAX_SEGMENT_WRITE_RETRIES` times, so injected storage
    faults exercise the durability path deterministically.
    """

    def __init__(
        self,
        name: str,
        store: SegmentStore,
        *,
        shard_index: int = 0,
        write_fault=None,
    ) -> None:
        super().__init__(name)
        self.store = store
        self.shard_index = shard_index
        self.write_fault = write_fault
        self._window: Optional[Tuple[int, int]] = None
        self._sequence = 0
        #: Segments sealed since the last :meth:`take_sealed`.
        self.sealed: List[SegmentMeta] = []

    # -- window bookkeeping ------------------------------------------------------

    def set_window(self, start_day: int, end_day: int) -> None:
        """Declare the day range subsequent records belong to.

        Any buffered records from a previous window are sealed first so
        no segment ever spans a window boundary (resume restarts at a
        window edge).
        """
        if not 0 <= start_day < end_day:
            raise ValueError(f"bad window day range: [{start_day}, {end_day})")
        if self._window is not None and len(self):
            self.seal()
        self._window = (start_day, end_day)
        self._sequence = 0

    # -- recording (budget-gated) ------------------------------------------------

    def record(self, address: int, when: float) -> None:
        super().record(address, when)
        self._maybe_seal()

    def record_interval(
        self, address: int, first: float, last: float, count: int = 2
    ) -> None:
        super().record_interval(address, first, last, count)
        self._maybe_seal()

    def merge(self, other) -> None:
        super().merge(other)
        self._maybe_seal()

    def estimated_bytes(self) -> int:
        """Deterministic size estimate of the buffer's segment file."""
        return SEGMENT_OVERHEAD_BYTES + len(self) * BINARY_RECORD_BYTES

    def _maybe_seal(self) -> None:
        if self._window is not None and (
            self.estimated_bytes() >= self.store.segment_bytes
        ):
            self.seal()

    # -- sealing -----------------------------------------------------------------

    def seal(self) -> Optional[SegmentMeta]:
        """Flush the buffer to a sealed segment file; no-op when empty."""
        if not len(self):
            return None
        if self._window is None:
            raise RuntimeError(
                "segment buffer has records but no day window; call "
                "set_window() before recording"
            )
        start_day, end_day = self._window
        segment_id = (
            f"d{start_day:05d}-{end_day:05d}"
            f"-s{self.shard_index:03d}-{self._sequence:04d}"
        )
        attempt = 0
        while True:
            if self.write_fault is not None and self.write_fault.fails_segment_write(
                self.shard_index, start_day, self._sequence, attempt
            ):
                attempt += 1
                if attempt > MAX_SEGMENT_WRITE_RETRIES:
                    raise OSError(
                        f"segment {segment_id!r} write failed "
                        f"{attempt} times (injected storage fault)"
                    )
                self.store._m_flush_retries.inc()
                continue
            break
        with self.store.metrics.span("segment-flush"):
            meta = self.store.write_segment(
                self,
                segment_id=segment_id,
                start_day=start_day,
                end_day=end_day,
            )
        self.sealed.append(meta)
        self._sequence += 1
        self._records.clear()
        self._index = None
        return meta

    def take_sealed(self) -> List[SegmentMeta]:
        """Sealed-since-last-call segment metas (commit batch)."""
        sealed, self.sealed = self.sealed, []
        return sealed

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> Optional[SegmentMeta]:
        """Seal any buffered tail records; idempotent.

        A campaign that ends (or a window that closes) before the
        buffer crosses the flush budget would otherwise silently drop
        its unsealed tail — the records existed only in memory.  Call
        this (or use the corpus as a context manager) before committing
        the final batch.  Returns the tail's segment meta, or ``None``
        when the buffer was already empty.
        """
        if len(self):
            return self.seal()
        return None

    def __enter__(self) -> "SegmentBufferedCorpus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Seal the tail only on a clean exit: after an error the buffer
        # may be mid-window, and sealing here would both mask the
        # original exception (if the seal itself fails) and persist
        # records the campaign never accounted for.  Crash recovery
        # instead restarts from the manifest watermark, which only ever
        # names fully committed windows.
        if exc_type is None:
            self.close()


class SegmentedCorpusReader:
    """Read view over a committed segment store.

    Exposes the iteration/merge surface the analysis stack consumes —
    ``name``, ``len()``, :meth:`items`, :meth:`addresses`,
    ``in``-membership — so :meth:`CorpusIndex.build
    <repro.core.index.CorpusIndex.build>` and
    :meth:`AddressCorpus.merge` accept a reader wherever they accept a
    corpus.  The fold across segments is materialized lazily once and
    cached; :meth:`iter_segments` streams segment-by-segment for
    memory-bounded passes (counting, re-sharding, export).
    """

    def __init__(self, store: SegmentStore) -> None:
        self._store = store
        manifest = store.load_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no segment manifest at {store.manifest_path}"
            )
        self.manifest = manifest
        self._folded: Optional[AddressCorpus] = None

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "SegmentedCorpusReader":
        """Open the segment store rooted at ``directory``.

        ``metrics`` (optional) receives the store's telemetry —
        including the ``repro_index_segments_reused_total`` /
        ``…_rescanned_total`` counters the incremental indexing path
        increments.
        """
        return cls(SegmentStore(directory, metrics=metrics))

    # -- manifest-level views ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def completed_weeks(self) -> int:
        return self.manifest.completed_weeks

    def segments(self) -> List[SegmentMeta]:
        return list(self.manifest.segments)

    def iter_segments(self) -> Iterator[Tuple[SegmentMeta, AddressCorpus]]:
        """Stream ``(meta, corpus)`` per segment, CRC-verified.

        Memory use is one segment at a time — the reader's bounded-RSS
        path.  Addresses may repeat across segments; consumers fold.
        """
        for meta in self.manifest.segments:
            yield meta, self._store.load_segment(meta)

    # -- folded corpus surface ---------------------------------------------------

    def load(self, name: Optional[str] = None) -> AddressCorpus:
        """Materialize the folded corpus (cached across calls)."""
        if self._folded is None:
            folded = AddressCorpus(name or self.manifest.name)
            for _, segment in self.iter_segments():
                folded.merge(segment)
            self._folded = folded
        return self._folded

    # -- incremental indexing ----------------------------------------------------

    def partial_indexes(self) -> List[PartialIndexColumns]:
        """One partial index per committed segment, in manifest order.

        Sourced from the seal-time ``.idx`` files where possible
        (counted by ``repro_index_segments_reused_total``); a segment
        whose partial is missing or fails its integrity checks is
        rescanned and summarized on the fly
        (``repro_index_segments_rescanned_total``), so the result is
        identical either way.
        """
        partials: List[PartialIndexColumns] = []
        for meta in self.manifest.segments:
            try:
                partial = self._store.load_partial_index(meta)
                self._store._m_index_reused.inc()
            except (FileNotFoundError, SegmentError):
                partial = PartialIndexColumns.from_corpus(
                    self._store.load_segment(meta)
                )
                self._store._m_index_rescanned.inc()
            partials.append(partial)
        return partials

    def build_index(
        self,
        origins: Optional[CachedOrigins] = None,
        name: Optional[str] = None,
    ) -> CorpusIndex:
        """Fold the partial indexes into a full :class:`CorpusIndex`.

        This is the incremental analysis path: when every segment's
        seal-time partial is intact, **no sealed segment file is
        re-read** — the index comes entirely from the ``.idx``
        summaries, bit-identical to ``CorpusIndex.build`` over
        :meth:`load` (property-test pinned).
        """
        with self._store.metrics.span("index-fold"):
            return CorpusIndex.from_partials(
                name or self.manifest.name,
                self.partial_indexes(),
                origins=origins,
            )

    def load_indexed(
        self,
        origins: Optional[CachedOrigins] = None,
        name: Optional[str] = None,
    ) -> AddressCorpus:
        """Materialize the folded corpus *from the partial indexes*.

        Reconstructs the record store from the folded index columns —
        the fold emits rows in exactly the record order :meth:`load`
        produces, so the corpus is bit-identical to a segment-by-segment
        merge — and attaches the index, all without reading a single
        ``.seg`` file when the partials are intact.  The result is
        cached as the reader's folded corpus.
        """
        index = self.build_index(origins=origins, name=name)
        corpus = AddressCorpus(name or self.manifest.name)
        records = corpus._records
        first = index.first
        last = index.last
        counts = index.counts
        for row, address in enumerate(index.addresses):
            records[address] = [first[row], last[row], counts[row]]
        corpus.attach_index(index)
        self._folded = corpus
        return corpus

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, address: int) -> bool:
        return address in self.load()

    def items(self):
        return self.load().items()

    def addresses(self):
        return self.load().addresses()

    def first_seen(self, address: int) -> float:
        return self.load().first_seen(address)

    def last_seen(self, address: int) -> float:
        return self.load().last_seen(address)

    def observation_count(self, address: int) -> int:
        return self.load().observation_count(address)

    def __repr__(self) -> str:
        return (
            f"SegmentedCorpusReader({self.manifest.name!r}, "
            f"{len(self.manifest.segments)} segments, "
            f"{self.manifest.total_records:,} records, "
            f"weeks={self.manifest.completed_weeks})"
        )
