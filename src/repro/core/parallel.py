"""Sharded, multi-process campaign execution with crash-safe checkpoints.

The serial :meth:`NTPCampaign.run` walks every device × day in one
process; at "Clusters in the Expanse"-scale populations that is
wall-clock bound on a single core.  This module partitions the
pool-client population into shards and runs each shard in a
``ProcessPoolExecutor`` worker.

Two properties make that safe:

* **Keyed RNG** — every capture decision draws from
  ``split_rng(seed, "capture", device_id, day)``, so a device's outcomes
  never depend on which other devices were evaluated, in which order, or
  in which process.  Merging per-shard corpora therefore reproduces the
  serial corpus *exactly*, for any shard count (the invariant the
  parallel tests assert record-for-record).
* **Deterministic worlds** — a worker rebuilds the world from its
  :class:`WorldConfig` (everything is derived from ``config.seed``), so
  only the small picklable :class:`ShardSpec` crosses the process
  boundary.  On fork-based platforms the parent's already-built world is
  inherited through :data:`_WORLD_CACHE` and never rebuilt; with spawn
  each worker builds once and caches it for all subsequent windows.

Failure containment is layered on top, because a months-long campaign
*will* lose workers (OOM kills, host reboots) and disks *will* corrupt
bytes:

* A shard whose worker raises — or dies outright, breaking the process
  pool — is retried up to ``max_shard_retries`` times with capped
  exponential backoff, rebuilding the pool when it broke.  A shard that
  keeps failing degrades to **inline** execution in the parent process
  rather than aborting the whole campaign.  Shards are only ever merged
  once, whatever mix of pool/retry/inline produced them, so the
  determinism invariant survives every recovery path.  Each recovery is
  recorded on ``campaign.shard_failures`` as a :class:`ShardFailure`.
* The campaign proceeds in week windows, and after each completed
  window the accumulated corpus is snapshotted through
  :func:`repro.core.storage.save_checkpoint` (atomic replace + CRC32
  footer + rotated prior generations).  ``resume_from=`` verifies the
  snapshot's integrity and falls back to the newest prior good
  generation when the latest is truncated or corrupt.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..faults.chaos import maybe_fail_shard
from ..obs import DEFAULT_SIZE_BUCKETS
from ..world.world import World
from .campaign import CampaignConfig, NTPCampaign
from .corpus import AddressCorpus
from .segments import (
    DEFAULT_SEGMENT_BYTES,
    SegmentBufferedCorpus,
    SegmentMeta,
    SegmentStore,
)
from .storage import resolve_resume_checkpoint, save_checkpoint

__all__ = [
    "ShardSpec",
    "ShardFailure",
    "run_shard",
    "run_shard_telemetry",
    "run_shard_segments",
    "run_campaign_parallel",
]

logger = logging.getLogger(__name__)

#: Worker-side world cache keyed by a stable digest of the world
#: config's repr, bounded to the single most recent entry — a process
#: that runs campaigns against several worlds (test suites, multi-world
#: studies) must not accumulate one fully-built world per config.
#: Fork-based executors inherit the parent's entry (primed by
#: :func:`run_campaign_parallel`); spawn-based workers populate it on
#: their first shard and reuse it across week windows.
_WORLD_CACHE: Dict[str, World] = {}


def _world_cache_key(world_config: object) -> str:
    """Stable, bounded-size cache key for a world config."""
    return hashlib.blake2b(
        repr(world_config).encode("utf-8"), digest_size=16
    ).hexdigest()


def _cache_world(key: str, world: World) -> None:
    """Install ``world`` as the process's single cached world."""
    if key not in _WORLD_CACHE:
        _WORLD_CACHE.clear()
    _WORLD_CACHE[key] = world

#: Frozen outage windows carried inside a picklable spec:
#: ``((asn, ((start, end), ...)), ...)``.
_OutageSpec = Tuple[Tuple[int, Tuple[Tuple[float, float], ...]], ...]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to run one shard of one week window."""

    world_config: object
    campaign_config: CampaignConfig
    shard_index: int
    shard_count: int
    start_week: int
    end_week: int
    outages: _OutageSpec = ()
    #: When set, the worker seals segment files into this directory and
    #: returns their manifest entries instead of a pickled corpus.
    segment_dir: Optional[str] = None
    segment_bytes: float = DEFAULT_SEGMENT_BYTES


@dataclass(frozen=True)
class ShardFailure:
    """One recovered shard failure, recorded on ``campaign.shard_failures``.

    ``action`` is ``"retried"`` when the shard was resubmitted to the
    pool and ``"inline"`` when retries were exhausted and the shard was
    recomputed in the parent process instead.  ``kind`` classifies the
    failure: ``"exception"`` (the worker raised), ``"worker-death"``
    (the worker process died, breaking the pool), or ``"timeout"`` (the
    shard overran ``shard_timeout`` and its worker was killed).
    """

    window: Tuple[int, int]
    shard_index: int
    attempt: int
    error: str
    action: str
    kind: str = "exception"


def _freeze_outages(outages: Dict[int, list]) -> _OutageSpec:
    return tuple(
        (asn, tuple((start, end) for start, end in windows))
        for asn, windows in sorted(outages.items())
    )


def _world_for(spec: ShardSpec) -> World:
    from ..world.population import build_world

    key = _world_cache_key(spec.world_config)
    world = _WORLD_CACHE.get(key)
    if world is None:
        world = build_world(spec.world_config)
        _cache_world(key, world)
    # Outages are injected after build, so they travel in the spec and
    # are re-applied here (idempotent for fork-inherited worlds).
    world.outages = {
        asn: list(windows) for asn, windows in spec.outages
    }
    return world


def _run_shard_inline(spec: ShardSpec) -> Tuple[AddressCorpus, dict]:
    """Collect one shard's week window, with no failure injection.

    Returns the shard corpus plus the shard campaign's telemetry
    snapshot, so the coordinating process can fold worker-side counters
    (queries evaluated, captures, injected faults) into its own
    registry — shard counters sum to exactly the serial campaign's.
    """
    campaign = NTPCampaign(_world_for(spec), spec.campaign_config)
    corpus = campaign.run(
        spec.start_week,
        spec.end_week,
        shard_index=spec.shard_index,
        shard_count=spec.shard_count,
    )
    return corpus, campaign.metrics.snapshot()


def run_shard(spec: ShardSpec) -> AddressCorpus:
    """Process-pool entry point: collect one shard's week window.

    Honours the ``REPRO_CHAOS_*`` failure-injection hooks (see
    :mod:`repro.faults.chaos`); the inline degradation path goes through
    :func:`_run_shard_inline` directly so a recovery run can never be
    re-killed by its own chaos configuration.
    """
    maybe_fail_shard(spec.shard_index)
    return _run_shard_inline(spec)[0]


def run_shard_telemetry(spec: ShardSpec) -> Tuple[AddressCorpus, dict]:
    """:func:`run_shard` plus the shard's metrics snapshot.

    The pool entry point :func:`run_campaign_parallel` actually submits
    — ``run_shard`` is kept for callers that only want the corpus.
    """
    maybe_fail_shard(spec.shard_index)
    return _run_shard_inline(spec)


def _run_shard_inline_segments(spec: ShardSpec) -> Tuple[List[dict], dict]:
    """Collect one shard's window, sealing segments instead of pickling.

    The shard's accumulation corpus is a :class:`SegmentBufferedCorpus`
    bounded by the spec's byte budget, so worker memory never grows with
    campaign length.  Returns the sealed segments' manifest entries (as
    small picklable JSON dicts) plus the shard campaign's telemetry
    snapshot.  Workers never touch the manifest — only the coordinator
    commits, and only after every returned segment is durably on disk;
    a retried shard regenerates byte-identical files under identical
    ids, so overwriting a dead attempt's leftovers is always safe.
    """
    if spec.segment_dir is None:
        raise ValueError("shard spec carries no segment directory")
    campaign = NTPCampaign(_world_for(spec), spec.campaign_config)
    store = SegmentStore(
        spec.segment_dir,
        name=campaign.corpus.name,
        segment_bytes=spec.segment_bytes,
        metrics=campaign.metrics,
    )
    # The context manager seals the unsealed tail on clean exit — a
    # window that never crosses the flush budget still reaches disk.
    with SegmentBufferedCorpus(
        campaign.corpus.name,
        store,
        shard_index=spec.shard_index,
        write_fault=campaign.fault_injector,
    ) as buffered:
        buffered.set_window(spec.start_week * 7, spec.end_week * 7)
        campaign.corpus = buffered
        campaign.run(
            spec.start_week,
            spec.end_week,
            shard_index=spec.shard_index,
            shard_count=spec.shard_count,
        )
    metas = [meta.to_json() for meta in buffered.take_sealed()]
    return metas, campaign.metrics.snapshot()


def run_shard_segments(spec: ShardSpec) -> Tuple[List[dict], dict]:
    """Pool entry point for segmented execution (chaos hooks honoured)."""
    maybe_fail_shard(spec.shard_index)
    return _run_shard_inline_segments(spec)


def run_campaign_parallel(
    campaign: NTPCampaign,
    *,
    workers: int = 1,
    shard_count: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_interval_weeks: int = 1,
    resume_from: Optional[Union[str, Path]] = None,
    segment_store: Optional[SegmentStore] = None,
    resume_from_segments: bool = False,
    start_week: int = 0,
    end_week: Optional[int] = None,
    max_shard_retries: int = 2,
    retry_backoff: float = 0.5,
    retry_backoff_cap: float = 30.0,
    shard_timeout: Optional[float] = None,
) -> AddressCorpus:
    """Run a campaign sharded across processes, checkpointing as it goes.

    The result accumulates into ``campaign.corpus`` (exactly as a serial
    :meth:`NTPCampaign.run` would) and is also returned.

    * ``workers`` — process count; 1 runs in-process (no pool) but still
      honours windowed checkpointing.
    * ``shard_count`` — device partitions per window; defaults to
      ``workers``.  Any value yields the identical merged corpus.
    * ``checkpoint`` — path snapshotted atomically after every
      ``checkpoint_interval_weeks`` completed weeks.
    * ``resume_from`` — a previous checkpoint; collection restarts at
      the first week that snapshot had not completed.  Corrupt or
      truncated generations are skipped (logged) in favour of the
      newest prior good one.
    * ``segment_store`` — segmented persistence (mutually exclusive
      with ``checkpoint``): every shard seals budget-bounded segment
      files instead of returning a pickled corpus, and the manifest is
      committed after each completed window, so neither workers nor the
      coordinator ever hold the whole corpus while collecting.  The
      final materialized corpus is bit-identical to the monolithic run
      for any flush budget and shard count.
    * ``resume_from_segments`` — continue from ``segment_store``'s
      committed manifest watermark (no corpus load needed).  Combined
      with ``resume_from``, whichever covers more completed weeks wins;
      a winning checkpoint is imported into the store as one segment.
    * ``max_shard_retries`` — failed shards are resubmitted this many
      times (with capped exponential backoff starting at
      ``retry_backoff`` seconds) before degrading to inline execution
      in the parent.  Every recovery is recorded on
      ``campaign.shard_failures``.
    * ``shard_timeout`` — wall-clock budget in seconds for one round of
      shard submissions.  Without it a hung worker stalls the campaign
      forever (retry logic only fires on raised exceptions and broken
      pools); with it an overrunning shard's future is cancelled, the
      pool's workers are killed and the pool rebuilt, and the attempt
      is recorded as a :class:`ShardFailure` with ``kind="timeout"``
      before the normal capped-backoff retry path.
    """
    config = campaign.config
    if end_week is None:
        end_week = config.weeks
    if not 0 <= start_week < end_week <= config.weeks:
        raise ValueError(f"bad week window: [{start_week}, {end_week})")
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if shard_count is None:
        shard_count = workers
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    if checkpoint_interval_weeks < 1:
        raise ValueError(
            f"checkpoint interval must be >= 1 week: "
            f"{checkpoint_interval_weeks}"
        )
    if max_shard_retries < 0:
        raise ValueError(
            f"max_shard_retries must be >= 0: {max_shard_retries}"
        )
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0: {retry_backoff}")
    if retry_backoff_cap <= 0:
        raise ValueError(
            f"retry_backoff_cap must be > 0: {retry_backoff_cap}"
        )
    if shard_timeout is not None and shard_timeout <= 0:
        raise ValueError(f"shard_timeout must be > 0: {shard_timeout}")
    if segment_store is not None and checkpoint is not None:
        raise ValueError(
            "checkpoint= and segment_store= are mutually exclusive "
            "persistence modes; segmented runs resume from the manifest"
        )
    if resume_from_segments and segment_store is None:
        raise ValueError("resume_from_segments=True needs a segment_store")

    metrics = campaign.metrics
    m_attempts = metrics.counter(
        "repro_shard_attempts_total", "shard executions submitted to the pool"
    )
    m_retries = metrics.counter(
        "repro_shard_retries_total", "failed shards resubmitted to the pool"
    )
    m_inline = metrics.counter(
        "repro_shard_inline_total",
        "shards degraded to inline execution after exhausting retries",
    )
    m_failures = metrics.counter(
        "repro_shard_failures_total",
        "recovered shard failures (matches campaign.shard_failures)",
    )
    m_rebuilds = metrics.counter(
        "repro_pool_rebuilds_total", "broken process pools rebuilt"
    )
    m_timeouts = metrics.counter(
        "repro_shard_timeouts_total",
        "shards killed for overrunning the wall-clock deadline",
    )
    m_checkpoints = metrics.counter(
        "repro_checkpoints_saved_total", "checkpoint snapshots written"
    )
    m_merge = metrics.histogram(
        "repro_shard_merge_records",
        "per-shard corpus sizes at merge time",
        buckets=DEFAULT_SIZE_BUCKETS,
    )

    current_week = start_week
    manifest = None
    if segment_store is not None:
        manifest = segment_store.load_manifest()
        if (
            manifest is not None
            and manifest.segments
            and not resume_from_segments
            and resume_from is None
        ):
            raise ValueError(
                f"segment directory {segment_store.directory} already holds "
                "a committed manifest; pass resume_from_segments=True to "
                "continue it, or point at a fresh directory"
            )
        if resume_from_segments and manifest is None and resume_from is None:
            raise FileNotFoundError(
                f"no segment manifest in {segment_store.directory}"
            )
    if resume_from is not None:
        snapshot, completed_weeks, used, skipped, saved_metrics = (
            resolve_resume_checkpoint(resume_from, with_metrics=True)
        )
        for bad_path, error in skipped:
            logger.warning(
                "skipping corrupt checkpoint generation %s: %s",
                bad_path,
                error,
            )
        if skipped:
            logger.warning("resuming from fallback checkpoint %s", used)
        if completed_weeks > end_week:
            raise ValueError(
                f"checkpoint is ahead of the requested window: "
                f"{completed_weeks} > {end_week}"
            )
        manifest_weeks = manifest.completed_weeks if manifest is not None else 0
        if segment_store is not None and completed_weeks <= manifest_weeks:
            # The store's manifest already covers at least as much of
            # the campaign as the checkpoint: resume from the manifest
            # watermark without materializing anything.
            logger.info(
                "segment manifest (%d weeks) covers checkpoint %s "
                "(%d weeks); resuming from the manifest",
                manifest_weeks,
                used,
                completed_weeks,
            )
            if manifest.metrics is not None:
                metrics.merge_snapshot(manifest.metrics)
            current_week = max(current_week, manifest_weeks)
        elif segment_store is not None:
            # Migration import: the checkpoint is further along, so it
            # becomes the store's single baseline segment, replacing any
            # shorter segment history (replace= avoids double-counting
            # overlapped observations).
            obsolete = list(manifest.segments) if manifest is not None else []
            imported = segment_store.write_segment(
                snapshot,
                segment_id=f"import-w{completed_weeks:04d}",
                start_day=0,
                end_day=completed_weeks * 7,
            )
            segment_store.commit(
                [imported],
                completed_weeks=completed_weeks,
                metrics=saved_metrics,
                replace=True,
            )
            for old in obsolete:
                with contextlib.suppress(FileNotFoundError):
                    segment_store.segment_path(old).unlink()
            if saved_metrics is not None:
                metrics.merge_snapshot(saved_metrics)
            current_week = max(current_week, completed_weeks)
        else:
            campaign.corpus.merge(snapshot)
            if saved_metrics is not None:
                # Cumulative telemetry: the resumed run reports the whole
                # campaign's counters, not just the post-resume remainder.
                metrics.merge_snapshot(saved_metrics)
            current_week = max(current_week, completed_weeks)
    elif resume_from_segments and manifest is not None:
        if manifest.completed_weeks > end_week:
            raise ValueError(
                f"segment manifest is ahead of the requested window: "
                f"{manifest.completed_weeks} > {end_week}"
            )
        if manifest.metrics is not None:
            metrics.merge_snapshot(manifest.metrics)
        current_week = max(current_week, manifest.completed_weeks)

    def windows():
        week = current_week
        while week < end_week:
            yield week, min(week + checkpoint_interval_weeks, end_week)
            week = week + checkpoint_interval_weeks

    outages = _freeze_outages(campaign.world.outages)

    if workers == 1:
        if segment_store is not None:
            # Serial segmented: the campaign accumulates into a
            # budget-bounded buffer that seals segment files as it
            # goes; each window ends with a manifest commit moving the
            # watermark, so a crash resumes at the last window edge.
            # The context manager backstops the per-window close():
            # even if a future edit drops a window's explicit seal, no
            # buffered tail outlives the campaign unsealed.
            with SegmentBufferedCorpus(
                campaign.corpus.name,
                segment_store,
                write_fault=campaign.fault_injector,
            ) as buffered:
                campaign.corpus = buffered
                for window_start, window_end in windows():
                    buffered.set_window(window_start * 7, window_end * 7)
                    with metrics.span("campaign-window"):
                        campaign.run(window_start, window_end)
                    buffered.close()
                    segment_store.commit(
                        buffered.take_sealed(),
                        completed_weeks=window_end,
                        metrics=metrics.snapshot(),
                    )
            campaign.corpus = segment_store.reader().load(buffered.name)
            return campaign.corpus
        for window_start, window_end in windows():
            with metrics.span("campaign-window"):
                campaign.run(window_start, window_end)
            if checkpoint is not None:
                save_checkpoint(
                    campaign.corpus,
                    checkpoint,
                    window_end,
                    metrics=metrics.snapshot(),
                )
                m_checkpoints.inc()
        return campaign.corpus

    segmented = segment_store is not None
    shard_task = run_shard_segments if segmented else run_shard_telemetry
    inline_task = (
        _run_shard_inline_segments if segmented else _run_shard_inline
    )

    def specs_for(window_start: int, window_end: int) -> List[ShardSpec]:
        return [
            ShardSpec(
                world_config=campaign.world.config,
                campaign_config=config,
                shard_index=index,
                shard_count=shard_count,
                start_week=window_start,
                end_week=window_end,
                outages=outages,
                segment_dir=(
                    str(segment_store.directory) if segmented else None
                ),
                segment_bytes=(
                    segment_store.segment_bytes
                    if segmented
                    else DEFAULT_SEGMENT_BYTES
                ),
            )
            for index in range(shard_count)
        ]

    def backoff_delay(attempt: int) -> float:
        if retry_backoff <= 0:
            return 0.0
        return min(retry_backoff_cap, retry_backoff * (2 ** (attempt - 1)))

    def collect_window(
        window_start: int, window_end: int, pool_box
    ) -> List[SegmentMeta]:
        window = (window_start, window_end)
        specs = specs_for(window_start, window_end)
        # Completed shard results keyed by shard index: a shard is
        # merged exactly once, no matter how many attempts (or which
        # execution path) produced it.
        completed: Dict[int, Tuple[object, dict]] = {}
        attempts = {index: 0 for index in range(shard_count)}
        pending = list(range(shard_count))
        while pending:
            futures = {}
            try:
                for index in pending:
                    futures[index] = pool_box[0].submit(
                        shard_task, specs[index]
                    )
                    m_attempts.inc()
            except BrokenProcessPool:
                # The pool died before this round's submissions went
                # out (e.g. broken by the previous window); rebuild and
                # resubmit without charging the shards an attempt.
                pool_box[0] = _rebuild_pool(pool_box[0], workers)
                m_rebuilds.inc()
                continue
            failed: Dict[int, Tuple[str, str]] = {}
            pool_broken = False
            timed_out = False
            deadline = (
                time.monotonic() + shard_timeout
                if shard_timeout is not None
                else None
            )
            for index in pending:
                try:
                    if deadline is None:
                        completed[index] = futures[index].result()
                    else:
                        remaining = max(0.0, deadline - time.monotonic())
                        completed[index] = futures[index].result(
                            timeout=remaining
                        )
                except FutureTimeout:
                    # The worker is hung (or starved behind one that
                    # is); cancel what we can and kill the pool below.
                    futures[index].cancel()
                    timed_out = True
                    failed[index] = (
                        "timeout",
                        f"shard overran {shard_timeout}s wall-clock "
                        "deadline; worker killed",
                    )
                    m_timeouts.inc()
                except BrokenProcessPool as error:
                    pool_broken = True
                    failed[index] = (
                        "worker-death",
                        f"worker died: {error or 'process pool broken'}",
                    )
                except Exception as error:
                    failed[index] = (
                        "exception",
                        f"{type(error).__name__}: {error}",
                    )
            if timed_out:
                # A cancelled future does not stop a running worker;
                # the hung process must die for the pool to be usable.
                pool_box[0] = _rebuild_pool(pool_box[0], workers, kill=True)
                m_rebuilds.inc()
            elif pool_broken:
                pool_box[0] = _rebuild_pool(pool_box[0], workers)
                m_rebuilds.inc()
            retry: List[int] = []
            for index in sorted(failed):
                kind, error_text = failed[index]
                attempts[index] += 1
                action = (
                    "retried"
                    if attempts[index] <= max_shard_retries
                    else "inline"
                )
                campaign.shard_failures.append(
                    ShardFailure(
                        window=window,
                        shard_index=index,
                        attempt=attempts[index],
                        error=error_text,
                        action=action,
                        kind=kind,
                    )
                )
                m_failures.inc()
                logger.warning(
                    "shard %d of window %s failed (attempt %d, %s): %s -> %s",
                    index,
                    window,
                    attempts[index],
                    kind,
                    error_text,
                    action,
                )
                if action == "retried":
                    m_retries.inc()
                    retry.append(index)
                else:
                    # Retries exhausted: contain the failure by
                    # computing the shard in this process (the chaos
                    # hooks are bypassed on this path).
                    m_inline.inc()
                    completed[index] = inline_task(specs[index])
            if retry:
                delay = backoff_delay(max(attempts[i] for i in retry))
                if delay > 0:
                    time.sleep(delay)
            pending = retry
        # Merge in sorted shard order so both the corpus and the folded
        # telemetry are independent of completion order.
        batch: List[SegmentMeta] = []
        if segmented:
            for index in sorted(completed):
                metas, shard_snapshot = completed[index]
                m_merge.observe(sum(doc["records"] for doc in metas))
                batch.extend(SegmentMeta.from_json(doc) for doc in metas)
                metrics.merge_snapshot(shard_snapshot)
        else:
            for index in sorted(completed):
                shard_corpus, shard_snapshot = completed[index]
                m_merge.observe(len(shard_corpus))
                campaign.corpus.merge(shard_corpus)
                metrics.merge_snapshot(shard_snapshot)
        return batch

    # Prime the cache so fork-based workers inherit the built world
    # instead of rebuilding it from config.
    _cache_world(_world_cache_key(campaign.world.config), campaign.world)
    pool_box = [ProcessPoolExecutor(max_workers=workers)]
    try:
        for window_start, window_end in windows():
            with metrics.span("campaign-window"):
                batch = collect_window(window_start, window_end, pool_box)
            if segmented:
                # Every segment in the batch is durably on disk (the
                # workers that produced them have returned), so naming
                # them in the manifest can never reference a torn file.
                segment_store.commit(
                    batch,
                    completed_weeks=window_end,
                    metrics=metrics.snapshot(),
                )
            elif checkpoint is not None:
                save_checkpoint(
                    campaign.corpus,
                    checkpoint,
                    window_end,
                    metrics=metrics.snapshot(),
                )
                m_checkpoints.inc()
    finally:
        pool_box[0].shutdown()
    if segmented:
        # The parent never held shard corpora; materialize the final
        # fold from the committed manifest (bit-identical to the
        # monolithic run for any budget and shard count).
        campaign.corpus = segment_store.reader().load(campaign.corpus.name)
    return campaign.corpus


def _rebuild_pool(
    broken: ProcessPoolExecutor, workers: int, kill: bool = False
) -> ProcessPoolExecutor:
    """Replace a broken process pool with a fresh one.

    With ``kill=True`` every worker process is killed first — the path
    taken after a shard timeout, where a worker is hung rather than
    dead and ``shutdown(wait=False)`` alone would leak it.
    """
    if kill:
        for process in list(getattr(broken, "_processes", {}).values()):
            with contextlib.suppress(Exception):
                process.kill()
    broken.shutdown(wait=False)
    logger.warning("process pool broke; rebuilding with %d workers", workers)
    return ProcessPoolExecutor(max_workers=workers)
