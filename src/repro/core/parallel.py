"""Sharded, multi-process campaign execution with crash-safe checkpoints.

The serial :meth:`NTPCampaign.run` walks every device × day in one
process; at "Clusters in the Expanse"-scale populations that is
wall-clock bound on a single core.  This module partitions the
pool-client population into shards and runs each shard in a
``ProcessPoolExecutor`` worker.

Two properties make that safe:

* **Keyed RNG** — every capture decision draws from
  ``split_rng(seed, "capture", device_id, day)``, so a device's outcomes
  never depend on which other devices were evaluated, in which order, or
  in which process.  Merging per-shard corpora therefore reproduces the
  serial corpus *exactly*, for any shard count (the invariant the
  parallel tests assert record-for-record).
* **Deterministic worlds** — a worker rebuilds the world from its
  :class:`WorldConfig` (everything is derived from ``config.seed``), so
  only the small picklable :class:`ShardSpec` crosses the process
  boundary.  On fork-based platforms the parent's already-built world is
  inherited through :data:`_WORLD_CACHE` and never rebuilt; with spawn
  each worker builds once and caches it for all subsequent windows.

Crash safety is layered on top: the campaign proceeds in week windows,
and after each completed window the accumulated corpus is snapshotted
through :func:`repro.core.storage.save_checkpoint` (temp file +
``os.replace``, so an interrupted write never destroys the previous
snapshot).  ``resume_from=`` restarts an interrupted run at the last
completed window.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..world.world import World
from .campaign import CampaignConfig, NTPCampaign
from .corpus import AddressCorpus
from .storage import load_checkpoint, save_checkpoint

__all__ = ["ShardSpec", "run_shard", "run_campaign_parallel"]

#: Worker-side world cache keyed by the world config's repr.  Fork-based
#: executors inherit the parent's entry (primed by
#: :func:`run_campaign_parallel`); spawn-based workers populate it on
#: their first shard and reuse it across week windows.
_WORLD_CACHE: Dict[str, World] = {}

#: Frozen outage windows carried inside a picklable spec:
#: ``((asn, ((start, end), ...)), ...)``.
_OutageSpec = Tuple[Tuple[int, Tuple[Tuple[float, float], ...]], ...]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to run one shard of one week window."""

    world_config: object
    campaign_config: CampaignConfig
    shard_index: int
    shard_count: int
    start_week: int
    end_week: int
    outages: _OutageSpec = ()


def _freeze_outages(outages: Dict[int, list]) -> _OutageSpec:
    return tuple(
        (asn, tuple((start, end) for start, end in windows))
        for asn, windows in sorted(outages.items())
    )


def _world_for(spec: ShardSpec) -> World:
    from ..world.population import build_world

    key = repr(spec.world_config)
    world = _WORLD_CACHE.get(key)
    if world is None:
        world = build_world(spec.world_config)
        _WORLD_CACHE[key] = world
    # Outages are injected after build, so they travel in the spec and
    # are re-applied here (idempotent for fork-inherited worlds).
    world.outages = {
        asn: list(windows) for asn, windows in spec.outages
    }
    return world


def run_shard(spec: ShardSpec) -> AddressCorpus:
    """Process-pool entry point: collect one shard's week window."""
    campaign = NTPCampaign(_world_for(spec), spec.campaign_config)
    return campaign.run(
        spec.start_week,
        spec.end_week,
        shard_index=spec.shard_index,
        shard_count=spec.shard_count,
    )


def run_campaign_parallel(
    campaign: NTPCampaign,
    *,
    workers: int = 1,
    shard_count: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    checkpoint_interval_weeks: int = 1,
    resume_from: Optional[Union[str, Path]] = None,
    start_week: int = 0,
    end_week: Optional[int] = None,
) -> AddressCorpus:
    """Run a campaign sharded across processes, checkpointing as it goes.

    The result accumulates into ``campaign.corpus`` (exactly as a serial
    :meth:`NTPCampaign.run` would) and is also returned.

    * ``workers`` — process count; 1 runs in-process (no pool) but still
      honours windowed checkpointing.
    * ``shard_count`` — device partitions per window; defaults to
      ``workers``.  Any value yields the identical merged corpus.
    * ``checkpoint`` — path snapshotted atomically after every
      ``checkpoint_interval_weeks`` completed weeks.
    * ``resume_from`` — a previous checkpoint; collection restarts at
      the first week that snapshot had not completed.
    """
    config = campaign.config
    if end_week is None:
        end_week = config.weeks
    if not 0 <= start_week < end_week <= config.weeks:
        raise ValueError(f"bad week window: [{start_week}, {end_week})")
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if shard_count is None:
        shard_count = workers
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    if checkpoint_interval_weeks < 1:
        raise ValueError(
            f"checkpoint interval must be >= 1 week: "
            f"{checkpoint_interval_weeks}"
        )

    current_week = start_week
    if resume_from is not None:
        snapshot, completed_weeks = load_checkpoint(resume_from)
        if completed_weeks > end_week:
            raise ValueError(
                f"checkpoint is ahead of the requested window: "
                f"{completed_weeks} > {end_week}"
            )
        campaign.corpus.merge(snapshot)
        current_week = max(current_week, completed_weeks)

    def windows():
        week = current_week
        while week < end_week:
            yield week, min(week + checkpoint_interval_weeks, end_week)
            week = week + checkpoint_interval_weeks

    outages = _freeze_outages(campaign.world.outages)

    def collect_window(window_start: int, window_end: int, pool) -> None:
        if pool is None:
            campaign.run(window_start, window_end)
            return
        specs = [
            ShardSpec(
                world_config=campaign.world.config,
                campaign_config=config,
                shard_index=index,
                shard_count=shard_count,
                start_week=window_start,
                end_week=window_end,
                outages=outages,
            )
            for index in range(shard_count)
        ]
        for shard_corpus in pool.map(run_shard, specs):
            campaign.corpus.merge(shard_corpus)

    if workers == 1:
        for window_start, window_end in windows():
            collect_window(window_start, window_end, None)
            if checkpoint is not None:
                save_checkpoint(campaign.corpus, checkpoint, window_end)
        return campaign.corpus

    # Prime the cache so fork-based workers inherit the built world
    # instead of rebuilding it from config.
    _WORLD_CACHE[repr(campaign.world.config)] = campaign.world
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for window_start, window_end in windows():
            collect_window(window_start, window_end, pool)
            if checkpoint is not None:
                save_checkpoint(campaign.corpus, checkpoint, window_end)
    return campaign.corpus
