"""EUI-64 tracking analysis (paper §5.1–§5.2, Figures 6 and 7).

From a corpus, every EUI-64 address is reduced to its embedded MAC; each
MAC's sightings — which /64s, ASes and countries it appeared in, when —
are summarized into a :class:`MACTrack`, then classified with the paper's
heuristics:

=====================  =========  ==========  ================
class                  ASes       countries   /64 transitions
=====================  =========  ==========  ================
mostly static          low (=1)   low (=1)    low (<=10)
prefix reassignment    low        low         high (>10)
changing providers     high (>1)  low         low
likely user movement   high       low         high
likely MAC reuse       high       high        any
=====================  =========  ==========  ================

Only MACs appearing in at least two /64s are classified (the paper's
14.9M of 171.6M = 8.7%).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..addr.eui64 import expected_random_eui64
from ..addr.ipv6 import slash64_of
from .corpus import AddressCorpus

__all__ = [
    "TrackingClass",
    "MACTrack",
    "TrackingReport",
    "TRANSITION_THRESHOLD",
    "build_mac_tracks",
    "analyze_tracking",
]

#: More than this many /64 transitions counts as "high" (paper: 10).
TRANSITION_THRESHOLD = 10


class TrackingClass(Enum):
    """The paper's five-way explanation taxonomy for mobile EUI-64 MACs."""

    MOSTLY_STATIC = "mostly_static"
    PREFIX_REASSIGNMENT = "likely_prefix_reassignment"
    CHANGING_PROVIDERS = "changing_providers"
    USER_MOVEMENT = "likely_user_movement"
    MAC_REUSE = "likely_mac_reuse"


@dataclass(frozen=True)
class MACTrack:
    """Aggregated sightings of one embedded MAC address."""

    mac: int
    addresses: Tuple[int, ...]
    slash64s: Tuple[int, ...]       # distinct, in first-seen order
    asns: Tuple[int, ...]           # distinct
    countries: Tuple[str, ...]      # distinct
    transitions: int                # /64 changes along the sighting order
    first_seen: float
    last_seen: float
    #: (first_seen, /64, asn) sighting sequence — Fig. 7 timeline input.
    timeline: Tuple[Tuple[float, int, Optional[int]], ...]

    @property
    def lifetime(self) -> float:
        """Span between first and last sighting."""
        return self.last_seen - self.first_seen

    @property
    def multi_slash64(self) -> bool:
        """True when the MAC appeared in at least two /64s."""
        return len(self.slash64s) >= 2

    def classify(self) -> TrackingClass:
        """Apply the paper's §5.2 heuristics."""
        high_asns = len(self.asns) > 1
        high_countries = len(self.countries) > 1
        high_transitions = self.transitions > TRANSITION_THRESHOLD
        if high_asns and high_countries:
            return TrackingClass.MAC_REUSE
        if high_asns and high_transitions:
            return TrackingClass.USER_MOVEMENT
        if high_asns:
            return TrackingClass.CHANGING_PROVIDERS
        if high_transitions:
            return TrackingClass.PREFIX_REASSIGNMENT
        return TrackingClass.MOSTLY_STATIC


def build_mac_tracks(
    corpus: AddressCorpus,
    origin: Callable[[int], Optional[int]],
    country_of: Callable[[int], Optional[str]],
) -> Dict[int, MACTrack]:
    """Aggregate every embedded MAC's sightings into a track.

    With a :class:`~repro.core.index.CorpusIndex` attached to the
    corpus, sightings are read straight from the MAC / first-seen /
    /64 columns; otherwise each EUI-64 address is re-derived from the
    record store.  Both paths produce identical tracks.
    """
    index = getattr(corpus, "index", None)
    tracks: Dict[int, MACTrack] = {}
    if index is not None:
        groups = (
            (mac, rows) for mac, rows in index.eui64_rows().items()
        )
    else:
        groups = iter(corpus.eui64_mac_addresses().items())
    for mac, sightings in groups:
        if index is not None:
            # Rows are in record order, so this stable sort matches the
            # naive sorted(addresses, key=corpus.first_seen) exactly.
            rows = sorted(sightings, key=index.first.__getitem__)
            ordered = [index.addresses[row] for row in rows]
            firsts = [index.first[row] for row in rows]
            prefix64s = [index.slash64s[row] for row in rows]
            last_seen = max(index.last[row] for row in rows)
        else:
            ordered = sorted(sightings, key=corpus.first_seen)
            firsts = [corpus.first_seen(address) for address in ordered]
            prefix64s = [slash64_of(address) for address in ordered]
            last_seen = max(
                corpus.last_seen(address) for address in ordered
            )
        slash64s: List[int] = []
        transitions = 0
        timeline: List[Tuple[float, int, Optional[int]]] = []
        previous64: Optional[int] = None
        for position, address in enumerate(ordered):
            prefix64 = prefix64s[position]
            if prefix64 not in slash64s:
                slash64s.append(prefix64)
            if previous64 is not None and prefix64 != previous64:
                transitions += 1
            previous64 = prefix64
            timeline.append((firsts[position], prefix64, origin(address)))
        asns = tuple(
            sorted({asn for _, _, asn in timeline if asn is not None})
        )
        countries = tuple(
            sorted(
                {
                    country
                    for country in (
                        country_of(address) for address in ordered
                    )
                    if country is not None
                }
            )
        )
        tracks[mac] = MACTrack(
            mac=mac,
            addresses=tuple(ordered),
            slash64s=tuple(slash64s),
            asns=asns,
            countries=countries,
            transitions=transitions,
            first_seen=firsts[0],
            last_seen=last_seen,
            timeline=tuple(timeline),
        )
    return tracks


@dataclass
class TrackingReport:
    """The §5 headline numbers plus the classified track population."""

    corpus_size: int
    eui64_addresses: int
    unique_macs: int
    expected_random: float
    tracks: Dict[int, MACTrack]
    multi_slash64_macs: int
    classes: Dict[TrackingClass, int]

    @property
    def eui64_fraction(self) -> float:
        """EUI-64 share of the corpus (paper: 3%)."""
        if self.corpus_size == 0:
            raise ValueError("empty corpus")
        return self.eui64_addresses / self.corpus_size

    @property
    def multi_slash64_fraction(self) -> float:
        """Share of MACs seen in >=2 /64s (paper: 8.7%)."""
        if self.unique_macs == 0:
            raise ValueError("no EUI-64 MACs")
        return self.multi_slash64_macs / self.unique_macs

    def class_fractions(self) -> Dict[TrackingClass, float]:
        """Class shares among multi-/64 MACs (paper: 86/8/5/0.44/0.01%)."""
        if self.multi_slash64_macs == 0:
            raise ValueError("no multi-/64 MACs to classify")
        return {
            cls: count / self.multi_slash64_macs
            for cls, count in self.classes.items()
        }

    def exemplar(self, cls: TrackingClass) -> Optional[MACTrack]:
        """A representative track of a class (Fig. 7 exemplar extraction).

        Picks the classified track with the most sightings, preferring
        longer observation spans — the kind the paper plots.
        """
        candidates = [
            track
            for track in self.tracks.values()
            if track.multi_slash64 and track.classify() is cls
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda track: (len(track.timeline), track.lifetime, -track.mac),
        )

    def slash64_counts(self) -> List[int]:
        """Distinct-/64 counts per MAC (Fig. 6b CCDF input)."""
        return [len(track.slash64s) for track in self.tracks.values()]


def analyze_tracking(
    corpus: AddressCorpus,
    origin: Callable[[int], Optional[int]],
    country_of: Callable[[int], Optional[str]],
) -> TrackingReport:
    """Run the full §5.1–§5.2 analysis over a corpus."""
    tracks = build_mac_tracks(corpus, origin, country_of)
    eui64_addresses = sum(len(track.addresses) for track in tracks.values())
    classes: Counter = Counter()
    multi = 0
    for track in tracks.values():
        if track.multi_slash64:
            multi += 1
            classes[track.classify()] += 1
    return TrackingReport(
        corpus_size=len(corpus),
        eui64_addresses=eui64_addresses,
        unique_macs=len(tracks),
        expected_random=expected_random_eui64(len(corpus)),
        tracks=tracks,
        multi_slash64_macs=multi,
        classes={cls: classes.get(cls, 0) for cls in TrackingClass},
    )
