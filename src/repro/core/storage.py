"""Corpus persistence.

Long campaigns need checkpointing and offline analysis needs to reload
collected corpora without re-running the world.  Two formats:

* **text** (``.corpus.csv``) — one ``address,first,last,count`` line per
  record, human-greppable, with a header carrying the corpus name.
* **binary** (``.corpus.bin``) — fixed-size records (16-byte address,
  two float64 timestamps, observation count) behind a magic/version
  header; ~3x smaller and ~5x faster to load than text.  The current
  **v2** record carries a uint64 count; the original v1 record used a
  uint32 count and overflowed at 2^32−1 sightings — v1 files still load.

Records are written in ascending address order, so two corpora with the
same contents serialize to identical bytes regardless of the order the
observations arrived in (the sharded executor relies on this for its
determinism checks).  Both formats round-trip exactly (timestamps are
preserved bit-for-bit in binary and via ``repr`` precision in text).

Path-based saves (:func:`save_corpus`, :func:`save_checkpoint`) are
**atomic**: data is written to a sibling temp file, fsynced, then moved
over the destination with ``os.replace`` — a crash mid-write leaves the
previous good file untouched.  Checkpoint files wrap a binary corpus in
a small header carrying the number of completed campaign weeks, which is
what lets an interrupted sharded run resume at the last finished window.
"""

from __future__ import annotations

import contextlib
import os
import struct
from pathlib import Path
from typing import BinaryIO, Iterator, TextIO, Tuple, Union

from ..addr.ipv6 import format_address, parse
from .corpus import AddressCorpus

__all__ = [
    "save_corpus_text",
    "load_corpus_text",
    "save_corpus_binary",
    "load_corpus_binary",
    "save_corpus",
    "load_corpus",
    "save_checkpoint",
    "load_checkpoint",
]

_TEXT_HEADER = "# repro-corpus v1 name="
_BINARY_MAGIC_V1 = b"RPC1"
_BINARY_MAGIC_V2 = b"RPC2"
_RECORD_V1 = struct.Struct(">16s d d I")
_RECORD_V2 = struct.Struct(">16s d d Q")
_MAX_COUNT = {1: 0xFFFFFFFF, 2: 0xFFFFFFFFFFFFFFFF}

#: Checkpoint container: magic, then uint32 completed-week counter, then
#: an ordinary binary corpus.
_CHECKPOINT_MAGIC = b"RPCW"


def save_corpus_text(corpus: AddressCorpus, stream: TextIO) -> int:
    """Write the text format; returns the number of records written."""
    name = corpus.name
    if "\n" in name or "\r" in name:
        raise ValueError(
            f"corpus name would corrupt the text header: {name!r}"
        )
    stream.write(f"{_TEXT_HEADER}{name}\n")
    stream.write("address,first_seen,last_seen,count\n")
    written = 0
    for address, (first, last, count) in sorted(corpus.items()):
        stream.write(
            f"{format_address(address)},{first!r},{last!r},{count}\n"
        )
        written += 1
    return written


def load_corpus_text(stream: TextIO) -> AddressCorpus:
    """Read the text format back into a corpus."""
    header = stream.readline().rstrip("\n")
    if not header.startswith(_TEXT_HEADER):
        raise ValueError(f"not a repro corpus file: {header[:40]!r}")
    name = header[len(_TEXT_HEADER):]
    corpus = AddressCorpus(name or "loaded")
    column_line = stream.readline()
    if not column_line.startswith("address,"):
        raise ValueError("missing column header")
    for line_number, line in enumerate(stream, start=3):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValueError(f"malformed record on line {line_number}: {line!r}")
        address, first, last, count = parts
        try:
            corpus.record_interval(
                parse(address), float(first), float(last), int(count)
            )
        except ValueError as error:
            raise ValueError(
                f"bad record on line {line_number}: {error}"
            ) from error
    return corpus


def save_corpus_binary(
    corpus: AddressCorpus, stream: BinaryIO, version: int = 2
) -> int:
    """Write the binary format; returns the number of records written.

    ``version`` selects the record layout: 2 (default, uint64 count) or
    1 (the legacy uint32 layout, kept so compatibility tests can produce
    old-style files).  Counts outside the selected layout's range raise
    ``ValueError`` instead of a bare ``struct.error``.
    """
    if version == 2:
        magic, record = _BINARY_MAGIC_V2, _RECORD_V2
    elif version == 1:
        magic, record = _BINARY_MAGIC_V1, _RECORD_V1
    else:
        raise ValueError(f"unknown binary corpus version: {version}")
    max_count = _MAX_COUNT[version]
    name_bytes = corpus.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("corpus name too long for the binary header")
    stream.write(magic)
    stream.write(len(name_bytes).to_bytes(2, "big"))
    stream.write(name_bytes)
    stream.write(len(corpus).to_bytes(8, "big"))
    written = 0
    for address, (first, last, count) in sorted(corpus.items()):
        if count > max_count:
            raise ValueError(
                f"observation count {count:,} of "
                f"{format_address(address)} exceeds the uint"
                f"{32 if version == 1 else 64} range of binary format "
                f"v{version}"
                + ("; save as v2 instead" if version == 1 else "")
            )
        stream.write(
            record.pack(address.to_bytes(16, "big"), first, last, count)
        )
        written += 1
    return written


def load_corpus_binary(stream: BinaryIO) -> AddressCorpus:
    """Read the binary format (v1 or v2) back into a corpus."""
    magic = stream.read(4)
    if magic == _BINARY_MAGIC_V2:
        record = _RECORD_V2
    elif magic == _BINARY_MAGIC_V1:
        record = _RECORD_V1
    else:
        raise ValueError(f"not a repro binary corpus: magic {magic!r}")
    name_length = int.from_bytes(stream.read(2), "big")
    name = stream.read(name_length).decode("utf-8")
    corpus = AddressCorpus(name or "loaded")
    expected = int.from_bytes(stream.read(8), "big")
    for index in range(expected):
        raw = stream.read(record.size)
        if len(raw) != record.size:
            raise ValueError(
                f"truncated corpus: record {index} of {expected}"
            )
        packed_address, first, last, count = record.unpack(raw)
        corpus.record_interval(
            int.from_bytes(packed_address, "big"), first, last, count
        )
    return corpus


@contextlib.contextmanager
def _atomic_stream(path: Path, binary: bool) -> Iterator:
    """A write stream that atomically replaces ``path`` on clean exit.

    Data goes to a sibling temp file; only after a successful flush and
    fsync is it moved over the destination with ``os.replace``, so a
    crash (or exception) mid-write never destroys the previous file.
    """
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    stream = temp.open("wb" if binary else "w")
    try:
        yield stream
        stream.flush()
        os.fsync(stream.fileno())
        stream.close()
        os.replace(temp, path)
    except BaseException:
        stream.close()
        with contextlib.suppress(FileNotFoundError):
            temp.unlink()
        raise


def save_corpus(corpus: AddressCorpus, path: Union[str, Path]) -> int:
    """Atomically save to a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    if path.suffix == ".bin":
        with _atomic_stream(path, binary=True) as stream:
            return save_corpus_binary(corpus, stream)
    with _atomic_stream(path, binary=False) as stream:
        return save_corpus_text(corpus, stream)


def load_corpus(path: Union[str, Path]) -> AddressCorpus:
    """Load from a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    if path.suffix == ".bin":
        with path.open("rb") as stream:
            return load_corpus_binary(stream)
    with path.open("r") as stream:
        return load_corpus_text(stream)


def save_checkpoint(
    corpus: AddressCorpus,
    path: Union[str, Path],
    completed_weeks: int,
) -> int:
    """Atomically snapshot a campaign corpus plus its progress marker.

    ``completed_weeks`` is the number of campaign weeks fully collected
    into ``corpus`` (i.e. the next run should resume at that week).
    Returns the number of corpus records written.
    """
    if completed_weeks < 0 or completed_weeks > 0xFFFFFFFF:
        raise ValueError(f"bad completed week count: {completed_weeks}")
    path = Path(path)
    with _atomic_stream(path, binary=True) as stream:
        stream.write(_CHECKPOINT_MAGIC)
        stream.write(completed_weeks.to_bytes(4, "big"))
        return save_corpus_binary(corpus, stream)


def load_checkpoint(path: Union[str, Path]) -> Tuple[AddressCorpus, int]:
    """Load a checkpoint; returns ``(corpus, completed_weeks)``."""
    with Path(path).open("rb") as stream:
        magic = stream.read(4)
        if magic != _CHECKPOINT_MAGIC:
            raise ValueError(
                f"not a repro campaign checkpoint: magic {magic!r}"
            )
        completed_weeks = int.from_bytes(stream.read(4), "big")
        return load_corpus_binary(stream), completed_weeks
