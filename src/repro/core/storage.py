"""Corpus persistence.

Long campaigns need checkpointing and offline analysis needs to reload
collected corpora without re-running the world.  Two formats:

* **text** (``.corpus.csv``) — one ``address,first,last,count`` line per
  record, human-greppable, with a header carrying the corpus name.
* **binary** (``.corpus.bin``) — fixed-size records (16-byte address,
  two float64 timestamps, observation count) behind a magic/version
  header; ~3x smaller and ~5x faster to load than text.  The current
  **v2** record carries a uint64 count; the original v1 record used a
  uint32 count and overflowed at 2^32−1 sightings — v1 files still load.

Records are written in ascending address order, so two corpora with the
same contents serialize to identical bytes regardless of the order the
observations arrived in (the sharded executor relies on this for its
determinism checks).  Both formats round-trip exactly (timestamps are
preserved bit-for-bit in binary and via ``repr`` precision in text).

Malformed or truncated input raises :class:`CorpusFormatError` naming
the file and byte offset — never a bare ``struct.error`` or a silently
shorter corpus.

Path-based saves (:func:`save_corpus`, :func:`save_checkpoint`) are
**atomic**: data is written to a sibling temp file, fsynced, then moved
over the destination with ``os.replace`` — a crash mid-write leaves the
previous good file untouched.  Checkpoint files wrap a binary corpus in
a small header carrying the number of completed campaign weeks and end
in a CRC32 integrity footer; :func:`save_checkpoint` additionally
rotates prior generations (``path.1``, ``path.2``) aside so that
:func:`resolve_resume_checkpoint` can fall back to the newest prior
good snapshot when the latest one is truncated or corrupt.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import (
    BinaryIO,
    Dict,
    Iterator,
    List,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from ..addr.ipv6 import format_address, parse
from .corpus import AddressCorpus

__all__ = [
    "BINARY_RECORD_BYTES",
    "CorpusFormatError",
    "CheckpointIntegrityError",
    "save_corpus_text",
    "load_corpus_text",
    "save_corpus_binary",
    "load_corpus_binary",
    "save_corpus",
    "load_corpus",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_full",
    "checkpoint_candidates",
    "resolve_resume_checkpoint",
]

_TEXT_HEADER = "# repro-corpus v1 name="
_BINARY_MAGIC_V1 = b"RPC1"
_BINARY_MAGIC_V2 = b"RPC2"
_RECORD_V1 = struct.Struct(">16s d d I")
_RECORD_V2 = struct.Struct(">16s d d Q")
_MAX_COUNT = {1: 0xFFFFFFFF, 2: 0xFFFFFFFFFFFFFFFF}

#: Serialized size of one current-format (v2) record — the segment
#: store's flush estimator prices its in-memory buffer with this.
BINARY_RECORD_BYTES = _RECORD_V2.size

#: Checkpoint container: magic, then uint32 completed-week counter, then
#: an ordinary binary corpus, then an optional metrics block, then the
#: integrity footer.
_CHECKPOINT_MAGIC = b"RPCW"
#: Optional metrics block between corpus and footer: magic + uint32
#: length + a UTF-8 JSON metrics snapshot (see ``repro.obs``).  Absent
#: in pre-PR-4 checkpoints, which still load (metrics come back None);
#: pre-PR-4 readers in turn ignored trailing body bytes, so the block is
#: compatible in both directions.
_CHECKPOINT_METRICS_MAGIC = b"RPCM"
#: Integrity footer: magic + CRC32 (big-endian) of every prior byte.
_CHECKPOINT_FOOTER_MAGIC = b"RPCF"
_CHECKPOINT_FOOTER_SIZE = 8

#: Prior checkpoint generations retained by :func:`save_checkpoint`
#: (``path.1`` is the previous snapshot, ``path.2`` the one before it).
CHECKPOINT_GENERATIONS = 2


class CorpusFormatError(ValueError):
    """A corpus or checkpoint file is malformed.

    Carries the offending ``path`` (when known) and the byte ``offset``
    the problem was detected at, and renders both into the message —
    "file X is broken at byte Y", not a bare ``struct.error``.
    """

    def __init__(
        self,
        reason: str,
        *,
        path: Optional[Union[str, Path]] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.reason = reason
        self.path = None if path is None else Path(path)
        self.offset = offset
        message = reason
        if offset is not None:
            message += f" (at byte offset {offset})"
        if path is not None:
            message += f" in {path}"
        super().__init__(message)


class CheckpointIntegrityError(CorpusFormatError):
    """A checkpoint failed its CRC32 footer check (corrupt or truncated)."""


def _with_path(error: CorpusFormatError, path: Union[str, Path]) -> CorpusFormatError:
    """The same error, re-raised with the file name attached."""
    cls = type(error)
    return cls(error.reason, path=path, offset=error.offset)


def _stream_offset(stream: BinaryIO) -> Optional[int]:
    try:
        return stream.tell()
    except (OSError, AttributeError):
        return None


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    """Read exactly ``size`` bytes or raise a located truncation error."""
    data = stream.read(size)
    if len(data) != size:
        offset = _stream_offset(stream)
        if offset is not None:
            offset -= len(data)
        raise CorpusFormatError(
            f"truncated file: wanted {size} bytes for {what}, "
            f"got {len(data)}",
            offset=offset,
        )
    return data


def save_corpus_text(corpus: AddressCorpus, stream: TextIO) -> int:
    """Write the text format; returns the number of records written."""
    name = corpus.name
    if "\n" in name or "\r" in name:
        raise ValueError(
            f"corpus name would corrupt the text header: {name!r}"
        )
    stream.write(f"{_TEXT_HEADER}{name}\n")
    stream.write("address,first_seen,last_seen,count\n")
    written = 0
    for address, (first, last, count) in sorted(corpus.items()):
        stream.write(
            f"{format_address(address)},{first!r},{last!r},{count}\n"
        )
        written += 1
    return written


def load_corpus_text(stream: TextIO) -> AddressCorpus:
    """Read the text format back into a corpus."""
    header = stream.readline().rstrip("\n")
    if not header.startswith(_TEXT_HEADER):
        raise CorpusFormatError(
            f"not a repro corpus file: {header[:40]!r}", offset=0
        )
    name = header[len(_TEXT_HEADER):]
    corpus = AddressCorpus(name or "loaded")
    column_line = stream.readline()
    if not column_line.startswith("address,"):
        raise CorpusFormatError("missing column header")
    for line_number, line in enumerate(stream, start=3):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValueError(f"malformed record on line {line_number}: {line!r}")
        address, first, last, count = parts
        try:
            corpus.record_interval(
                parse(address), float(first), float(last), int(count)
            )
        except ValueError as error:
            raise ValueError(
                f"bad record on line {line_number}: {error}"
            ) from error
    return corpus


def save_corpus_binary(
    corpus: AddressCorpus, stream: BinaryIO, version: int = 2
) -> int:
    """Write the binary format; returns the number of records written.

    ``version`` selects the record layout: 2 (default, uint64 count) or
    1 (the legacy uint32 layout, kept so compatibility tests can produce
    old-style files).  Counts outside the selected layout's range raise
    ``ValueError`` instead of a bare ``struct.error``.
    """
    if version == 2:
        magic, record = _BINARY_MAGIC_V2, _RECORD_V2
    elif version == 1:
        magic, record = _BINARY_MAGIC_V1, _RECORD_V1
    else:
        raise ValueError(f"unknown binary corpus version: {version}")
    max_count = _MAX_COUNT[version]
    name_bytes = corpus.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("corpus name too long for the binary header")
    stream.write(magic)
    stream.write(len(name_bytes).to_bytes(2, "big"))
    stream.write(name_bytes)
    stream.write(len(corpus).to_bytes(8, "big"))
    written = 0
    for address, (first, last, count) in sorted(corpus.items()):
        if count > max_count:
            raise ValueError(
                f"observation count {count:,} of "
                f"{format_address(address)} exceeds the uint"
                f"{32 if version == 1 else 64} range of binary format "
                f"v{version}"
                + ("; save as v2 instead" if version == 1 else "")
            )
        stream.write(
            record.pack(address.to_bytes(16, "big"), first, last, count)
        )
        written += 1
    return written


def load_corpus_binary(stream: BinaryIO) -> AddressCorpus:
    """Read the binary format (v1 or v2) back into a corpus.

    Truncated or malformed input raises :class:`CorpusFormatError`
    pointing at the byte the problem was detected at.
    """
    magic = _read_exact(stream, 4, "format magic")
    if magic == _BINARY_MAGIC_V2:
        record = _RECORD_V2
    elif magic == _BINARY_MAGIC_V1:
        record = _RECORD_V1
    else:
        raise CorpusFormatError(
            f"not a repro binary corpus: magic {magic!r}", offset=0
        )
    name_length = int.from_bytes(
        _read_exact(stream, 2, "name length"), "big"
    )
    name = _read_exact(stream, name_length, "corpus name").decode("utf-8")
    corpus = AddressCorpus(name or "loaded")
    expected = int.from_bytes(_read_exact(stream, 8, "record count"), "big")
    for index in range(expected):
        raw = _read_exact(
            stream, record.size, f"record {index} of {expected}"
        )
        packed_address, first, last, count = record.unpack(raw)
        try:
            corpus.record_interval(
                int.from_bytes(packed_address, "big"), first, last, count
            )
        except ValueError as error:
            offset = _stream_offset(stream)
            if offset is not None:
                offset -= record.size
            raise CorpusFormatError(
                f"bad record {index} of {expected}: {error}", offset=offset
            ) from error
    return corpus


@contextlib.contextmanager
def _atomic_stream(path: Path, binary: bool) -> Iterator:
    """A write stream that atomically replaces ``path`` on clean exit.

    Data goes to a sibling temp file; only after a successful flush and
    fsync is it moved over the destination with ``os.replace``, so a
    crash (or exception) mid-write never destroys the previous file.
    """
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    stream = temp.open("wb" if binary else "w")
    try:
        yield stream
        stream.flush()
        os.fsync(stream.fileno())
        stream.close()
        os.replace(temp, path)
    except BaseException:
        stream.close()
        with contextlib.suppress(FileNotFoundError):
            temp.unlink()
        raise


def save_corpus(corpus: AddressCorpus, path: Union[str, Path]) -> int:
    """Atomically save to a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    if path.suffix == ".bin":
        with _atomic_stream(path, binary=True) as stream:
            return save_corpus_binary(corpus, stream)
    with _atomic_stream(path, binary=False) as stream:
        return save_corpus_text(corpus, stream)


def load_corpus(path: Union[str, Path]) -> AddressCorpus:
    """Load from a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    try:
        if path.suffix == ".bin":
            with path.open("rb") as stream:
                return load_corpus_binary(stream)
        with path.open("r") as stream:
            return load_corpus_text(stream)
    except CorpusFormatError as error:
        raise _with_path(error, path) from error


def save_checkpoint(
    corpus: AddressCorpus,
    path: Union[str, Path],
    completed_weeks: int,
    *,
    metrics: Optional[Dict[str, object]] = None,
    keep_previous: int = CHECKPOINT_GENERATIONS,
) -> int:
    """Atomically snapshot a campaign corpus plus its progress marker.

    ``completed_weeks`` is the number of campaign weeks fully collected
    into ``corpus`` (i.e. the next run should resume at that week).
    ``metrics`` is an optional JSON-serializable telemetry snapshot
    (``MetricsRegistry.snapshot()``) stored alongside the corpus so a
    resumed campaign reports *cumulative* counters, not just the
    post-resume remainder.
    The snapshot ends in a CRC32 footer so a resume can *detect*
    corruption instead of loading garbage, and up to ``keep_previous``
    prior generations are rotated aside (``path.1`` newest) so a resume
    can *survive* it.  The rotation happens only after the new snapshot
    is fully written and fsynced — a crash at any instant leaves at
    least one good generation on disk.  Returns the number of corpus
    records written.
    """
    if completed_weeks < 0 or completed_weeks > 0xFFFFFFFF:
        raise ValueError(f"bad completed week count: {completed_weeks}")
    if keep_previous < 0:
        raise ValueError(f"bad generation count: {keep_previous}")
    path = Path(path)
    payload = io.BytesIO()
    payload.write(_CHECKPOINT_MAGIC)
    payload.write(completed_weeks.to_bytes(4, "big"))
    written = save_corpus_binary(corpus, payload)
    if metrics is not None:
        blob = json.dumps(metrics, sort_keys=True).encode("utf-8")
        if len(blob) > 0xFFFFFFFF:
            raise ValueError("metrics snapshot too large for checkpoint")
        payload.write(_CHECKPOINT_METRICS_MAGIC)
        payload.write(len(blob).to_bytes(4, "big"))
        payload.write(blob)
    data = payload.getvalue()
    footer = _CHECKPOINT_FOOTER_MAGIC + (
        zlib.crc32(data) & 0xFFFFFFFF
    ).to_bytes(4, "big")

    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with temp.open("wb") as stream:
            stream.write(data)
            stream.write(footer)
            stream.flush()
            os.fsync(stream.fileno())
        # Rotate prior generations aside, oldest first, only now that
        # the replacement is durably on disk.
        for generation in range(keep_previous, 1, -1):
            older = Path(f"{path}.{generation - 1}")
            if older.exists():
                os.replace(older, f"{path}.{generation}")
        if keep_previous >= 1 and path.exists():
            os.replace(path, f"{path}.1")
        os.replace(temp, path)
    except BaseException:
        with contextlib.suppress(FileNotFoundError):
            temp.unlink()
        raise
    return written


def load_checkpoint(path: Union[str, Path]) -> Tuple[AddressCorpus, int]:
    """Load and integrity-check a checkpoint; ``(corpus, completed_weeks)``.

    Raises :class:`CheckpointIntegrityError` when the footer is missing
    (truncation) or its CRC32 does not match (corruption), and
    :class:`CorpusFormatError` for structural damage — always naming the
    file.
    """
    corpus, completed_weeks, _ = load_checkpoint_full(path)
    return corpus, completed_weeks


def load_checkpoint_full(
    path: Union[str, Path],
) -> Tuple[AddressCorpus, int, Optional[Dict[str, object]]]:
    """:func:`load_checkpoint` plus the stored metrics snapshot.

    The third element is the telemetry snapshot saved with the
    checkpoint, or ``None`` for checkpoints written without one
    (including every pre-metrics checkpoint).
    """
    path = Path(path)
    data = path.read_bytes()
    try:
        return _parse_checkpoint(data)
    except CorpusFormatError as error:
        raise _with_path(error, path) from error


def _parse_checkpoint(
    data: bytes,
) -> Tuple[AddressCorpus, int, Optional[Dict[str, object]]]:
    if data[:4] != _CHECKPOINT_MAGIC:
        raise CorpusFormatError(
            f"not a repro campaign checkpoint: magic {data[:4]!r}", offset=0
        )
    if len(data) < 8 + _CHECKPOINT_FOOTER_SIZE:
        raise CheckpointIntegrityError(
            f"checkpoint truncated to {len(data)} bytes", offset=len(data)
        )
    body, footer = data[:-_CHECKPOINT_FOOTER_SIZE], data[-_CHECKPOINT_FOOTER_SIZE:]
    if footer[:4] != _CHECKPOINT_FOOTER_MAGIC:
        raise CheckpointIntegrityError(
            "checkpoint integrity footer missing (file truncated?)",
            offset=len(body),
        )
    stored = int.from_bytes(footer[4:], "big")
    computed = zlib.crc32(body) & 0xFFFFFFFF
    if stored != computed:
        raise CheckpointIntegrityError(
            f"checkpoint CRC mismatch: stored {stored:#010x}, "
            f"computed {computed:#010x}",
            offset=len(body),
        )
    completed_weeks = int.from_bytes(data[4:8], "big")
    stream = io.BytesIO(body[8:])
    corpus = load_corpus_binary(stream)
    metrics = _parse_metrics_block(stream, body_offset=8)
    return corpus, completed_weeks, metrics


def _parse_metrics_block(
    stream: io.BytesIO, body_offset: int
) -> Optional[Dict[str, object]]:
    """The optional RPCM telemetry block after the checkpoint corpus."""
    magic = stream.read(4)
    if not magic:
        return None  # pre-metrics checkpoint
    offset = body_offset + stream.tell() - len(magic)
    if magic != _CHECKPOINT_METRICS_MAGIC:
        # CRC already passed, so this is a version skew, not corruption.
        raise CorpusFormatError(
            f"unknown checkpoint trailer magic {magic!r}", offset=offset
        )
    length = int.from_bytes(
        _read_exact(stream, 4, "metrics block length"), "big"
    )
    blob = _read_exact(stream, length, "metrics block")
    try:
        metrics = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorpusFormatError(
            f"bad checkpoint metrics block: {error}", offset=offset
        ) from error
    if not isinstance(metrics, dict):
        raise CorpusFormatError(
            "checkpoint metrics block is not a JSON object", offset=offset
        )
    return metrics


def checkpoint_candidates(path: Union[str, Path]) -> List[Path]:
    """Resume candidates, newest first: the path, then its generations."""
    path = Path(path)
    return [path] + [
        Path(f"{path}.{generation}")
        for generation in range(1, CHECKPOINT_GENERATIONS + 1)
    ]


def resolve_resume_checkpoint(
    path: Optional[Union[str, Path]],
    *,
    with_metrics: bool = False,
    segment_dir: Optional[Union[str, Path]] = None,
):
    """Load the best resume source: checkpoint generations or manifest.

    Tries ``path``, then ``path.1``, ``path.2`` … and — when
    ``segment_dir`` is given — also the segment store's
    ``MANIFEST.json`` (see :mod:`repro.core.segments`).  Whichever
    good source covers **more completed days** of the campaign wins.
    The tie-break is deterministic and pinned by test: when both cover
    the same number of weeks **the manifest (segment store) is
    preferred**, because its data is already durably segmented —
    resuming from it needs no whole-corpus rewrite, while preferring
    the checkpoint would re-import identical data as a fresh baseline
    segment.  ``path`` may be ``None`` to consider only the manifest.

    Returns ``(corpus, completed_weeks, used_path, skipped)`` where
    ``used_path`` is the checkpoint generation or manifest file chosen
    and ``skipped`` lists the corrupt/truncated candidates passed over
    — resuming from garbage is never silent.  With
    ``with_metrics=True`` a fifth element carries the stored telemetry
    snapshot (or ``None``) so resumed campaigns report cumulative
    counters.  Raises :class:`CheckpointIntegrityError` when every
    existing candidate is bad, and ``FileNotFoundError`` when none
    exists at all.
    """
    skipped: List[Tuple[Path, CorpusFormatError]] = []
    seen_any = False
    checkpoint_hit = None  # (corpus, weeks, used, metrics)
    if path is not None:
        for candidate in checkpoint_candidates(path):
            if not candidate.exists():
                continue
            seen_any = True
            try:
                corpus, completed_weeks, metrics = load_checkpoint_full(
                    candidate
                )
            except CorpusFormatError as error:
                skipped.append((candidate, error))
                continue
            checkpoint_hit = (corpus, completed_weeks, candidate, metrics)
            break

    manifest_hit = None  # (reader, weeks, manifest_path)
    if segment_dir is not None:
        from .segments import (
            MANIFEST_NAME,
            SegmentError,
            SegmentedCorpusReader,
        )

        manifest_path = Path(segment_dir) / MANIFEST_NAME
        if manifest_path.exists():
            seen_any = True
            try:
                reader = SegmentedCorpusReader.open(segment_dir)
            except SegmentError as error:
                skipped.append((manifest_path, error))
            else:
                manifest_hit = (
                    reader,
                    reader.completed_weeks,
                    manifest_path,
                )

    if manifest_hit is not None and (
        checkpoint_hit is None or manifest_hit[1] >= checkpoint_hit[1]
    ):
        reader, completed_weeks, manifest_path = manifest_hit
        try:
            corpus = reader.load()
        except CorpusFormatError as error:
            # A torn or corrupt referenced segment invalidates the whole
            # manifest as a resume source; fall back to the checkpoint.
            skipped.append((manifest_path, error))
        else:
            if with_metrics:
                return (
                    corpus,
                    completed_weeks,
                    manifest_path,
                    skipped,
                    reader.manifest.metrics,
                )
            return corpus, completed_weeks, manifest_path, skipped
    if checkpoint_hit is not None:
        corpus, completed_weeks, candidate, metrics = checkpoint_hit
        if with_metrics:
            return corpus, completed_weeks, candidate, skipped, metrics
        return corpus, completed_weeks, candidate, skipped
    if seen_any:
        details = "; ".join(str(error) for _, error in skipped)
        raise CheckpointIntegrityError(
            f"no good checkpoint generation to resume from: {details}",
            path=path if path is not None else segment_dir,
        )
    if path is None and segment_dir is not None:
        raise FileNotFoundError(f"no segment manifest in {segment_dir}")
    raise FileNotFoundError(f"no checkpoint at {path}")
