"""Corpus persistence.

Long campaigns need checkpointing and offline analysis needs to reload
collected corpora without re-running the world.  Two formats:

* **text** (``.corpus.csv``) — one ``address,first,last,count`` line per
  record, human-greppable, with a header carrying the corpus name.
* **binary** (``.corpus.bin``) — fixed 36-byte records (16-byte address,
  two float64 timestamps, uint32 count) behind a magic/version header;
  ~3x smaller and ~5x faster to load than text.

Both round-trip exactly (timestamps are preserved bit-for-bit in binary
and via ``repr`` precision in text).
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, TextIO, Union

from ..addr.ipv6 import format_address, parse
from .corpus import AddressCorpus

__all__ = [
    "save_corpus_text",
    "load_corpus_text",
    "save_corpus_binary",
    "load_corpus_binary",
    "save_corpus",
    "load_corpus",
]

_TEXT_HEADER = "# repro-corpus v1 name="
_BINARY_MAGIC = b"RPC1"
_RECORD = struct.Struct(">16s d d I")


def save_corpus_text(corpus: AddressCorpus, stream: TextIO) -> int:
    """Write the text format; returns the number of records written."""
    stream.write(f"{_TEXT_HEADER}{corpus.name}\n")
    stream.write("address,first_seen,last_seen,count\n")
    written = 0
    for address, (first, last, count) in corpus.items():
        stream.write(
            f"{format_address(address)},{first!r},{last!r},{count}\n"
        )
        written += 1
    return written


def load_corpus_text(stream: TextIO) -> AddressCorpus:
    """Read the text format back into a corpus."""
    header = stream.readline().rstrip("\n")
    if not header.startswith(_TEXT_HEADER):
        raise ValueError(f"not a repro corpus file: {header[:40]!r}")
    name = header[len(_TEXT_HEADER):]
    corpus = AddressCorpus(name or "loaded")
    column_line = stream.readline()
    if not column_line.startswith("address,"):
        raise ValueError("missing column header")
    for line_number, line in enumerate(stream, start=3):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValueError(f"malformed record on line {line_number}: {line!r}")
        address, first, last, count = parts
        corpus.record_interval(
            parse(address), float(first), float(last), int(count)
        )
    return corpus


def save_corpus_binary(corpus: AddressCorpus, stream: BinaryIO) -> int:
    """Write the binary format; returns the number of records written."""
    name_bytes = corpus.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("corpus name too long for the binary header")
    stream.write(_BINARY_MAGIC)
    stream.write(len(name_bytes).to_bytes(2, "big"))
    stream.write(name_bytes)
    stream.write(len(corpus).to_bytes(8, "big"))
    written = 0
    for address, (first, last, count) in corpus.items():
        stream.write(
            _RECORD.pack(address.to_bytes(16, "big"), first, last, count)
        )
        written += 1
    return written


def load_corpus_binary(stream: BinaryIO) -> AddressCorpus:
    """Read the binary format back into a corpus."""
    magic = stream.read(4)
    if magic != _BINARY_MAGIC:
        raise ValueError(f"not a repro binary corpus: magic {magic!r}")
    name_length = int.from_bytes(stream.read(2), "big")
    name = stream.read(name_length).decode("utf-8")
    corpus = AddressCorpus(name or "loaded")
    expected = int.from_bytes(stream.read(8), "big")
    for index in range(expected):
        raw = stream.read(_RECORD.size)
        if len(raw) != _RECORD.size:
            raise ValueError(
                f"truncated corpus: record {index} of {expected}"
            )
        packed_address, first, last, count = _RECORD.unpack(raw)
        corpus.record_interval(
            int.from_bytes(packed_address, "big"), first, last, count
        )
    return corpus


def save_corpus(corpus: AddressCorpus, path: Union[str, Path]) -> int:
    """Save to a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    if path.suffix == ".bin":
        with path.open("wb") as stream:
            return save_corpus_binary(corpus, stream)
    with path.open("w") as stream:
        return save_corpus_text(corpus, stream)


def load_corpus(path: Union[str, Path]) -> AddressCorpus:
    """Load from a path; format chosen by suffix (``.bin`` → binary)."""
    path = Path(path)
    if path.suffix == ".bin":
        with path.open("rb") as stream:
            return load_corpus_binary(stream)
    with path.open("r") as stream:
        return load_corpus_text(stream)
