"""Addressing-pattern analyses (Figures 4 and 5).

Two views over a corpus's IIDs:

* **Per-AS entropy distributions** (Fig. 4) — the entropy CDF of each of
  the top-N ASes by address count, over the whole study or a single day.
  This is where provider-specific patterns (Reliance Jio's half-random
  IIDs, Telkomsel's DHCPv6 pools) become visible.
* **Seven-category composition** (Fig. 5) — each dataset's fraction of
  Zeroes / Low Byte / Low 2 Bytes / IPv4-mapped / high / medium / low
  entropy addresses, using the corpus-level IPv4-embedding acceptance
  rule from :mod:`repro.addr.patterns`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..addr.entropy import normalized_iid_entropy
from ..addr.ipv6 import iid_of
from ..addr.patterns import (
    AddressCategory,
    CategoryClassifier,
    category_fractions,
)
from .corpus import AddressCorpus

__all__ = [
    "top_as_entropy_distributions",
    "category_composition",
    "compare_category_compositions",
]


def top_as_entropy_distributions(
    corpus: AddressCorpus,
    origin: Callable[[int], Optional[int]],
    top: int = 5,
    window: Optional[Tuple[float, float]] = None,
    as_name: Optional[Callable[[int], str]] = None,
) -> Dict[str, List[float]]:
    """Entropy samples for the top ASes by address count (Fig. 4).

    Returns ``{as_label: [entropy, ...]}`` for the ``top`` ASes.  With
    ``window`` set, only addresses whose sighting interval intersects the
    window are considered — the paper's Fig. 4b single-day variant.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    index = getattr(corpus, "index", None)
    if index is not None:
        # Group precomputed entropy rows by (memoized) origin instead of
        # re-walking the trie and re-deriving entropy per address.
        if window is None:
            rows = range(len(index))
        else:
            rows = index.rows_in_window(*window)
        by_asn_rows: Dict[int, List[int]] = {}
        for row in rows:
            asn = origin(index.addresses[row])
            if asn is not None:
                by_asn_rows.setdefault(asn, []).append(row)
        ranked_rows = sorted(
            by_asn_rows.items(), key=lambda item: -len(item[1])
        )[:top]
        entropies = index.entropies
        result = {}
        for asn, as_rows in ranked_rows:
            label = as_name(asn) if as_name is not None else f"AS{asn}"
            result[label] = [entropies[row] for row in as_rows]
        return result
    if window is None:
        addresses = list(corpus.addresses())
    else:
        addresses = list(corpus.addresses_in_window(*window))
    by_asn: Dict[int, List[int]] = {}
    for address in addresses:
        asn = origin(address)
        if asn is not None:
            by_asn.setdefault(asn, []).append(address)
    ranked = sorted(by_asn.items(), key=lambda item: -len(item[1]))[:top]
    result = {}
    for asn, as_addresses in ranked:
        label = as_name(asn) if as_name is not None else f"AS{asn}"
        result[label] = [
            normalized_iid_entropy(iid_of(address))
            for address in as_addresses
        ]
    return result


def category_composition(
    corpus: AddressCorpus,
    ipv6_origin: Optional[Callable[[int], Optional[int]]] = None,
    ipv4_origin: Optional[Callable[[int], Optional[int]]] = None,
    window: Optional[Tuple[float, float]] = None,
    min_as_instances: int = 100,
    min_as_fraction: float = 0.10,
) -> Dict[AddressCategory, float]:
    """Seven-category fractions of a corpus (one Fig. 5 bar group).

    ``min_as_instances`` / ``min_as_fraction`` are the IPv4-embedding
    acceptance thresholds; the paper uses (100, 10%) against billions of
    addresses — scaled-down corpora should scale the instance floor too.
    """
    classifier = CategoryClassifier(
        ipv6_origin,
        ipv4_origin,
        min_as_instances=min_as_instances,
        min_as_fraction=min_as_fraction,
    )
    index = getattr(corpus, "index", None)
    if index is not None:
        rows = None if window is None else index.rows_in_window(*window)
        return category_fractions(classifier.classify_index(index, rows))
    if window is None:
        addresses = corpus.addresses()
    else:
        addresses = corpus.addresses_in_window(*window)
    return category_fractions(classifier.classify_corpus(addresses))


def compare_category_compositions(
    corpora: List[AddressCorpus],
    ipv6_origin: Optional[Callable[[int], Optional[int]]] = None,
    ipv4_origin: Optional[Callable[[int], Optional[int]]] = None,
    window: Optional[Tuple[float, float]] = None,
    min_as_instances: int = 100,
    min_as_fraction: float = 0.10,
) -> Dict[str, Dict[AddressCategory, float]]:
    """The full Fig. 5: per-dataset category fractions, side by side."""
    return {
        corpus.name: category_composition(
            corpus,
            ipv6_origin,
            ipv4_origin,
            window,
            min_as_instances=min_as_instances,
            min_as_fraction=min_as_fraction,
        )
        for corpus in corpora
    }
