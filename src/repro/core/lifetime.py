"""Address and IID lifetime analyses (Figures 2 and 6a).

The paper measures, per address, the span between first and last sighting
("lifetime"; 0 for addresses seen once), and the same per IID — where an
IID's interval unions the intervals of every address carrying it, so an
EUI-64 IID that survives prefix rotation accumulates a long lifetime even
though each of its addresses is short-lived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..addr.entropy import EntropyClass, entropy_class, normalized_iid_entropy
from ..analysis.distributions import ECDF
from ..world.clock import DAY, WEEK
from .corpus import AddressCorpus

__all__ = [
    "LifetimeSummary",
    "address_lifetime_summary",
    "iid_lifetimes_by_entropy",
    "eui64_iid_lifetimes",
]


@dataclass(frozen=True)
class LifetimeSummary:
    """Headline numbers of the Fig. 2a CCDF."""

    total: int
    seen_once_fraction: float
    week_or_longer_fraction: float
    month_or_longer_fraction: float
    six_months_or_longer_fraction: float
    distribution: ECDF


def address_lifetime_summary(corpus: AddressCorpus) -> LifetimeSummary:
    """Summarize the corpus's address lifetimes (Fig. 2a).

    The paper reports: >60% seen once, 1.2% a week or longer, 0.4% a
    month or longer, 0.03% six months or longer.
    """
    lifetimes = corpus.lifetimes()
    if not lifetimes:
        raise ValueError("corpus is empty")
    total = len(lifetimes)
    return LifetimeSummary(
        total=total,
        seen_once_fraction=sum(1 for l in lifetimes if l == 0.0) / total,
        week_or_longer_fraction=sum(1 for l in lifetimes if l >= WEEK) / total,
        month_or_longer_fraction=(
            sum(1 for l in lifetimes if l >= 30 * DAY) / total
        ),
        six_months_or_longer_fraction=(
            sum(1 for l in lifetimes if l >= 182 * DAY) / total
        ),
        distribution=ECDF(lifetimes),
    )


def iid_lifetimes_by_entropy(
    corpus: AddressCorpus,
) -> Dict[EntropyClass, List[float]]:
    """Per-IID lifetimes bucketed by the IID's entropy class (Fig. 2b).

    The paper's finding: low-entropy IIDs are likelier to persist — 10%
    of them are observed for a week or more versus <=5% of medium/high.
    """
    buckets: Dict[EntropyClass, List[float]] = {
        cls: [] for cls in EntropyClass
    }
    index = getattr(corpus, "index", None)
    if index is not None:
        # Entropy was computed once per distinct IID in the index build
        # pass; read it instead of re-deriving it per interval.
        entropies = index.iid_entropies()
        for iid, (first, last) in index.iid_intervals().items():
            buckets[entropy_class(entropies[iid])].append(last - first)
        return buckets
    for iid, (first, last) in corpus.iid_intervals().items():
        cls = entropy_class(normalized_iid_entropy(iid))
        buckets[cls].append(last - first)
    return buckets


def eui64_iid_lifetimes(corpus: AddressCorpus) -> List[float]:
    """Lifetimes of EUI-64 IIDs only (Fig. 6a input).

    Computed per embedded MAC: the union interval over every address
    exposing that MAC.
    """
    index = getattr(corpus, "index", None)
    if index is not None:
        return [
            last - first
            for first, last in index.eui64_mac_intervals().values()
        ]
    lifetimes = []
    for addresses in corpus.eui64_mac_addresses().values():
        first = min(corpus.first_seen(address) for address in addresses)
        last = max(corpus.last_seen(address) for address in addresses)
        lifetimes.append(last - first)
    return lifetimes
