"""Hitlist responsiveness decay ("Rusty Clusters", Zirngibl et al.).

The paper builds on the observation that hitlists rust: an address
responsive when a snapshot was published may be gone weeks later (prefix
rotation, churn, renumbering).  This module measures the decay curve —
for snapshot age *k* weeks, the fraction of a snapshot's addresses still
responsive *k* weeks after publication — which quantifies why hitlists
must be continuously refreshed and why ephemeral client addresses (the
NTP corpus's majority) rust almost immediately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..scan.hitlist_service import WeeklySnapshot
from ..world.clock import WEEK
from ..world.rng import split_rng
from ..world.world import World

__all__ = ["responsiveness_decay", "corpus_decay"]


def responsiveness_decay(
    world: World,
    snapshots: Sequence[WeeklySnapshot],
    max_age_weeks: int = 8,
    sample_per_snapshot: int = 500,
    seed: int = 0,
) -> Dict[int, float]:
    """Average still-responsive fraction by snapshot age.

    For every snapshot and every age ``k`` (0..max), a sample of the
    snapshot's addresses is re-probed ``k`` weeks after publication; the
    fractions are averaged across snapshots that have data for that age.
    """
    if max_age_weeks < 0:
        raise ValueError("max_age_weeks must be non-negative")
    if sample_per_snapshot < 1:
        raise ValueError("sample_per_snapshot must be >= 1")
    rng = split_rng(seed, "decay")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for snapshot in snapshots:
        addresses = sorted(snapshot.responsive)
        if not addresses:
            continue
        if len(addresses) > sample_per_snapshot:
            addresses = rng.sample(addresses, sample_per_snapshot)
        for age in range(max_age_weeks + 1):
            when = snapshot.when + age * WEEK
            alive = sum(
                1 for address in addresses if world.is_responsive(address, when)
            )
            sums[age] = sums.get(age, 0.0) + alive / len(addresses)
            counts[age] = counts.get(age, 0) + 1
    return {
        age: sums[age] / counts[age] for age in sorted(sums)
    }


def corpus_decay(
    world: World,
    addresses: Sequence[int],
    observed_at: float,
    ages_weeks: Sequence[int],
    sample: int = 500,
    seed: int = 0,
) -> Dict[int, float]:
    """Still-responsive fraction of a set of addresses at several ages.

    The companion measurement for passive corpora: how quickly do
    passively observed (largely ephemeral) addresses rust compared to a
    curated hitlist?
    """
    if sample < 1:
        raise ValueError("sample must be >= 1")
    pool: List[int] = sorted(addresses)
    if not pool:
        raise ValueError("no addresses to measure")
    rng = split_rng(seed, "corpus-decay")
    if len(pool) > sample:
        pool = rng.sample(pool, sample)
    decay = {}
    for age in ages_weeks:
        when = observed_at + age * WEEK
        alive = sum(1 for address in pool if world.is_responsive(address, when))
        decay[age] = alive / len(pool)
    return decay
